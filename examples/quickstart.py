#!/usr/bin/env python3
"""Quickstart: measure a 30 ms path from a simulated Nexus 5 with AcuteMon.

Builds the paper's Figure 2 testbed, runs one AcuteMon measurement
(warm-up packet, 20 ms background traffic, 100 TCP SYN probes), and
prints the user-level RTTs next to the sniffer ground truth.

Run:  python examples/quickstart.py
"""

from repro import acutemon_experiment
from repro.analysis.render import fmt_mean_ci
from repro.analysis.stats import SummaryStats


def main():
    print("Running AcuteMon on a simulated Nexus 5 "
          "(emulated RTT: 30 ms, 100 TCP probes)...")
    result = acutemon_experiment("nexus5", emulated_rtt=0.030, count=100,
                                 seed=7)

    du = SummaryStats(result.layers["du"])
    dn = SummaryStats(result.layers["dn"])
    print(f"  user-level RTT (du):    {fmt_mean_ci(du)} ms")
    print(f"  on-air nRTT    (dn):    {fmt_mean_ci(dn)} ms  (sniffer truth)")
    print(f"  median overhead du-dn:  "
          f"{result.overheads.box('total').median * 1e3:.2f} ms")
    print(f"  background packets:     "
          f"{result.acutemon.background_sent} (TTL=1, died at the AP)")
    print(f"  probes lost:            {result.acutemon.loss_count()}")

    box = result.overheads.box("dk_n")
    print(f"  kernel-phy overhead:    median {box.median * 1e3:.2f} ms, "
          f"whiskers [{box.whisker_low * 1e3:.2f}, "
          f"{box.whisker_high * 1e3:.2f}] ms")

    print()
    print("The paper's headline (§4.2): median overhead stays within 3 ms")
    print("regardless of the actual network RTT — try changing emulated_rtt.")


if __name__ == "__main__":
    main()
