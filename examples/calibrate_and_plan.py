#!/usr/bin/env python3
"""Train AcuteMon's timers for an unknown phone (the paper's future work).

The AcuteMon prototype hard-codes dpre = db = 20 ms, which only works
because every tested phone satisfies Tprom < 20 ms < min(Tis, Tip).
§4.1 proposes *training* instead.  This example runs the calibration
suite against a phone the program pretends not to know:

1. infer the SDIO idle window Tis and promotion delay Tprom by ramping
   idle gaps until the RTT jumps,
2. infer the PSM timeout Tip from the sniffer's PM-bit null frames,
3. infer the actual listen interval from TIM-to-fetch distances,
4. derive a valid (dpre, db) plan from the calibrated values,
5. run AcuteMon with the derived plan and verify the overhead,
6. sweep the phone across emulated RTTs with the parallel campaign
   runner (``workers=2``) — results are bit-identical to a serial
   sweep, just faster on multi-core machines (see
   docs/PERFORMANCE.md).

Run:  python examples/calibrate_and_plan.py [phone_key]
"""

import sys

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.calibration import TimerCalibrator
from repro.core.measurement import ProbeCollector
from repro.core.overhead import decompose
from repro.core.warmup import WarmupPolicy
from repro.testbed.campaign import Campaign
from repro.testbed.topology import Testbed


def fmt(seconds):
    return f"{seconds * 1e3:.1f} ms" if seconds is not None else "unknown"


def main():
    phone_key = sys.argv[1] if len(sys.argv) > 1 else "galaxy_grand"
    print(f"Calibrating '{phone_key}' (pretending its timers are unknown)")

    testbed = Testbed(seed=13, emulated_rtt=0.0)
    phone = testbed.add_phone(phone_key)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    calibrator = TimerCalibrator(phone, collector, testbed.server_ip)

    print("  [1/3] ramping idle gaps to find the SDIO window...")
    sdio = calibrator.infer_sdio(repeats=4)
    print(f"        Tis ≈ {fmt(sdio.t_is)}   Tprom ≈ {fmt(sdio.t_prom)}")

    print("  [2/3] generating doze cycles and sniffing PM bits...")
    for index in range(8):
        testbed.sim.schedule(index * 1.2, phone.stack.send_echo_request,
                             testbed.server_ip, 9, index)
    phone.stack.udp_bind(4444, lambda p: None)
    for index in range(4):
        testbed.sim.schedule(1.5 * index + 0.7,
                             testbed.server_host.stack.send_udp,
                             phone.ip_addr, 4444, None, 32)
    testbed.run(11.0)
    capture = testbed.merged_capture()
    psm = calibrator.infer_psm_from_sniffer(capture)
    listen = calibrator.infer_listen_interval(capture)
    print(f"        Tip ≈ {fmt(psm.t_ip)}   "
          f"listen interval = {listen.listen_interval}")

    calibration = sdio.merged_with(psm).merged_with(listen)
    policy = WarmupPolicy.from_calibration(calibration)
    plan = policy.recommend()
    print("  [3/3] derived warm-up plan: "
          f"dpre = {plan.dpre * 1e3:.1f} ms, db = {plan.db * 1e3:.1f} ms "
          f"({'valid' if plan.valid else 'INVALID'})")

    truth = phone.profile
    print()
    print("  ground truth for comparison: "
          f"Tis = {truth.sdio_idle_window * 1e3:.0f} ms, "
          f"Tip = {truth.psm_timeout * 1e3:.0f} ms "
          f"(±{truth.psm_timeout_jitter * 1e3:.0f} ms jitter)")

    print()
    print("Running AcuteMon with the calibrated plan "
          "(emulated RTT 85 ms, 50 probes)...")
    testbed.set_emulated_rtt(0.085)
    config = AcuteMonConfig(dpre=plan.dpre, db=plan.db, probe_count=50)
    monitor = AcuteMon(phone, collector, testbed.server_ip, config=config)
    done = []
    monitor.start(on_complete=lambda r: done.append(r))
    while not done:
        testbed.sim.step()
    records = [collector.get(o.probe_id) for o in monitor.results]
    overheads = decompose([r for r in records if r and r.complete])
    print(f"  median delay overhead: "
          f"{overheads.box('total').median * 1e3:.2f} ms "
          "(paper target: < 3 ms)")

    print()
    print("Sweeping the calibrated phone across emulated RTTs "
          "(parallel campaign, workers=2)...")
    campaign = Campaign(phones=(phone_key,), rtts=(0.020, 0.085),
                        tools=("acutemon",), count=10, base_seed=13)
    campaign.run(workers=2)
    for cell in campaign.results:
        print(f"  {cell.rtt * 1e3:3.0f} ms emulated -> median error "
              f"{cell.error() * 1e3:.2f} ms (n={len(cell.rtts)})")


if __name__ == "__main__":
    main()
