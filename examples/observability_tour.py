#!/usr/bin/env python3
"""Tour of the observability layer: metrics, spans, and exporters.

One AcuteMon cell runs with ``observe=True``, which attaches three
recorders to the cell's simulator (all off by default, one attribute
check per call site when disabled):

* ``sim.metrics`` — counters, gauges, and fixed-bucket latency
  histograms from the instrumented SDIO bus, PSM state machine,
  scheduler, driver, and measurement core,
* ``sim.spans`` — named sim-time intervals (``sdio.promotion``,
  ``psm.beacon_wait``, ``measurement.probe``, ...) that feed both the
  histograms and the trace,
* ``sim.trace`` — the structured event log.

The script then prints the delay decomposition the registry captured
and writes all three export formats (Prometheus text, JSON-lines,
Chrome trace-event JSON) to a temporary directory.  Load the
``.trace.json`` in chrome://tracing or https://ui.perfetto.dev to *see*
a probe span covering the bus promotion that inflated it.

Finally it shows the causal side of the story: every probe's RTT split
exactly into mechanism components (``du == sdio.promotion +
psm.beacon_wait + queueing + airtime + wire + unattributed`` on the
integer-nanosecond grid), and the campaign-scale report —
``python -m repro report`` — that says which mechanism dominates in
each grid slice.

Run:  python examples/observability_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro import acutemon_experiment
from repro.analysis import decompose_campaign, render_report
from repro.obs import to_prometheus, write_chrome_trace, write_snapshot
from repro.testbed.campaign import Campaign
from repro.testbed.experiments import ping_experiment


def ms(value):
    return f"{value * 1e3:7.3f} ms" if value is not None else "      —"


def main():
    print("Running one observed AcuteMon cell (nexus5, 30 ms, 20 probes)")
    result = acutemon_experiment("nexus5", emulated_rtt=0.030, count=20,
                                 seed=7, observe=True)
    sim = result.testbed.sim
    snapshot = result.metrics_snapshot()

    print(f"\nScheduler: {sim.events_fired} events fired, "
          f"{sim.events_canceled} cancelled, "
          f"{len(sim.spans)} spans, {len(sim.trace.records)} trace records")

    print("\nCounters:")
    for metric in sim.metrics.metrics():
        if metric.kind == "counter" and not metric.volatile \
                and not metric.name.startswith("scheduler_"):
            labels = " ".join(f"{k}={v}" for k, v in metric.labels)
            print(f"  {metric.name:36s} {labels:28s} {metric.value}")

    print("\nLatency histograms (the delay decomposition):")
    for name in ("probe_du_seconds", "probe_dn_seconds",
                 "probe_inflation_seconds", "sdio_promotion_seconds",
                 "psm_beacon_wait_seconds", "driver_dvsend_seconds"):
        for metric in sim.metrics.metrics():
            if metric.name != name or not metric.count:
                continue
            print(f"  {name:28s} n={metric.count:3d}  p50={ms(metric.p50)}"
                  f"  p95={ms(metric.p95)}  max={ms(metric.maximum)}")

    inflation = sim.metrics.get("probe_inflation_seconds",
                                labels={"kind": "probe"})
    if inflation is not None and inflation.count:
        print(f"\nUser-level RTT exceeded the on-air RTT by "
              f"{ms(inflation.p50).strip()} at the median — the inflation "
              "the paper demystifies; AcuteMon's warm-up keeps it small.")

    out_dir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    write_snapshot(out_dir / "cell.prom", snapshot)
    write_snapshot(out_dir / "cell.jsonl", snapshot)
    write_chrome_trace(out_dir / "cell.trace.json", sim.spans)
    trace = json.loads((out_dir / "cell.trace.json").read_text())
    prom_lines = to_prometheus(snapshot).count("\n")
    print(f"\nExports written to {out_dir}:")
    print(f"  cell.prom        {prom_lines} lines of Prometheus text")
    print(f"  cell.jsonl       {len(snapshot['metrics'])} metric objects")
    print(f"  cell.trace.json  {len(trace['traceEvents'])} trace events "
          "(open in chrome://tracing)")

    print("\nCausal attribution: one 1s-interval ping probe, split exactly")
    ping = ping_experiment("nexus5", emulated_rtt=0.030, count=5, seed=7,
                           observe=True)
    attribution = ping.attributions[0]
    for component, seconds in attribution.components().items():
        print(f"  {component:16s} {ms(seconds)}")
    print(f"  {'= du':16s} {ms(attribution.total)}   "
          "(integer-ns identity, residual never negative)")

    print("\nCampaign decomposition report (ping vs AcuteMon, 20 ms wire):")
    campaign = Campaign(phones=("nexus5",), rtts=(0.02,),
                        tools=("ping", "acutemon"), count=10, base_seed=7)
    campaign.run(collect_metrics=True)
    report = decompose_campaign(campaign)
    print(render_report(report, "text"))
    print("ping pays the SDIO promotion (Tprom) on every probe; AcuteMon's"
          "\nwarm-up keeps the bus awake, so its promotion share is zero.")


if __name__ == "__main__":
    main()
