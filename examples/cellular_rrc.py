#!/usr/bin/env python3
"""AcuteMon on cellular: puncturing RRC state-transition inflation.

§4 of the paper: "Although AcuteMon is designed mainly for WiFi
networks, it can be easily extended to cellular environment, mitigating
the effect of RRC (Radio Resource Control) state transition."

This example measures a 50 ms emulated path from a cellular phone whose
radio follows the classic 3G state machine (IDLE / CELL_FACH / CELL_DCH,
promotion ~2 s, demotion tails T1 = 5 s and T2 = 12 s), with and without
AcuteMon's background traffic.

Run:  python examples/cellular_rrc.py
"""

import statistics

from repro.cellular.rrc import RrcConfig
from repro.cellular.testbed import CellularTestbed
from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.core.warmup import WarmupPolicy
from repro.tools.ping import PingTool


def narrate_rrc(testbed):
    testbed.rrc.on_state_change = lambda old, new, reason: print(
        f"   [{testbed.sim.now:7.2f}s] RRC {old} -> {new} ({reason})")


def main():
    rrc_config = RrcConfig(t1=5.0, t2=12.0)

    print("1. Sparse pings (one every 20 s): the radio goes IDLE between "
          "probes")
    testbed = CellularTestbed(seed=21, emulated_rtt=0.050,
                              rrc_config=rrc_config)
    narrate_rrc(testbed)
    collector = ProbeCollector(testbed.phone)
    tool = PingTool(testbed.phone, collector, testbed.server_ip,
                    interval=20.0, timeout=8.0)
    tool.run_sync(4)
    rtts = sorted(tool.rtts())
    print(f"   measured RTTs: "
          f"{', '.join(f'{r * 1e3:.0f}ms' for r in rtts)}")
    print("   every probe reports the ~2 s promotion delay, not the 50 ms "
          "path!")

    print()
    print("2. AcuteMon with a cellular warm-up plan")
    policy = WarmupPolicy(t_prom=rrc_config.promo_idle_dch.high,
                          t_is=rrc_config.t1, t_ip=rrc_config.t1)
    plan = policy.recommend()
    print(f"   policy: Tprom={policy.t_prom:.1f}s (promotion), "
          f"T1={policy.t_is:.0f}s (DCH tail)")
    print(f"   derived plan: dpre={plan.dpre:.2f}s, db={plan.db:.2f}s "
          f"({'valid' if plan.valid else 'INVALID'})")

    testbed = CellularTestbed(seed=22, emulated_rtt=0.050,
                              rrc_config=rrc_config)
    narrate_rrc(testbed)
    collector = ProbeCollector(testbed.phone)
    config = AcuteMonConfig(dpre=plan.dpre, db=plan.db, probe_count=10,
                            probe_gap=4.0, probe_timeout=8.0)
    monitor = AcuteMon(testbed.phone, collector, testbed.server_ip,
                       config=config)
    done = []
    monitor.start(on_complete=lambda r: done.append(r))
    while not done:
        testbed.sim.step()
    rtts = monitor.rtts()
    print(f"   measured RTTs (10 probes, 4 s apart): median "
          f"{statistics.median(rtts) * 1e3:.0f}ms, "
          f"max {max(rtts) * 1e3:.0f}ms")
    print(f"   RRC promotions during the session: "
          f"{testbed.rrc.promotions} (one warm-up, then the background "
          "traffic holds CELL_DCH)")


if __name__ == "__main__":
    main()
