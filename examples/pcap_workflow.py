#!/usr/bin/env python3
"""The multi-sniffer capture workflow: pcap files in, ground truth out.

The paper estimates the true network RTT (dn) from external wireless
sniffers.  This example shows the full offline pipeline on simulated
captures that are *real pcap files*:

1. attach three lossy monitor-mode sniffers plus one pcap-writing
   sniffer to the channel,
2. run a ping measurement,
3. merge the three in-memory captures (each alone missed frames),
4. independently parse the on-disk pcap (802.11 + LLC/SNAP + IPv4
   decoding) and extract per-probe nRTTs,
5. cross-check the two paths against each other and against the
   packet-stamp ground truth.

Run:  python examples/pcap_workflow.py
"""

import statistics
import tempfile
import pathlib

from repro.core.measurement import ProbeCollector
from repro.sniffer.merge import coverage, merge_records
from repro.sniffer.rtt import completed_rtts, network_rtts, network_rtts_from_pcap
from repro.sniffer.sniffer import WirelessSniffer
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool


def main():
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-pcap-"))
    pcap_path = workdir / "air.pcap"

    testbed = Testbed(seed=17, emulated_rtt=0.050, sniffer_loss=0.15)
    pcap_sniffer = WirelessSniffer(testbed.sim, testbed.channel,
                                   name="pcap", pcap_path=str(pcap_path))
    phone = testbed.add_phone("nexus5")
    collector = ProbeCollector(phone)
    testbed.settle(0.5)

    print("Pinging through the testbed (50 probes, emulated RTT 50 ms)...")
    tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
    tool.run_sync(50)
    pcap_sniffer.close()

    print(f"Wrote {pcap_path} ({pcap_path.stat().st_size} bytes)")

    merged = merge_records(*testbed.sniffers)
    fractions = coverage(merged, *testbed.sniffers)
    print()
    print("Per-sniffer coverage (each drops ~15% of frames):")
    for name, fraction in fractions.items():
        print(f"  {name}: {fraction * 100:.1f}%")
    print(f"  merged: {len(merged)} unique transmissions")

    from_records = completed_rtts(network_rtts(merged, phone.sta.mac))
    from_pcap = completed_rtts(
        network_rtts_from_pcap(pcap_path, phone.sta.mac))
    print()
    print(f"nRTTs recovered: {len(from_records)} from merged records, "
          f"{len(from_pcap)} from the pcap file")
    print(f"  merged-records median dn: "
          f"{statistics.median(from_records.values()) * 1e3:.2f} ms")
    print(f"  pcap-file     median dn: "
          f"{statistics.median(from_pcap.values()) * 1e3:.2f} ms")

    truth = {r.probe_id: r.dn for r in collector.completed()
             if r.dn is not None}
    diffs = [abs(from_pcap[pid] - truth[pid])
             for pid in from_pcap if pid in truth]
    print(f"  max |pcap - ground truth| over matching probes: "
          f"{max(diffs) * 1e6:.1f} us (pcap timestamps are microsecond)")


if __name__ == "__main__":
    main()
