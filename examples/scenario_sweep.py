#!/usr/bin/env python3
"""Scenario sweep: one campaign grid spanning WiFi and cellular LTE.

Declares a mixed-environment grid with the declarative scenario layer,
runs it through the parallel-capable campaign runner, and shows that
the same tool on the same emulated path answers differently depending
on the radio access network in front of it (802.11 PSM/bus-sleep vs
LTE RRC promotions).

Run:  python examples/scenario_sweep.py
"""

from repro import ScenarioSpec, run_scenario
from repro.testbed.campaign import Campaign


def main():
    campaign = Campaign(envs=("wifi", "cellular-lte"),
                        phones=("nexus5",),
                        rtts=(0.020, 0.050),
                        tools=("acutemon", "ping"),
                        count=8, base_seed=7)
    cells = list(campaign.cells())
    print(f"Sweeping {len(cells)} cells: "
          f"{{wifi, cellular-lte}} x {{20, 50}} ms x "
          f"{{acutemon, ping}} on a Nexus 5...")
    campaign.run(workers=1,
                 progress=lambda spec: print(f"  ran {spec.describe()}"))

    print()
    print(f"{'env':<14}{'RTT':>7}  {'tool':<10}{'median (ms)':>12}"
          f"{'error (ms)':>12}")
    for result in campaign.results:
        print(f"{result.env:<14}{result.rtt * 1e3:>5.0f}ms  "
              f"{result.tool:<10}{result.summary().median * 1e3:>12.2f}"
              f"{result.error() * 1e3:>12.2f}")

    print()
    print("Every cell above is a plain ScenarioSpec — serializable,")
    print("replayable, and bit-identical under any worker count:")
    spec = ScenarioSpec(env="cellular-lte", tool="acutemon",
                        emulated_rtt=0.050, count=8, seed=7)
    print(f"  {spec.to_json()}")
    result = run_scenario(spec)
    match = campaign.result_for("nexus5", 0.050, "acutemon",
                                env="cellular-lte")
    replayed = sorted(result.user_rtts)[len(result.user_rtts) // 2]
    print(f"  replayed median: {replayed * 1e3:.2f} ms "
          f"(campaign cell uses its own grid seed: "
          f"{match.summary().median * 1e3:.2f} ms)")


if __name__ == "__main__":
    main()
