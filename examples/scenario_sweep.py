#!/usr/bin/env python3
"""Scenario sweep: one campaign grid spanning WiFi and cellular LTE.

Declares a mixed-environment grid with the declarative scenario layer,
runs it through the parallel-capable campaign runner, and shows that
the same tool on the same emulated path answers differently depending
on the radio access network in front of it (802.11 PSM/bus-sleep vs
LTE RRC promotions).  The sweep is journaled to a checkpoint file and
then resumed (docs/RESILIENCE.md): the resumed run re-emits every cell
from the journal without re-executing anything.  It finishes with the
campaign fabric (docs/FABRIC.md): the grid runs cold into a persistent
result store, then a second campaign over the same grid runs warm out
of it — zero cells executed, bit-identical results.

Run:  python examples/scenario_sweep.py
"""

import statistics
import tempfile
from pathlib import Path

from repro import ScenarioSpec, run_scenario
from repro.analysis.analytic import predict_for_profile
from repro.testbed.campaign import Campaign


GRID = dict(envs=("wifi", "cellular-lte"), phones=("nexus5",),
            rtts=(0.020, 0.050), tools=("acutemon", "ping"),
            count=8, base_seed=7)


def main():
    campaign = Campaign(**GRID)
    cells = list(campaign.cells())
    print(f"Sweeping {len(cells)} cells: "
          f"{{wifi, cellular-lte}} x {{20, 50}} ms x "
          f"{{acutemon, ping}} on a Nexus 5...")
    checkpoint = Path(tempfile.mkdtemp()) / "sweep.ckpt.jsonl"
    campaign.run(workers=1, checkpoint=checkpoint,
                 progress=lambda spec: print(f"  ran {spec.describe()}"))

    print()
    print(f"{'env':<14}{'RTT':>7}  {'tool':<10}{'median (ms)':>12}"
          f"{'error (ms)':>12}")
    for result in campaign.results:
        print(f"{result.env:<14}{result.rtt * 1e3:>5.0f}ms  "
              f"{result.tool:<10}{result.summary().median * 1e3:>12.2f}"
              f"{result.error() * 1e3:>12.2f}")

    print()
    print("Every cell above is a plain ScenarioSpec — serializable,")
    print("replayable, and bit-identical under any worker count:")
    spec = ScenarioSpec(env="cellular-lte", tool="acutemon",
                        emulated_rtt=0.050, count=8, seed=7)
    print(f"  {spec.to_json()}")
    result = run_scenario(spec)
    match = campaign.result_for("nexus5", 0.050, "acutemon",
                                env="cellular-lte")
    replayed = sorted(result.user_rtts)[len(result.user_rtts) // 2]
    print(f"  replayed median: {replayed * 1e3:.2f} ms "
          f"(campaign cell uses its own grid seed: "
          f"{match.summary().median * 1e3:.2f} ms)")

    # Every completed cell was journaled under its spec's fingerprint;
    # an interrupted sweep restarts from the journal.  Resuming the
    # finished sweep re-emits all cells from cache — nothing re-runs.
    print()
    print(f"Resuming from {checkpoint.name} "
          f"({len(checkpoint.read_text().splitlines())} journal records):")
    resumed = Campaign(**GRID)
    resumed.run(workers=1, checkpoint=checkpoint, resume=True)
    counters = {metric["name"]: metric["value"]
                for metric in resumed.run_metrics["metrics"]
                if metric["kind"] == "counter"}
    print(f"  cells resumed from cache: "
          f"{counters.get('campaign.cells_resumed', 0)}, "
          f"re-executed: {counters.get('campaign.cells_run', 0)}")
    identical = [a.to_dict() for a in campaign.results] \
        == [b.to_dict() for b in resumed.results]
    print(f"  resumed results bit-identical to the original run: "
          f"{identical}")

    # The checkpoint journal's scope is one sweep; the result store
    # (docs/FABRIC.md) memoizes cells *across* campaigns.  Run the
    # grid cold into a store, then a brand-new campaign over the same
    # grid warms up from it without executing a single cell.
    store = Path(tempfile.mkdtemp()) / "results.cache"
    cold = Campaign(**GRID)
    cold.run(workers=1, store=store)
    warm = Campaign(**GRID)
    warm.run(workers=1, store=store)
    counters = {metric["name"]: metric["value"]
                for metric in warm.run_metrics["metrics"]
                if metric["kind"] == "counter"}
    print()
    print(f"Warm re-run from the result store ({store.name}):")
    print(f"  cache hits: {counters.get('campaign.cache_hits', 0)}, "
          f"cells executed: {counters.get('campaign.cells_run', 0)}")
    identical = [a.to_dict() for a in cold.results] \
        == [b.to_dict() for b in warm.results]
    print(f"  warm results bit-identical to the cold run: {identical}")

    # Theory vs simulation (docs/ANALYTIC.md): the closed-form model
    # predicts the WiFi cells before they run.  A phone-*initiated*
    # ping never pays the TIM beacon wait (the phone wakes itself to
    # send), so its inflation is the SDIO promotion term alone; a
    # *downlink* probe at the same load would also pay ~BI/2 of beacon
    # wait — the asymmetry the paper's tools exploit.
    prediction = predict_for_profile("nexus5", offered_load=1.0,
                                     base_rtt=0.020)
    predicted_up = (0.020
                    + prediction["bus_sleep_probability"]
                    * prediction["tprom"])
    cell = campaign.result_for("nexus5", 0.020, "ping", env="wifi")
    simulated = statistics.fmean(cell.rtts)
    print()
    print("Theory vs simulation for the {wifi, 20 ms, ping} cell:")
    print(f"  predicted mean RTT, uplink ping:   "
          f"{predicted_up * 1e3:.1f} ms "
          f"(base 20.0 ms + Tprom {prediction['tprom'] * 1e3:.1f} ms "
          f"x P(bus asleep) {prediction['bus_sleep_probability']:.2f})")
    print(f"  simulated mean RTT:                "
          f"{simulated * 1e3:.1f} ms")
    print(f"  a downlink probe would add the TIM wait: "
          f"+{prediction['psm_mean_beacon_wait'] * 1e3:.1f} ms "
          f"-> {prediction['psm_mean_delay'] * 1e3:.1f} ms")
    print("  tests/test_analytic_validation.py pins these agreements "
          "within declared envelopes.")


if __name__ == "__main__":
    main()
