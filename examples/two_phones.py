#!/usr/bin/env python3
"""Two phones, one path, two answers (the paper's §1 motivation).

"Our analysis also shows that the delay inflation is dependent on the
WiFi chipset utilized by the smartphone.  Therefore, two different
smartphones may obtain quite different nRTTs for same network path."

A Nexus 4 (Qualcomm WCN3660, Tip = 40 ms) and a Nexus 5 (Broadcom
BCM4339, Tip = 205 ms) measure the *same* 60 ms path side by side, first
with a stock 1-second ping, then with AcuteMon.

Run:  python examples/two_phones.py
"""

import statistics

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.net.addresses import ip
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool

PROBES = 40
RTT = 0.060


def build():
    testbed = Testbed(seed=29, emulated_rtt=RTT)
    n5 = testbed.add_phone("nexus5")  # 192.168.1.2
    n4 = testbed.add_phone("nexus4", phone_ip=ip("192.168.1.20"))
    collectors = {phone: ProbeCollector(phone) for phone in (n5, n4)}
    testbed.settle(0.5)
    return testbed, n5, n4, collectors


def median_ms(values):
    return statistics.median(values) * 1e3


def main():
    print(f"Both phones measure the same {RTT * 1e3:.0f} ms path, "
          "concurrently, on the same WLAN.")

    print()
    print("1. Stock ping, 1 s interval:")
    testbed, n5, n4, collectors = build()
    tools = {
        phone: PingTool(phone, collectors[phone], testbed.server_ip,
                        interval=1.0)
        for phone in (n5, n4)
    }
    finished = []
    for phone, tool in tools.items():
        tool.start(PROBES, on_complete=lambda r, p=phone: finished.append(p))
    while len(finished) < 2:
        testbed.sim.step()
    for phone, label in ((n5, "Nexus 5"), (n4, "Nexus 4")):
        rtts = tools[phone].rtts()
        layers = collectors[phone].layered_rtts()
        print(f"   {label}: du median {median_ms(rtts):6.1f} ms   "
              f"dn median {median_ms(layers['dn']):6.1f} ms")
    print("   Same path — the Nexus 5 inflates internally (two SDIO")
    print("   wakes), the Nexus 4 in the network (PSM beacon buffering).")

    print()
    print("2. AcuteMon, concurrently:")
    testbed, n5, n4, collectors = build()
    finished = []
    monitors = {}
    for phone in (n5, n4):
        monitor = AcuteMon(phone, collectors[phone], testbed.server_ip,
                           config=AcuteMonConfig(probe_count=PROBES))
        monitors[phone] = monitor
        monitor.start(on_complete=lambda r, p=phone: finished.append(p))
    while len(finished) < 2:
        testbed.sim.step()
    for phone, label in ((n5, "Nexus 5"), (n4, "Nexus 4")):
        rtts = monitors[phone].rtts()
        layers = collectors[phone].layered_rtts()
        print(f"   {label}: du median {median_ms(rtts):6.1f} ms   "
              f"dn median {median_ms(layers['dn']):6.1f} ms")
    print("   Now the two phones agree — and both agree with the path.")


if __name__ == "__main__":
    main()
