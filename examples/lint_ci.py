"""CI-style static-analysis invocation (docs/STATIC_ANALYSIS.md).

The shell equivalent of what this script does in-process:

    PYTHONPATH=src python -m repro lint --format json | python -m json.tool
    PYTHONPATH=src python -m repro lint --format sarif > lint.sarif

Exit code 0 = zero non-baselined findings; a CI job needs nothing else.
This script runs the engine through the CLI entry point, parses the
JSON report the way a pipeline would, and prints the rule catalog plus
the verdict.
"""

import contextlib
import io
import json

from repro.cli import main


def run_lint_json():
    """`repro lint --format json`, captured the way a pipeline sees it."""
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exit_code = main(["lint", "--format", "json"])
    return exit_code, json.loads(stdout.getvalue())


if __name__ == "__main__":
    exit_code, report = run_lint_json()

    print("repro lint --format json  (CI-style invocation)")
    print(f"  tool: {report['tool']['name']} {report['tool']['version']}")
    summary = report["summary"]
    print(f"  scanned {summary['files_scanned']} files: "
          f"{summary['findings']} finding(s), "
          f"{summary['suppressed']} suppressed by pragma, "
          f"{summary['baselined']} baselined")

    print("\nrule catalog:")
    for rule in report["rules"]:
        print(f"  {rule['id']} [{rule['category']}] "
              f"{rule['description'][:58]}")

    for finding in report["findings"]:
        print(f"  FINDING {finding['rule']} {finding['path']}:"
              f"{finding['line']} {finding['message']}")

    print(f"\nexit code: {exit_code} "
          f"({'clean — ship it' if exit_code == 0 else 'failing'})")
    assert exit_code == 0, "the tree must lint clean"
