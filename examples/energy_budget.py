#!/usr/bin/env python3
"""What accurate measurement costs in battery (the §4.1 claim).

Compares three strategies over the same 30-second window containing one
100-probe measurement of a 30 ms path:

* doing nothing (the energy floor set by PSM + SDIO sleep),
* AcuteMon (warm-up + background traffic only while measuring),
* the naive alternative: disabling the energy-saving mechanisms
  outright for the whole window.

Run:  python examples/energy_budget.py
"""

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.core.overhead import decompose
from repro.phone.energy import EnergyMeter
from repro.testbed.topology import Testbed

WINDOW = 30.0


def run(strategy, seed=33):
    testbed = Testbed(seed=seed, emulated_rtt=0.030)
    phone = testbed.add_phone(
        "nexus5",
        psm_enabled=(strategy != "always awake"),
        bus_sleep=(strategy != "always awake"),
    )
    meter = EnergyMeter(phone)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    overhead = None
    if strategy != "idle":
        config = AcuteMonConfig(
            probe_count=100,
            warmup_enabled=(strategy == "acutemon"),
            background_enabled=(strategy == "acutemon"),
        )
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            testbed.sim.step()
        overhead = decompose(collector.completed()).box("total").median
    remaining = WINDOW - testbed.sim.now
    if remaining > 0:
        testbed.run(remaining)
    return meter, overhead


def main():
    print(f"Energy over a {WINDOW:.0f} s window with one 100-probe "
          "measurement (Nexus 5, 30 ms path)")
    print()
    rows = []
    for strategy in ("idle", "acutemon", "always awake"):
        meter, overhead = run(strategy)
        rows.append((strategy, meter, overhead))
        report = meter.report()
        overhead_text = (f"{overhead * 1e3:.2f} ms median overhead"
                         if overhead is not None else "no measurement")
        print(f"  {strategy:13s} {report['energy_J']:6.2f} J "
              f"({report['avg_power_W'] * 1e3:5.0f} mW avg, "
              f"dozing {report['doze_s']:4.1f} s)  -> {overhead_text}")

    idle = rows[0][1].energy_joules()
    acute = rows[1][1].energy_joules()
    always = rows[2][1].energy_joules()
    print()
    print(f"AcuteMon's measurement cost over idle: {acute - idle:.2f} J")
    print(f"Keeping the phone awake instead would cost "
          f"{always - idle:.2f} J — {(always - idle) / (acute - idle):.0f}x "
          "more for the same accuracy.")
    print()
    print("This is §4.1's point: the warm-up scheme only suspends the")
    print("energy savers *while a measurement is running*.")


if __name__ == "__main__":
    main()
