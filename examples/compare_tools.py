#!/usr/bin/env python3
"""Tool shoot-out on a congested WLAN (the paper's §4.3, Figure 8).

Measures the same 30 ms path with AcuteMon, httping, ICMP ping and
"Java ping" (MobiPerf's InetAddress method), first on an idle WLAN and
then with an iPerf-style load generator congesting the channel
(10 UDP flows x 2.5 Mbps).

Run:  python examples/compare_tools.py  (takes a minute or two: the
cross-traffic scenario simulates thousands of frames per second)
"""

from repro import tool_comparison
from repro.analysis.cdf import Cdf
from repro.analysis.render import render_cdf

PROBES = 50


def show(results, title):
    print()
    print(f"-- {title} --")
    cdfs = {}
    for name, rtts in results.items():
        cdfs[name] = Cdf(rtts)
        print(render_cdf(cdfs[name], label=name))
    acute = cdfs["acutemon"]
    for name, cdf in cdfs.items():
        if name == "acutemon":
            continue
        gap = (cdf.median - acute.median) * 1e3
        print(f"   {name} median sits {gap:+.1f} ms right of AcuteMon")
    return cdfs


def main():
    print(f"Comparing tools on a Nexus 5, emulated RTT 30 ms, "
          f"{PROBES} probes each (quantiles in ms)")

    idle = tool_comparison("nexus5", emulated_rtt=0.030, count=PROBES,
                           seed=11, cross_traffic=False)
    show(idle, "idle WLAN")

    print()
    print("Starting 10 x 2.5 Mbps UDP cross traffic and re-measuring...")
    busy = tool_comparison("nexus5", emulated_rtt=0.030, count=PROBES,
                           seed=11, cross_traffic=True)
    cdfs = show(busy, "congested WLAN")

    print()
    fraction = cdfs["acutemon"].fraction_below(0.040)
    print(f"Even under congestion, {fraction * 100:.0f}% of AcuteMon's "
          "RTTs stay below 40 ms;")
    print("the 1-second-cadence tools all pay the SDIO wake on every probe.")


if __name__ == "__main__":
    main()
