#!/usr/bin/env python3
"""Root-cause walk-through: *why* a 1-second ping lies on a phone.

Recreates the paper's §3 analysis end to end:

1. ping at a 10 ms interval — every layer agrees with the emulated RTT;
2. ping at the 1 s default — the user-level RTT inflates;
3. the overhead decomposition places the inflation below the kernel;
4. the driver instrumentation shows the SDIO bus wake (dvsend/dvrecv);
5. the sniffer capture shows PSM null frames and beacon-buffered
   responses on a phone whose PSM timeout is shorter than the path RTT.

Run:  python examples/diagnose_inflation.py
"""

import statistics

from repro import ping_experiment
from repro.analysis.stats import SummaryStats


def section(title):
    print()
    print(f"== {title} ==")


def layer_means(result):
    return {layer: SummaryStats(values).mean * 1e3
            for layer, values in result.layers.items() if values}


def main():
    rtt = 0.060  # emulate a 60 ms path, like the paper's tc setup

    section("1. Nexus 5, ping every 10 ms (phone never sleeps)")
    fast = ping_experiment("nexus5", emulated_rtt=rtt, interval=0.010,
                           count=60, seed=1)
    means = layer_means(fast)
    print(f"   du={means['du']:.2f}  dk={means['dk']:.2f}  "
          f"dv={means['dv']:.2f}  dn={means['dn']:.2f}  (ms)")
    print("   All layers sit just above the emulated 60 ms. Accurate.")

    section("2. Nexus 5, ping every 1 s (the default!)")
    slow = ping_experiment("nexus5", emulated_rtt=rtt, interval=1.0,
                           count=60, seed=2)
    means = layer_means(slow)
    print(f"   du={means['du']:.2f}  dk={means['dk']:.2f}  "
          f"dv={means['dv']:.2f}  dn={means['dn']:.2f}  (ms)")
    print("   du inflated by "
          f"~{means['du'] - 60:.0f} ms — but dn is still clean: the network")
    print("   is fine; the phone itself inflates the measurement.")

    section("3. Where? The overhead decomposition (paper §2.1)")
    for name, label in (("du_k", "user-kernel"), ("dk_v", "kernel-driver"),
                        ("dv_n", "driver-phy")):
        box = slow.overheads.box(name)
        print(f"   Δd {label:14s} median {box.median * 1e3:7.3f} ms")
    print("   The inflation lives between the driver and the air.")

    section("4. The smoking gun: SDIO bus wake (paper §3.2.1)")
    driver = slow.phone.driver
    dvsend = [s.duration for s in driver.samples if s.kind == "send"]
    dvrecv = [s.duration for s in driver.samples if s.kind == "recv"]
    woken = [s for s in driver.samples if s.wake_paid]
    print(f"   dvsend mean {statistics.mean(dvsend) * 1e3:.2f} ms, "
          f"dvrecv mean {statistics.mean(dvrecv) * 1e3:.2f} ms")
    print(f"   bus sleeps: {driver.bus.sleep_count}, "
          f"wake penalties paid: {len(woken)}")
    print("   With a 1 s interval the bus demotes between probes "
          "(Tis = 50 ms); both")
    print("   directions pay the ~10 ms promotion delay because "
          "RTT (60 ms) > Tis.")

    section("5. And on a Nexus 4 (Tip = 40 ms): PSM hits the *network* RTT")
    n4 = ping_experiment("nexus4", emulated_rtt=rtt, interval=1.0,
                         count=60, seed=3)
    means = layer_means(n4)
    print(f"   du={means['du']:.2f}  dn={means['dn']:.2f}  (ms)")
    sniffer = n4.testbed.sniffers[0]
    pm_nulls = [r for r in sniffer.null_records() if r.frame.pm]
    beacons_with_tim = [r for r in sniffer.beacon_records()
                        if r.frame.tim_aids]
    print(f"   sniffer saw {len(pm_nulls)} PM=1 null frames (dozes) and")
    print(f"   {len(beacons_with_tim)} beacons advertising buffered frames:")
    print("   responses sat at the AP until the next beacon "
          "(102.4 ms interval),")
    print("   inflating even the sniffer-measured nRTT. "
          "Two phones, one path, two answers.")

    section("Conclusion")
    print("   Energy saving (SDIO sleep + adaptive PSM) is the source of")
    print("   inflated smartphone RTTs. AcuteMon's warm-up/background")
    print("   traffic removes both — see examples/quickstart.py.")


if __name__ == "__main__":
    main()
