"""Reading and writing pcap capture files.

Implements the classic libpcap format (magic ``0xa1b2c3d4``, version
2.4, microsecond timestamps) so that captures produced by the simulated
sniffers are genuine pcap files.
"""

import struct

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)

LINKTYPE_RAW = 101  # raw IPv4/IPv6
LINKTYPE_IEEE802_11 = 105  # 802.11 without radiotap

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapWriter:
    """Writes pcap records to a binary file object or path."""

    def __init__(self, target, linktype=LINKTYPE_IEEE802_11, snaplen=65535):
        if hasattr(target, "write"):
            self._file = target
            self._owns_file = False
        else:
            self._file = open(target, "wb")
            self._owns_file = True
        self.linktype = linktype
        self.snaplen = snaplen
        self.records_written = 0
        self._file.write(_GLOBAL_HEADER.pack(
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0, 0, snaplen, linktype,
        ))

    def write(self, timestamp, data):
        """Append one record captured at ``timestamp`` (float seconds)."""
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        captured = data[: self.snaplen]
        self._file.write(_RECORD_HEADER.pack(
            seconds, micros, len(captured), len(data),
        ))
        self._file.write(captured)
        self.records_written += 1

    def close(self):
        if self._owns_file:
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class PcapReader:
    """Iterates ``(timestamp, data)`` records from a pcap file."""

    def __init__(self, target):
        if hasattr(target, "read"):
            self._file = target
            self._owns_file = False
        else:
            self._file = open(target, "rb")
            self._owns_file = True
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError("truncated pcap global header")
        fields = _GLOBAL_HEADER.unpack(header)
        if fields[0] != PCAP_MAGIC:
            raise ValueError(f"bad pcap magic {fields[0]:#x} "
                             "(byte-swapped captures not supported)")
        self.version = (fields[1], fields[2])
        self.snaplen = fields[5]
        self.linktype = fields[6]

    def __iter__(self):
        return self

    def __next__(self):
        header = self._file.read(_RECORD_HEADER.size)
        if not header:
            self.close()
            raise StopIteration
        if len(header) < _RECORD_HEADER.size:
            raise ValueError("truncated pcap record header")
        seconds, micros, incl_len, _orig_len = _RECORD_HEADER.unpack(header)
        data = self._file.read(incl_len)
        if len(data) < incl_len:
            raise ValueError("truncated pcap record body")
        return seconds + micros * 1e-6, data

    def close(self):
        if self._owns_file:
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
