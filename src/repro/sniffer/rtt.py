"""Network-level RTT extraction from sniffer captures.

The actual nRTT ``dn = tin - ton`` is the gap between a probe's uplink
data frame hitting the air and its response coming back down (paper
Figure 1).  Two paths are provided:

* :func:`network_rtts` works on in-memory
  :class:`~repro.sniffer.sniffer.FrameRecord` lists (fast path used by
  the benchmarks), and
* :func:`network_rtts_from_pcap` parses a linktype-105 pcap file the way
  the paper's authors post-processed their captures — byte-level 802.11
  decoding included.
"""

from repro.net.packet import TCP_ACK, TcpSegment
from repro.sniffer.pcap import LINKTYPE_IEEE802_11, PcapReader
from repro.wifi.frames import decode_data_frame


def _is_pure_ack(packet):
    payload = packet.payload
    return (
        isinstance(payload, TcpSegment)
        and payload.payload_size == 0
        and payload.flags == TCP_ACK
    )


class PhyTransaction:
    """On-air request/response times for one probe."""

    __slots__ = ("probe_id", "ton", "tin")

    def __init__(self, probe_id):
        self.probe_id = probe_id
        self.ton = None
        self.tin = None

    @property
    def complete(self):
        return self.ton is not None and self.tin is not None

    @property
    def rtt(self):
        if not self.complete:
            return None
        return self.tin - self.ton

    def __repr__(self):
        return f"<PhyTransaction {self.probe_id} rtt={self.rtt}>"


def network_rtts(records, station_mac):
    """Pair probe transmissions by probe id.

    ``records`` are sniffed frames (merged across sniffers);
    ``station_mac`` identifies the phone, so direction is unambiguous.
    Returns ``{probe_id: PhyTransaction}``.

    For each probe the *first* uplink transmission is ``ton`` and the
    first *substantive* downlink one is ``tin`` (a pure TCP ACK only
    counts when no data/SYN|ACK response arrives, mirroring how the
    tools themselves timestamp).
    """
    transactions = {}
    downlink_is_ack = {}
    for record in records:
        if not record.is_data or record.status != "ok":
            continue
        probe_id = record.probe_id
        if probe_id is None:
            continue
        frame = record.frame
        txn = transactions.get(probe_id)
        if txn is None:
            txn = transactions[probe_id] = PhyTransaction(probe_id)
        if frame.src_mac == station_mac:
            if txn.ton is None:
                txn.ton = record.time
        elif frame.dst_mac == station_mac:
            pure_ack = _is_pure_ack(frame.packet)
            if txn.tin is None:
                txn.tin = record.time
                downlink_is_ack[probe_id] = pure_ack
            elif downlink_is_ack.get(probe_id) and not pure_ack:
                # Replace a bare ACK with the real (data) response.
                txn.tin = record.time
                downlink_is_ack[probe_id] = False
    return transactions


def network_rtts_from_pcap(path, station_mac):
    """Like :func:`network_rtts`, but from an on-disk pcap capture."""
    transactions = {}
    downlink_is_ack = {}
    with PcapReader(path) as reader:
        if reader.linktype != LINKTYPE_IEEE802_11:
            raise ValueError(
                f"expected 802.11 capture (linktype 105), got {reader.linktype}"
            )
        for timestamp, data in reader:
            decoded = decode_data_frame(data)
            if decoded is None:
                continue
            info, packet = decoded
            probe_id = packet.probe_id
            if probe_id is None:
                continue
            txn = transactions.get(probe_id)
            if txn is None:
                txn = transactions[probe_id] = PhyTransaction(probe_id)
            if info["src_mac"] == station_mac:
                if txn.ton is None:
                    txn.ton = timestamp
            elif info["dst_mac"] == station_mac:
                pure_ack = _is_pure_ack(packet)
                if txn.tin is None:
                    txn.tin = timestamp
                    downlink_is_ack[probe_id] = pure_ack
                elif downlink_is_ack.get(probe_id) and not pure_ack:
                    txn.tin = timestamp
                    downlink_is_ack[probe_id] = False
    return transactions


def completed_rtts(transactions):
    """Extract ``{probe_id: rtt_seconds}`` for completed transactions."""
    return {
        probe_id: txn.rtt
        for probe_id, txn in transactions.items()
        if txn.complete
    }
