"""A wireless sniffer attached to the channel.

Records every physical transmission it hears with airtime boundaries.
Real monitor-mode captures drop frames under load; ``capture_loss``
models that, and is the reason the paper deployed *three* sniffers
(see :mod:`repro.sniffer.merge`).
"""

from repro.wifi.frames import BeaconFrame, DataFrame, NullDataFrame


class FrameRecord:
    """One sniffed transmission."""

    __slots__ = ("time", "end_time", "frame", "status", "sniffer")

    def __init__(self, time, end_time, frame, status, sniffer=""):
        self.time = time  # tx start: the sniffer's timestamp
        self.end_time = end_time
        self.frame = frame
        self.status = status  # 'ok' or 'collision'
        self.sniffer = sniffer

    @property
    def is_data(self):
        return isinstance(self.frame, DataFrame)

    @property
    def is_beacon(self):
        return isinstance(self.frame, BeaconFrame)

    @property
    def is_null(self):
        return isinstance(self.frame, NullDataFrame)

    @property
    def probe_id(self):
        if self.is_data:
            return self.frame.packet.probe_id
        return None

    def dedup_key(self):
        """Identity of the underlying transmission across sniffers."""
        return (round(self.time * 1e7), self.frame.src_mac.value,
                getattr(self.frame, "seq", 0))

    def __repr__(self):
        return (
            f"<FrameRecord t={self.time * 1e3:.3f}ms {self.frame!r} "
            f"[{self.status}]>"
        )


class WirelessSniffer:
    """A monitor-mode capture device on the WiFi channel.

    Parameters
    ----------
    capture_loss:
        Probability of missing any given frame (0 = perfect capture).
    pcap_path:
        When set, every captured frame is also encoded to real 802.11
        bytes and appended to a linktype-105 pcap file.  Call
        :meth:`close` to flush it.
    """

    def __init__(self, sim, channel, name="sniffer", capture_loss=0.0,
                 rng=None, pcap_path=None, capture_collisions=False,
                 clock_offset=0.0):
        if capture_loss and rng is None:
            rng = sim.rng.stream(f"sniffer:{name}")
        self.sim = sim
        self.name = name
        self.capture_loss = capture_loss
        self.capture_collisions = capture_collisions
        #: Constant clock skew of this capture device relative to true
        #: time.  Real monitor-mode boxes are not synchronised; use
        #: :func:`repro.sniffer.merge.align_clocks` before merging.
        self.clock_offset = clock_offset
        self.rng = rng
        self.records = []
        self.frames_missed = 0
        self._pcap = None
        if pcap_path is not None:
            from repro.sniffer.pcap import LINKTYPE_IEEE802_11, PcapWriter

            self._pcap = PcapWriter(pcap_path, linktype=LINKTYPE_IEEE802_11)
        channel.add_monitor(self._on_transmission)

    def _on_transmission(self, frame, tx_start, tx_end, status):
        if status == "collision" and not self.capture_collisions:
            return
        if self.capture_loss and self.rng.random() < self.capture_loss:
            self.frames_missed += 1
            return
        stamped = tx_start + self.clock_offset
        self.records.append(FrameRecord(stamped, tx_end + self.clock_offset,
                                        frame, status, sniffer=self.name))
        if self._pcap is not None and hasattr(frame, "encode"):
            self._pcap.write(stamped, frame.encode())

    # -- convenience filters ------------------------------------------------

    def data_records(self):
        """Captured unicast data frames (carrying IP packets)."""
        return [record for record in self.records if record.is_data]

    def beacon_records(self):
        return [record for record in self.records if record.is_beacon]

    def null_records(self):
        """Null-function frames: the PM-bit signalling AcuteMon relies on."""
        return [record for record in self.records if record.is_null]

    def records_for_probe(self, probe_id):
        return [r for r in self.records if r.probe_id == probe_id]

    def clear(self):
        self.records = []

    def close(self):
        if self._pcap is not None:
            self._pcap.close()
            self._pcap = None

    def __repr__(self):
        return f"<WirelessSniffer {self.name} records={len(self.records)}>"
