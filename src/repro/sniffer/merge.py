"""Multi-sniffer merging and clock alignment.

A single monitor-mode capture misses frames; the paper wires three
sniffers to the same switch (clock-synchronised) and merges their
captures into one authoritative timeline.  :func:`merge_records`
reproduces the merge: union the records, deduplicate physical
transmissions, and return them in time order.

Real capture boxes are *not* naturally synchronised.  The standard fix
is to align on common broadcast events — beacons carry a source MAC and
a sequence number, are heard by every sniffer, and arrive ~10/s —
exactly what :func:`estimate_offsets` / :func:`align_clocks` implement.
"""

from repro.sniffer.sniffer import FrameRecord


def estimate_offsets(sniffers, reference=None):
    """Per-sniffer clock offsets relative to ``reference`` (the first
    sniffer by default), from matched beacon observations.

    Returns ``{sniffer_name: offset_seconds}`` such that subtracting the
    offset from that sniffer's timestamps lands them on the reference
    clock.  Sniffers sharing no beacons with the reference are omitted.
    """
    from repro.analysis.stats import percentile

    sniffers = list(sniffers)
    if reference is None:
        reference = sniffers[0]

    def beacon_index(sniffer):
        return {
            (record.frame.src_mac.value, record.frame.seq): record.time
            for record in sniffer.records if record.is_beacon
        }

    reference_beacons = beacon_index(reference)
    offsets = {getattr(reference, "name", "reference"): 0.0}
    for sniffer in sniffers:
        if sniffer is reference:
            continue
        deltas = [
            time - reference_beacons[key]
            for key, time in beacon_index(sniffer).items()
            if key in reference_beacons
        ]
        if deltas:
            offsets[sniffer.name] = percentile(deltas, 50)
    return offsets


def align_clocks(sniffers, reference=None):
    """Return per-sniffer record lists rebased onto the reference clock."""
    offsets = estimate_offsets(sniffers, reference=reference)
    aligned = []
    for sniffer in sniffers:
        offset = offsets.get(sniffer.name)
        if offset is None:
            continue
        aligned.append([
            FrameRecord(record.time - offset, record.end_time - offset,
                        record.frame, record.status, sniffer=record.sniffer)
            for record in sniffer.records
        ])
    return aligned


def merge_records(*sniffers):
    """Merge capture records from several sniffers.

    Accepts :class:`~repro.sniffer.sniffer.WirelessSniffer` objects or
    plain record lists.  Returns deduplicated records sorted by capture
    time.
    """
    seen = set()
    merged = []
    for sniffer in sniffers:
        records = getattr(sniffer, "records", sniffer)
        for record in records:
            key = record.dedup_key()
            if key in seen:
                continue
            seen.add(key)
            merged.append(record)
    merged.sort(key=lambda record: (record.time, record.frame.src_mac.value))
    return merged


def coverage(merged, *sniffers):
    """Fraction of the merged timeline each sniffer captured.

    Returns ``{sniffer_name: fraction}`` — a quick health check that the
    merge actually added value (any fraction < 1.0 means that sniffer
    alone would have missed frames).
    """
    total = len(merged)
    if total == 0:
        return {getattr(s, "name", f"sniffer{i}"): 1.0
                for i, s in enumerate(sniffers)}
    out = {}
    for index, sniffer in enumerate(sniffers):
        records = getattr(sniffer, "records", sniffer)
        name = getattr(sniffer, "name", f"sniffer{index}")
        out[name] = len(records) / total
    return out
