"""Wireless sniffers and capture analysis.

The paper's testbed places three wire-synchronised sniffers next to the
AP to estimate the on-air timestamps ``ton``/``tin`` (the ground truth
``dn``).  This package provides:

* :mod:`repro.sniffer.pcap` — a real pcap file writer/reader,
* :mod:`repro.sniffer.sniffer` — a channel monitor that records every
  transmission (optionally with capture loss) and can dump
  linktype-105 (802.11) captures,
* :mod:`repro.sniffer.merge` — multi-sniffer merging, which recovers a
  complete view from individually lossy captures (why the paper used
  three sniffers),
* :mod:`repro.sniffer.rtt` — network-level RTT extraction from capture
  records or pcap files.
"""

from repro.sniffer.merge import align_clocks, estimate_offsets, merge_records
from repro.sniffer.pcap import (
    LINKTYPE_IEEE802_11,
    LINKTYPE_RAW,
    PcapReader,
    PcapWriter,
)
from repro.sniffer.rtt import network_rtts, network_rtts_from_pcap
from repro.sniffer.sniffer import FrameRecord, WirelessSniffer

__all__ = [
    "FrameRecord",
    "LINKTYPE_IEEE802_11",
    "LINKTYPE_RAW",
    "PcapReader",
    "PcapWriter",
    "WirelessSniffer",
    "align_clocks",
    "estimate_offsets",
    "merge_records",
    "network_rtts",
    "network_rtts_from_pcap",
]
