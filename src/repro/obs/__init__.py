"""Unified observability: metrics, timed spans, exporters.

Every :class:`~repro.sim.scheduler.Simulator` carries three recording
facilities, all disabled by default so the hot path stays one attribute
check per call site:

* ``sim.trace`` — structured event records
  (:class:`~repro.sim.trace.TraceRecorder`),
* ``sim.metrics`` — counters / gauges / latency histograms
  (:class:`~repro.obs.metrics.MetricsRegistry`),
* ``sim.spans`` — named sim-time intervals that feed both of the above
  (:class:`~repro.obs.spans.SpanTracker`).

Flip them all on with :func:`enable_observability`, run the experiment,
then export through :mod:`repro.obs.export` (JSON-lines, Prometheus
text, Chrome trace-event JSON).  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.attribution import (
    COMPONENTS,
    ProbeAttribution,
    attribute_probes,
    attribute_record,
)
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    write_chrome_trace,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.names import (
    SCHEDULER_EVENTS_CANCELED,
    SCHEDULER_EVENTS_FIRED,
    SCHEDULER_PENDING_EVENTS,
    SIM_CLOCK_SECONDS,
)
from repro.obs.sketch import DDSketch
from repro.obs.spans import Span, SpanTracker, span_metric_name

__all__ = [
    "COMPONENTS",
    "DDSketch",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeAttribution",
    "Span",
    "SpanTracker",
    "attribute_probes",
    "attribute_record",
    "enable_observability",
    "finalize_sim_metrics",
    "merge_snapshots",
    "span_metric_name",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "write_chrome_trace",
    "write_snapshot",
]


def enable_observability(sim, trace=True, metrics=True, spans=True):
    """Switch a simulator's recording facilities on; returns ``sim``."""
    if trace:
        sim.trace.enabled = True
    if metrics:
        sim.metrics.enabled = True
    if spans:
        sim.spans.enabled = True
    return sim


def finalize_sim_metrics(sim):
    """Push end-of-run scheduler gauges into the registry.

    Call after the simulation settles (experiment runners do this before
    snapshotting) so totals that live as plain attributes on the
    simulator appear alongside the instrumented metrics.
    """
    if not sim.metrics.enabled:
        return
    metrics = sim.metrics
    metrics.set_gauge(SCHEDULER_EVENTS_FIRED, sim.events_fired)
    metrics.set_gauge(SCHEDULER_EVENTS_CANCELED, sim.events_canceled)
    metrics.set_gauge(SCHEDULER_PENDING_EVENTS, sim.pending())
    metrics.set_gauge(SIM_CLOCK_SECONDS, sim.now)
