"""Timed spans: named sim-time intervals layered on trace + metrics.

A span is one interval of simulated time with a dotted name and optional
fields — ``sdio.promotion`` (the bus coming up), ``psm.buffered`` (a
downlink frame parked at the AP), ``measurement.probe`` (one user-level
probe transaction).  Completing a span does three things at once:

* stores the interval for timeline export
  (:func:`repro.obs.export.to_chrome_trace`),
* observes the duration in a latency histogram named after the span
  (``sdio.promotion`` → ``sdio_promotion_seconds``) in the attached
  :class:`~repro.obs.metrics.MetricsRegistry`,
* emits a record into the attached
  :class:`~repro.sim.trace.TraceRecorder` under the span's first dotted
  component as category (``sdio``, ``psm``, ``measurement``).

The tracker is disabled by default; call sites guard exactly like trace
call sites::

    if sim.spans.enabled:
        sim.spans.record("sdio.promotion", t0, t0 + delay, bus=self.name)

For intervals whose end is not known upfront, pair :meth:`SpanTracker.begin`
with :meth:`SpanTracker.end` around the scheduled completion.

Spans additionally carry a *probe context* for causal RTT attribution
(docs/OBSERVABILITY.md): while a measurement probe is in flight the
:class:`~repro.core.measurement.ProbeCollector` sets
:meth:`SpanTracker.set_probe`, and every span recorded without an
explicit ``probe_id`` field inherits the in-flight probe's id.  Spans
recorded at layers that see the packet itself (channel airtime, netem
wire delay, driver dpc queueing) pass ``probe_id=packet.probe_id``
explicitly, which always wins over the context.  The per-probe span
sets are what :mod:`repro.obs.attribution` folds into the paper's
delay-decomposition components.
"""


class Span:
    """One completed named interval of simulated time."""

    __slots__ = ("name", "start", "end", "fields")

    def __init__(self, name, start, end, fields):
        self.name = name
        self.start = start
        self.end = end
        self.fields = fields

    @property
    def duration(self):
        return self.end - self.start

    @property
    def category(self):
        """First dotted component (``sdio.promotion`` → ``sdio``)."""
        return self.name.partition(".")[0]

    def __repr__(self):
        return (f"<Span {self.name} [{self.start * 1e3:.3f}ms "
                f"+{self.duration * 1e3:.3f}ms]>")


def span_metric_name(name):
    """Histogram name a span feeds (``psm.beacon_wait`` →
    ``psm_beacon_wait_seconds``)."""
    return name.replace(".", "_") + "_seconds"


class SpanTracker:
    """Collects :class:`Span` objects and fans them out to trace/metrics."""

    __slots__ = ("enabled", "metrics", "trace", "spans", "limit", "dropped",
                 "probe_context", "_open", "_next_token")

    def __init__(self, metrics=None, trace=None, enabled=False,
                 limit=200_000):
        self.enabled = enabled
        self.metrics = metrics
        self.trace = trace
        self.spans = []
        self.limit = limit
        self.dropped = 0
        #: The in-flight probe id spans inherit (see :meth:`set_probe`).
        self.probe_context = None
        self._open = {}
        self._next_token = 1

    # -- probe context ----------------------------------------------------

    def set_probe(self, probe_id):
        """Attribute subsequently recorded spans to ``probe_id``.

        Spans recorded with an explicit ``probe_id`` field keep it; the
        context only fills the gap for layers that cannot see the
        packet (SDIO wake, PSM beacon wait).
        """
        self.probe_context = probe_id

    def clear_probe(self, probe_id=None):
        """Drop the probe context.

        With ``probe_id`` given, clears only if that probe still owns
        the context — a completing probe must not clear a successor's
        context when transactions overlap (10 ms-interval pings).
        """
        if probe_id is None or self.probe_context == probe_id:
            self.probe_context = None

    # -- recording --------------------------------------------------------

    def record(self, name, start, end, **fields):
        """Store one completed interval; returns the :class:`Span`."""
        if self.probe_context is not None and "probe_id" not in fields:
            fields["probe_id"] = self.probe_context
        span = Span(name, start, end, fields)
        if self.limit is not None and len(self.spans) >= self.limit:
            self.dropped += 1
        else:
            self.spans.append(span)
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe(span_metric_name(name), end - start)
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.record(end, span.category, f"span {name}",
                         start=start, duration=end - start, **fields)
        return span

    def begin(self, name, start, **fields):
        """Open a span whose end is not yet known; returns a token."""
        token = self._next_token
        self._next_token += 1
        self._open[token] = (name, start, fields)
        return token

    def end(self, token, end, **extra_fields):
        """Complete a span opened with :meth:`begin`.

        Unknown (already-ended or discarded) tokens are a no-op,
        returning ``None``.
        """
        opened = self._open.pop(token, None)
        if opened is None:
            return None
        name, start, fields = opened
        if extra_fields:
            fields = {**fields, **extra_fields}
        return self.record(name, start, end, **fields)

    def discard(self, token):
        """Abandon an open span without recording it."""
        self._open.pop(token, None)

    # -- access -----------------------------------------------------------

    def by_name(self, name):
        return [span for span in self.spans if span.name == name]

    def by_probe(self, probe_id):
        """Spans attributed (explicitly or by context) to one probe."""
        return [span for span in self.spans
                if span.fields.get("probe_id") == probe_id]

    def names(self):
        return sorted({span.name for span in self.spans})

    def clear(self):
        self.spans.clear()
        self._open.clear()
        self.dropped = 0
        self.probe_context = None

    def __iter__(self):
        return iter(self.spans)

    def __len__(self):
        return len(self.spans)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"<SpanTracker {state} spans={len(self.spans)}>"
