"""Causal delay decomposition: attribute each probe's RTT to mechanisms.

The paper's core claim is that the user-level RTT ``du`` a smartphone
tool reports decomposes into mechanism-level delays — SDIO bus
promotion (Tprom), PSM beacon waits, driver queueing, 802.11 airtime —
stacked on top of the wired-path RTT.  This module computes that
decomposition *per probe* from the spans the instrumented stack records
(see :class:`~repro.obs.spans.SpanTracker`'s probe context), producing
for every completed probe transaction::

    du == sdio.promotion + psm.beacon_wait + queueing + airtime + wire
          + unattributed

The identity is **exact by construction**: all arithmetic runs on an
integer-nanosecond grid, each component is clipped to the probe's
user-level window ``[tou, tiu]`` and then clamped to the budget still
unexplained, in the declared :data:`COMPONENTS` order.  The
``unattributed`` residual is whatever remains — explicit, and never
negative.  (Clipping to the window keeps ambient spans — a doze period
bracketing the probe — from over-claiming; clamping keeps overlapping
mechanisms, e.g. a beacon wait during a bus wake, from double-counting.)

Per-cell aggregation feeds the ``probe_component_seconds`` histogram
(one label per component), which rides the ordinary snapshot → journal →
:func:`~repro.obs.metrics.merge_snapshots` pipeline into
:mod:`repro.analysis.decompose` — so campaign-scale decomposition
reports are bit-identical across serial, parallel, and resumed runs.
"""

from repro.obs.names import (
    PROBE_COMPONENT_SECONDS,
    SPAN_DRIVER_QUEUEING,
    SPAN_PSM_BEACON_WAIT,
    SPAN_SDIO_PROMOTION,
    SPAN_WIRE_NETEM,
    SPAN_WLAN_AIRTIME,
)

#: Component name -> span names that feed it, in attribution order.
#: Order is the clamping priority: earlier components claim budget
#: first, so the mechanisms the paper identifies as dominant
#: (bus promotion, beacon waits) are never starved by later ones.
COMPONENT_SPANS = (
    ("sdio.promotion", (SPAN_SDIO_PROMOTION,)),
    ("psm.beacon_wait", (SPAN_PSM_BEACON_WAIT,)),
    ("queueing", (SPAN_DRIVER_QUEUEING,)),
    ("airtime", (SPAN_WLAN_AIRTIME,)),
    ("wire", (SPAN_WIRE_NETEM,)),
)

#: The explicit residual component.
RESIDUAL = "unattributed"

#: All component names in report order (residual last).
COMPONENTS = tuple(name for name, _ in COMPONENT_SPANS) + (RESIDUAL,)

_NS = 1_000_000_000


def _ns(seconds):
    return round(seconds * _NS)


class ProbeAttribution:
    """One probe's RTT split into named components (integer ns).

    ``total_ns == sum(component_ns.values()) + residual_ns`` holds
    exactly; ``residual_ns >= 0`` always.
    """

    __slots__ = ("probe_id", "kind", "total_ns", "component_ns",
                 "residual_ns")

    def __init__(self, probe_id, kind, total_ns, component_ns, residual_ns):
        self.probe_id = probe_id
        self.kind = kind
        self.total_ns = total_ns
        self.component_ns = component_ns
        self.residual_ns = residual_ns

    @property
    def total(self):
        """The attributed RTT in seconds (``du`` on the ns grid)."""
        return self.total_ns / _NS

    def components(self):
        """``{component: seconds}`` including the residual, in
        :data:`COMPONENTS` order."""
        out = {name: self.component_ns[name] / _NS
               for name, _ in COMPONENT_SPANS}
        out[RESIDUAL] = self.residual_ns / _NS
        return out

    def as_dict(self):
        return {
            "probe_id": self.probe_id,
            "kind": self.kind,
            "total_ns": self.total_ns,
            "components_ns": dict(self.component_ns),
            "residual_ns": self.residual_ns,
        }

    def __repr__(self):
        parts = " ".join(f"{name}={ns / 1e6:.2f}ms"
                         for name, ns in self.component_ns.items() if ns)
        return (f"<ProbeAttribution #{self.probe_id} "
                f"du={self.total_ns / 1e6:.2f}ms {parts} "
                f"residual={self.residual_ns / 1e6:.2f}ms>")


def spans_by_probe(spans):
    """Index an iterable of spans by their ``probe_id`` field."""
    index = {}
    for span in spans:
        probe_id = span.fields.get("probe_id")
        if probe_id is not None:
            index.setdefault(probe_id, []).append(span)
    return index


def attribute_record(record, probe_spans):
    """Decompose one completed :class:`~repro.core.measurement.ProbeRecord`.

    ``probe_spans`` are the spans attributed to this probe (any order).
    Returns a :class:`ProbeAttribution`, or ``None`` when the record
    has no user-level RTT yet.
    """
    if record.user_send is None or record.user_recv is None:
        return None
    window_start = record.user_send
    window_end = record.user_recv
    total_ns = _ns(window_end - window_start)
    by_name = {}
    for span in probe_spans:
        by_name.setdefault(span.name, []).append(span)
    remaining = total_ns
    component_ns = {}
    for component, span_names in COMPONENT_SPANS:
        raw = 0.0
        for span_name in span_names:
            for span in by_name.get(span_name, ()):
                overlap = (min(span.end, window_end)
                           - max(span.start, window_start))
                if overlap > 0:
                    raw += overlap
        claimed = min(_ns(raw), remaining)
        component_ns[component] = claimed
        remaining -= claimed
    return ProbeAttribution(record.probe_id, record.kind, total_ns,
                            component_ns, remaining)


def attribute_probes(collector, spans, metrics=None, kind="probe"):
    """Decompose every completed probe of a collector.

    ``spans`` is the cell's :class:`~repro.obs.spans.SpanTracker` (or
    any iterable of spans).  With ``metrics`` given (an *enabled*
    registry), each component lands in the ``probe_component_seconds``
    histogram under a ``component`` label — one observation per probe
    and component, residual included, so every component series has the
    same count and the per-cell aggregate stays exactly summable.

    Returns the list of :class:`ProbeAttribution` in probe-id order.
    """
    index = spans_by_probe(spans)
    attributions = []
    for record in collector.completed(kind):
        attribution = attribute_record(record,
                                       index.get(record.probe_id, ()))
        if attribution is None:
            continue
        attributions.append(attribution)
        if metrics is not None:
            labels = {"kind": kind}
            for component, seconds in attribution.components().items():
                metrics.observe(  # obs: caller-guarded
                    PROBE_COMPONENT_SECONDS, seconds,
                    labels={"component": component, **labels})
    return attributions
