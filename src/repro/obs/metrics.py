"""Metrics registry: counters, gauges, and sketch-backed histograms.

One :class:`MetricsRegistry` attaches to each
:class:`~repro.sim.scheduler.Simulator` (``sim.metrics``).  It is
disabled by default so the hot path costs a single attribute check; call
sites follow the established trace-guard idiom::

    if sim.metrics.enabled:
        sim.metrics.inc(SDIO_WAKES_TOTAL, labels={"bus": self.name})

Metrics are identified by ``(name, labels)``.  Three kinds exist:

* :class:`Counter` — monotonically increasing value (``inc``),
* :class:`Gauge` — point-in-time value (``set``),
* :class:`Histogram` — fixed upper-bound buckets (kept for the
  Prometheus cumulative-``le`` export) plus an embedded
  :class:`~repro.obs.sketch.DDSketch` that supplies the p50/p95/p99
  estimates with a relative-error bound instead of bucket-grid
  interpolation error.

Both layers make snapshots *mergeable*: campaign workers return
per-cell snapshots and the parent folds them together — bucket counts
and sketch bins sum exactly (:func:`merge_snapshots`) — so a parallel
sweep produces bit-identically the snapshot a serial one does.  Metrics
whose values depend on wall-clock time (handler self-time) are flagged
``volatile`` and excluded from snapshots by default, keeping snapshots
deterministic.
"""

from bisect import bisect_left

from repro.obs.sketch import DDSketch, DEFAULT_ALPHA, merge_payloads

#: Default latency buckets (seconds).  Spans the sub-millisecond driver
#: costs up to the multi-beacon PSM waits the paper measures; anything
#: beyond 1 s lands in the implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS = (
    100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
    75e-3, 100e-3, 150e-3, 250e-3, 500e-3, 1.0,
)


def _label_key(labels):
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (or sum)."""

    kind = "counter"

    __slots__ = ("name", "labels", "value", "volatile")

    def __init__(self, name, labels=(), volatile=False):
        self.name = name
        self.labels = labels
        self.value = 0
        self.volatile = volatile

    def inc(self, amount=1):
        self.value += amount

    def payload(self):
        return {"value": self.value}

    def __repr__(self):
        return f"<Counter {self.name}{dict(self.labels)} {self.value}>"


class Gauge:
    """A point-in-time value."""

    kind = "gauge"

    __slots__ = ("name", "labels", "value", "volatile")

    def __init__(self, name, labels=(), volatile=False):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.volatile = volatile

    def set(self, value):
        self.value = value

    def payload(self):
        return {"value": self.value}

    def __repr__(self):
        return f"<Gauge {self.name}{dict(self.labels)} {self.value}>"


def _bucket_percentile(bounds, counts, total, minimum, maximum, q):
    """Interpolated percentile estimate from fixed-bucket counts.

    ``counts`` are per-bucket (non-cumulative), one entry per bound plus
    the trailing +Inf overflow bucket.  The estimate interpolates
    linearly within the bucket holding the target rank, with the
    observed min/max clamping the open-ended edge buckets.
    """
    if not total:
        return None
    target = total * q / 100.0
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count and cumulative + count >= target:
            lower = bounds[index - 1] if index > 0 else minimum
            upper = bounds[index] if index < len(bounds) else maximum
            lower = max(lower, minimum)
            upper = min(upper, maximum)
            if upper <= lower:
                return min(max(lower, minimum), maximum)
            fraction = (target - cumulative) / count
            return min(max(lower + (upper - lower) * fraction, minimum),
                       maximum)
        cumulative += count
    return maximum


class Histogram:
    """Latency histogram: fixed export buckets plus a quantile sketch.

    ``buckets`` are inclusive upper bounds in increasing order; one
    implicit +Inf bucket catches overflow.  Buckets are fixed at
    creation so two histograms of the same metric merge exactly; they
    feed the Prometheus cumulative-``le`` export.  Every observation
    additionally lands in a :class:`~repro.obs.sketch.DDSketch`, which
    is what :meth:`percentile` reads — estimates carry the sketch's
    relative-error bound (default 1%) independent of the bucket grid,
    clamped to the observed ``[min, max]`` so degenerate distributions
    (a single repeated value) report exactly.
    """

    kind = "histogram"

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "minimum", "maximum", "volatile", "sketch")

    def __init__(self, name, labels=(), buckets=DEFAULT_LATENCY_BUCKETS,
                 volatile=False, sketch_alpha=DEFAULT_ALPHA):
        bounds = tuple(buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram buckets must increase: {bounds!r}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.minimum = None
        self.maximum = None
        self.volatile = volatile
        self.sketch = DDSketch(alpha=sketch_alpha)

    def observe(self, value):
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.sketch.add(value)

    def percentile(self, q):
        """Estimated ``q``-th percentile (``None`` while empty).

        Sketch estimate clamped to the observed ``[min, max]``; within
        relative error ``sketch.alpha`` of the exact sample quantile.
        """
        if not self.count:
            return None
        estimate = self.sketch.quantile(q / 100.0)
        return min(max(estimate, self.minimum), self.maximum)

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p95(self):
        return self.percentile(95)

    @property
    def p99(self):
        return self.percentile(99)

    @property
    def mean(self):
        return self.sum / self.count if self.count else None

    def payload(self):
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "sketch": self.sketch.payload(),
        }

    def __repr__(self):
        return (f"<Histogram {self.name}{dict(self.labels)} n={self.count} "
                f"p50={self.p50}>")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by ``(name, labels)``."""

    __slots__ = ("enabled", "default_buckets", "_metrics")

    def __init__(self, enabled=True, default_buckets=DEFAULT_LATENCY_BUCKETS):
        self.enabled = enabled
        self.default_buckets = tuple(default_buckets)
        self._metrics = {}

    # -- get-or-create ----------------------------------------------------

    def _get(self, cls, name, labels, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name, labels=None, volatile=False):
        return self._get(Counter, name, labels, volatile=volatile)

    def gauge(self, name, labels=None, volatile=False):
        return self._get(Gauge, name, labels, volatile=volatile)

    def histogram(self, name, labels=None, buckets=None, volatile=False):
        return self._get(Histogram, name, labels,
                         buckets=buckets or self.default_buckets,
                         volatile=volatile)

    # -- one-shot conveniences (the usual call-site form) -----------------

    def inc(self, name, amount=1, labels=None):
        self.counter(name, labels=labels).inc(amount)

    def set_gauge(self, name, value, labels=None):
        self.gauge(name, labels=labels).set(value)

    def observe(self, name, value, labels=None, buckets=None):
        self.histogram(name, labels=labels, buckets=buckets).observe(value)

    # -- access -----------------------------------------------------------

    def get(self, name, labels=None):
        """The metric registered under ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def metrics(self):
        """All metrics, sorted by (name, labels) for determinism."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def clear(self):
        self._metrics.clear()

    def __len__(self):
        return len(self._metrics)

    def __iter__(self):
        return iter(self.metrics())

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, include_volatile=False):
        """A JSON-ready, deterministically ordered dump of every metric.

        Volatile (wall-clock-derived) metrics are excluded unless asked
        for, so snapshots of identical simulations compare equal.
        """
        out = []
        for metric in self.metrics():
            if metric.volatile and not include_volatile:
                continue
            entry = {"name": metric.name, "kind": metric.kind,
                     "labels": dict(metric.labels)}
            entry.update(metric.payload())
            out.append(entry)
        return {"metrics": out}

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state} metrics={len(self._metrics)}>"


def _merge_entry(into, entry):
    if into["kind"] != entry["kind"]:
        raise ValueError(
            f"cannot merge {entry['name']!r}: kind {entry['kind']} != "
            f"{into['kind']}")
    if into["kind"] == "counter":
        into["value"] += entry["value"]
    elif into["kind"] == "gauge":
        into["value"] = entry["value"]  # later snapshots win
    else:
        if into["buckets"] != entry["buckets"]:
            raise ValueError(
                f"cannot merge {entry['name']!r}: bucket bounds differ")
        into["counts"] = [a + b
                          for a, b in zip(into["counts"], entry["counts"])]
        into["sum"] += entry["sum"]
        into["count"] += entry["count"]
        for field, pick in (("min", min), ("max", max)):
            values = [v for v in (into[field], entry[field]) if v is not None]
            into[field] = pick(values) if values else None
        sketch_a, sketch_b = into.get("sketch"), entry.get("sketch")
        if sketch_a is not None and sketch_b is not None:
            merged = merge_payloads(sketch_a, sketch_b)
            into["sketch"] = merged
            sketch = DDSketch.from_payload(merged)
            for q in (50, 95, 99):
                estimate = sketch.quantile(q / 100.0)
                if estimate is None:
                    into[f"p{q}"] = None
                else:
                    into[f"p{q}"] = min(max(estimate, into["min"]),
                                        into["max"])
        else:
            # Pre-sketch snapshots (older saved campaigns): fall back to
            # the fixed-bucket interpolation they were built with.
            into.pop("sketch", None)
            for q in (50, 95, 99):
                into[f"p{q}"] = _bucket_percentile(
                    tuple(into["buckets"]), into["counts"], into["count"],
                    into["min"], into["max"], q)


def merge_snapshots(snapshots):
    """Fold :meth:`MetricsRegistry.snapshot` dicts into one.

    Counters, histogram buckets and sketch bins sum; gauges keep the
    last value seen (snapshots merge in the order given, which campaign
    code keeps in grid order).  Histogram percentiles are recomputed
    from the merged sketch, so the result is exactly — bit-identically —
    what one registry observing all the samples would report, for any
    partition of the observations across snapshots.
    """
    merged = {}
    for snapshot in snapshots:
        for entry in snapshot.get("metrics", ()):
            key = (entry["name"], _label_key(entry["labels"]))
            if key in merged:
                _merge_entry(merged[key], entry)
            else:
                copied = dict(entry)
                if copied["kind"] == "histogram":
                    copied["buckets"] = list(copied["buckets"])
                    copied["counts"] = list(copied["counts"])
                    sketch = copied.get("sketch")
                    if sketch is not None:
                        copied["sketch"] = {
                            "alpha": sketch["alpha"],
                            "zero": sketch["zero"],
                            "bins": [list(pair) for pair in sketch["bins"]],
                        }
                copied["labels"] = dict(copied["labels"])
                merged[key] = copied
    return {"metrics": [merged[key] for key in sorted(merged)]}
