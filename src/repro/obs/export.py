"""Exporters: JSON-lines, Prometheus text, Chrome trace-event JSON.

All three work from plain data — a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict for metrics and
an iterable of :class:`~repro.obs.spans.Span` for timelines — so they
export merged campaign snapshots exactly as they export a live registry.

The Chrome trace output loads directly into ``chrome://tracing`` (or
https://ui.perfetto.dev): each span category (``sdio``, ``psm``,
``measurement``, ...) becomes one named track, and the bus/PSM/probe
spans line up to reconstruct the paper's delay decomposition — a probe
span visibly covering an ``sdio.promotion`` or ``psm.buffered`` span
*is* the inflation being explained.
"""

import json


def _fmt(value):
    """Prometheus number formatting (ints without a trailing .0)."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float)
                                  and value == int(value)):
        return str(int(value))
    return repr(value)


def _escape_label_value(value):
    """Escape a label value per the exposition format (version 0.0.4):
    backslash, double-quote and newline are the only escapes."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels, extra=None):
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(items[key])}"'
                    for key in sorted(items))
    return "{" + body + "}"


def to_jsonl(snapshot):
    """One JSON object per line, one line per metric."""
    lines = [json.dumps(entry, sort_keys=True)
             for entry in snapshot.get("metrics", ())]
    return "\n".join(lines) + ("\n" if lines else "")


def to_prometheus(snapshot):
    """Prometheus text exposition format (version 0.0.4)."""
    lines = []
    typed = set()
    for entry in snapshot.get("metrics", ()):
        name, kind, labels = entry["name"], entry["kind"], entry["labels"]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_str(labels)} {_fmt(entry['value'])}")
            continue
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            lines.append(f"{name}_bucket"
                         f"{_label_str(labels, {'le': _fmt(bound)})} "
                         f"{cumulative}")
        lines.append(f"{name}_bucket{_label_str(labels, {'le': '+Inf'})} "
                     f"{entry['count']}")
        lines.append(f"{name}_sum{_label_str(labels)} {_fmt(entry['sum'])}")
        lines.append(f"{name}_count{_label_str(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(spans, pid=0):
    """Chrome trace-event JSON (the ``traceEvents`` array format).

    Spans become complete ("X") events; each span category gets its own
    tid with a ``thread_name`` metadata event so ``chrome://tracing``
    shows one labelled track per subsystem.  Timestamps are microseconds
    of simulated time.
    """
    events = []
    tids = {}
    for span in spans:
        category = span.category
        tid = tids.get(category)
        if tid is None:
            tid = tids[category] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": category},
            })
        events.append({
            "name": span.name, "cat": category, "ph": "X",
            "ts": span.start * 1e6, "dur": (span.end - span.start) * 1e6,
            "pid": pid, "tid": tid,
            "args": {key: _json_safe(value)
                     for key, value in span.fields.items()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_snapshot(path, snapshot):
    """Write a snapshot as Prometheus text, or JSON-lines for ``.jsonl``
    paths.  Returns the format written."""
    path = str(path)
    if path.endswith(".jsonl"):
        text, fmt = to_jsonl(snapshot), "jsonl"
    else:
        text, fmt = to_prometheus(snapshot), "prometheus"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return fmt


def write_chrome_trace(path, spans, pid=0):
    """Serialise spans to a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(spans, pid=pid), handle)
