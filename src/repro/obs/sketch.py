"""DDSketch-style streaming quantile sketch with relative-error bounds.

Fixed-bucket histograms answer "how many samples fell below 10 ms" but
their percentile estimates are only as good as the bucket grid — a p99
inside the 250–500 ms bucket can be off by half the bucket width.  The
:class:`DDSketch` closes that gap: values land in *log-spaced* buckets
``(gamma**(k-1), gamma**k]`` with ``gamma = (1 + alpha) / (1 - alpha)``,
so any quantile estimate is within a relative error ``alpha`` of the
true sample quantile (see Masson, Rim & Lee, "DDSketch: a fast and
fully-mergeable quantile sketch with relative-error guarantees",
VLDB 2019).

Three properties matter for this codebase:

* **Deterministic** — bucket keys are integers computed from the value
  alone; the same observations always produce the same sketch.
* **Exactly mergeable** — merging sums integer bucket counts, so
  ``merge(shard_sketches) == whole_sketch`` holds *bit-identically* for
  any partition of the observations.  This is what keeps campaign
  snapshots identical across serial, parallel, and crash+resume runs.
* **Bounded error** — quantile estimates are within ``alpha`` (default
  1%) of the exact sample quantile for values above ``min_value``.

Values at or below ``min_value`` (including zero) are counted in a
dedicated zero bucket and reported as ``0.0`` — measurement durations
are non-negative and sub-picosecond delays are indistinguishable from
zero at the simulator's resolution.

Payload format (JSON-ready, deterministically ordered)::

    {"alpha": 0.01, "zero": 3, "bins": [[-120, 4], [17, 9], ...]}

``bins`` is sorted by bucket key; counts are integers, so the payload
round-trips through JSON without loss.
"""

from math import ceil, exp, log

#: Default relative-error bound: estimates within 1% of the exact
#: sample quantile.
DEFAULT_ALPHA = 0.01

#: Values at or below this are collapsed into the zero bucket (well
#: under any delay the simulator can resolve).
MIN_TRACKED_VALUE = 1e-12


class DDSketch:
    """Log-bucketed quantile sketch with relative-error ``alpha``."""

    __slots__ = ("alpha", "gamma", "bins", "zero_count",
                 "_inv_log_gamma", "_log_gamma", "_value_factor")

    def __init__(self, alpha=DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1): {alpha!r}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = log(self.gamma)
        self._inv_log_gamma = 1.0 / self._log_gamma
        # Midpoint estimate for bucket k is 2*gamma**k / (gamma + 1);
        # precompute the constant factor.
        self._value_factor = 2.0 / (self.gamma + 1.0)
        self.bins = {}
        self.zero_count = 0

    # -- recording --------------------------------------------------------

    def key(self, value):
        """Bucket key for a value > MIN_TRACKED_VALUE."""
        return ceil(log(value) * self._inv_log_gamma)

    def add(self, value, count=1):
        """Record ``count`` observations of ``value``."""
        if value <= MIN_TRACKED_VALUE:
            self.zero_count += count
            return
        key = ceil(log(value) * self._inv_log_gamma)
        bins = self.bins
        bins[key] = bins.get(key, 0) + count

    # -- queries ----------------------------------------------------------

    @property
    def count(self):
        return self.zero_count + sum(self.bins.values())

    def value_of_key(self, key):
        """Representative value of bucket ``key`` (its gamma-midpoint,
        within ``alpha`` of every value the bucket can hold)."""
        return exp(key * self._log_gamma) * self._value_factor

    def quantile(self, q):
        """Estimate of the ``q``-quantile (``q`` in [0, 1]).

        Returns the representative value of the bucket holding the
        rank-``ceil(q * count)`` smallest observation (rank 1 for
        ``q == 0``); ``None`` while the sketch is empty.  The estimate
        is within relative error ``alpha`` of the exact sample quantile
        under the same rank definition.
        """
        total = self.count
        if not total:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q!r}")
        rank = max(1, ceil(q * total))
        cumulative = self.zero_count
        if rank <= cumulative:
            return 0.0
        for key in sorted(self.bins):
            cumulative += self.bins[key]
            if cumulative >= rank:
                return self.value_of_key(key)
        # Unreachable when counts are consistent; defend against
        # concurrent mutation by returning the top bucket.
        return self.value_of_key(max(self.bins))

    # -- merging ----------------------------------------------------------

    def merge(self, other):
        """Fold ``other`` into this sketch (exact: counts sum)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {other.alpha!r} into "
                f"{self.alpha!r}")
        self.zero_count += other.zero_count
        bins = self.bins
        for key, count in other.bins.items():
            bins[key] = bins.get(key, 0) + count
        return self

    # -- serialisation ----------------------------------------------------

    def payload(self):
        """JSON-ready dict; ``bins`` sorted by key for determinism."""
        return {
            "alpha": self.alpha,
            "zero": self.zero_count,
            "bins": [[key, self.bins[key]] for key in sorted(self.bins)],
        }

    @classmethod
    def from_payload(cls, payload):
        sketch = cls(alpha=payload["alpha"])
        sketch.zero_count = payload["zero"]
        sketch.bins = {key: count for key, count in payload["bins"]}
        return sketch

    def __len__(self):
        return self.count

    def __repr__(self):
        return (f"<DDSketch alpha={self.alpha} n={self.count} "
                f"buckets={len(self.bins)}>")


def merge_payloads(a, b):
    """Merge two sketch payload dicts into a new payload (exact)."""
    if a["alpha"] != b["alpha"]:
        raise ValueError(
            f"cannot merge sketch payloads: alpha {a['alpha']!r} != "
            f"{b['alpha']!r}")
    bins = {key: count for key, count in a["bins"]}
    for key, count in b["bins"]:
        bins[key] = bins.get(key, 0) + count
    return {
        "alpha": a["alpha"],
        "zero": a["zero"] + b["zero"],
        "bins": [[key, bins[key]] for key in sorted(bins)],
    }


def payload_quantile(payload, q):
    """Quantile estimate straight from a payload dict (merge path)."""
    return DDSketch.from_payload(payload).quantile(q)
