"""Latency distributions for the phone's processing stages.

The paper's Table 3 reports min/mean/max for the driver path delays; a
triangular distribution parameterised the same way (min, mode, max) is
the simplest shape that reproduces all three statistics, so every
processing-cost knob in the phone model is a :class:`DelayDistribution`.
"""


class DelayDistribution:
    """A triangular delay distribution, optionally scaled.

    ``scaled(factor)`` returns a proportionally slower/faster copy — used
    to derive per-phone costs from per-chipset baselines (the driver runs
    on the host CPU, so a 1 GHz single-core phone pays more than a
    2.26 GHz quad-core).
    """

    __slots__ = ("low", "mode", "high")

    def __init__(self, low, mode, high):
        if not low <= mode <= high:
            raise ValueError(
                f"require low <= mode <= high, got {(low, mode, high)!r}"
            )
        if low < 0:
            raise ValueError("delays cannot be negative")
        self.low = low
        self.mode = mode
        self.high = high

    @classmethod
    def constant(cls, value):
        return cls(value, value, value)

    @classmethod
    def from_ms(cls, low, mode, high):
        """Convenience constructor with millisecond arguments."""
        return cls(low * 1e-3, mode * 1e-3, high * 1e-3)

    @property
    def mean(self):
        return (self.low + self.mode + self.high) / 3.0

    def draw(self, rng):
        """Sample one delay."""
        if self.low == self.high:
            return self.low
        return rng.triangular(self.low, self.high, self.mode)

    def scaled(self, factor):
        """A copy with all three parameters multiplied by ``factor``."""
        return DelayDistribution(
            self.low * factor, self.mode * factor, self.high * factor
        )

    def __repr__(self):
        return (
            f"DelayDistribution({self.low * 1e3:.3f}ms, "
            f"{self.mode * 1e3:.3f}ms, {self.high * 1e3:.3f}ms)"
        )
