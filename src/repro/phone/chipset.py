"""WNIC chipset profiles.

§3.2.1 of the paper traces the Broadcom ``bcmdhd`` driver: a watchdog
fires every ``dhd_watchdog_ms`` (10 ms); each tick with no bus activity
increments ``idlecount``; at ``idletime`` (5) the SDIO bus demotes.  The
resulting idle window ``Tis`` is 50 ms on the Nexus 5.  Waking the bus
costs a *promotion delay* that the paper measured at up to ~14 ms
(Table 3).  Qualcomm's ``wcnss`` driver "shares a similar mechanism"
over the SMD interface with a shorter wake cost; the paper folds both
under the name "SDIO bus sleep", and so do we.

Cost distributions below are fitted to Table 3's min/mean/max (Broadcom)
and to the Nexus 4 inflation deltas in Table 2 (Qualcomm).
"""

from repro.phone.latency import DelayDistribution


class ChipsetProfile:
    """Timing personality of one WNIC chipset + driver."""

    def __init__(self, name, vendor, bus, driver_name,
                 watchdog_period=10e-3, idletime=5,
                 wake_delay=None, tx_cost=None, rx_cost=None,
                 rxframe_cost=None):
        self.name = name
        self.vendor = vendor
        self.bus = bus
        self.driver_name = driver_name
        self.watchdog_period = watchdog_period
        self.idletime = idletime
        #: Promotion delay paid when a send/receive finds the bus asleep.
        self.wake_delay = wake_delay or DelayDistribution.from_ms(8.5, 10.0, 13.5)
        #: dpc-thread send path (dhd_start_xmit -> dhdsdio_txpkt), bus awake.
        self.tx_cost = tx_cost or DelayDistribution.from_ms(0.09, 0.15, 0.6)
        #: dpc-thread receive path (dhdsdio_isr -> dhd_rxf_enqueue), bus awake.
        self.rx_cost = rx_cost or DelayDistribution.from_ms(0.31, 1.6, 2.85)
        #: rxframe thread (dhd_rxf_dequeue -> netif_rx_ni).
        self.rxframe_cost = rxframe_cost or DelayDistribution.from_ms(0.02, 0.05, 0.15)

    @property
    def idle_window(self):
        """``Tis``: idle time before the bus demotes (watchdog x idletime)."""
        return self.watchdog_period * self.idletime

    def scaled(self, cpu_factor):
        """Derive a copy with host-CPU-dependent path costs scaled.

        The *wake* delay is dominated by the hardware handshake and is
        left unscaled; the dpc/rxframe path costs run on the host CPU.
        """
        return ChipsetProfile(
            self.name, self.vendor, self.bus, self.driver_name,
            watchdog_period=self.watchdog_period, idletime=self.idletime,
            wake_delay=self.wake_delay,
            tx_cost=self.tx_cost.scaled(cpu_factor),
            rx_cost=self.rx_cost.scaled(cpu_factor),
            rxframe_cost=self.rxframe_cost.scaled(cpu_factor),
        )

    def __repr__(self):
        return (
            f"<ChipsetProfile {self.name} ({self.vendor}, {self.bus}) "
            f"Tis={self.idle_window * 1e3:.0f}ms>"
        )


def broadcom(name):
    """A Broadcom FullMAC chipset on SDIO with the bcmdhd driver."""
    return ChipsetProfile(
        name, vendor="Broadcom", bus="SDIO", driver_name="bcmdhd",
        watchdog_period=10e-3, idletime=5,
        wake_delay=DelayDistribution.from_ms(8.5, 10.0, 13.5),
        tx_cost=DelayDistribution.from_ms(0.09, 0.15, 0.6),
        # Skewed toward its floor: Table 3's dvrecv mean (~1.6 ms under
        # load) reflects a long tail, while Figure 7's Δdk−n medians
        # (< 2 ms) reflect the typical case.
        rx_cost=DelayDistribution.from_ms(0.30, 0.60, 3.0),
    )


def qualcomm(name):
    """A Qualcomm chipset on the SMD interface with the wcnss driver.

    Shorter idle window and a much cheaper wake than Broadcom's SDIO —
    this is why Table 2 shows the Nexus 4's internal inflation around
    5-6 ms where the Nexus 5 pays 11-20 ms.
    """
    return ChipsetProfile(
        name, vendor="Qualcomm", bus="SMD", driver_name="wcnss",
        watchdog_period=5e-3, idletime=5,
        wake_delay=DelayDistribution.from_ms(1.2, 1.9, 3.2),
        tx_cost=DelayDistribution.from_ms(0.08, 0.15, 0.5),
        rx_cost=DelayDistribution.from_ms(0.25, 0.8, 1.8),
    )


#: The chipsets of Table 1.
BCM4339 = broadcom("BCM4339")
BCM4330 = broadcom("BCM4330")
BCM4329 = broadcom("BCM4329")
WCN3660 = qualcomm("WCN3660")
WCN3680 = qualcomm("WCN3680")
