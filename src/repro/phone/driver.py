"""The WNIC driver: dpc/rxframe threads over a sleepy SDIO bus.

This mirrors the call structure the paper traced in Figures 4 and 5:

* TX: ``dhd_start_xmit`` registers a task with the **dpc thread**, which
  must first bring the SDIO bus up (``dhdsdio_bussleep`` /
  ``dhdsdio_clkctl``) before ``dhdsdio_txpkt`` writes the frame to the
  bus.  ``dvsend`` is the time from ``dhd_start_xmit`` to
  ``dhdsdio_txpkt``.
* RX: ``dhdsdio_isr`` registers a dpc task; the dpc thread wakes the bus
  and runs ``dhdsdio_readframes``; frames are queued for the **rxframe
  thread** which calls ``netif_rx_ni``.  ``dvrecv`` is the time from
  ``dhdsdio_isr`` to ``dhd_rxf_enqueue``.
* A watchdog fires every ``dhd_watchdog_ms``; ``idlecount`` ticks up
  while the bus sees no activity, and at ``idletime`` the bus demotes
  (sleeps).  Waking it back up costs the promotion delay ``Tprom``.

The driver records every ``dvsend``/``dvrecv`` sample — the simulated
equivalent of the paper's timestamping kernel patch — so Table 3 is a
matter of reading ``driver.samples``.
"""

from collections import deque

from repro.obs.names import (
    DRIVER_DVRECV_SECONDS,
    DRIVER_DVSEND_SECONDS,
    SDIO_SLEEPS_TOTAL,
    SDIO_WAKES_TOTAL,
    SPAN_DRIVER_QUEUEING,
    SPAN_SDIO_ASLEEP,
    SPAN_SDIO_PROMOTION,
)

BUS_AWAKE = "AWAKE"
BUS_ASLEEP = "ASLEEP"


class DriverSample:
    """One instrumented driver-path delay measurement."""

    __slots__ = ("kind", "time", "duration", "wake_paid")

    def __init__(self, kind, time, duration, wake_paid):
        self.kind = kind  # 'send' or 'recv'
        self.time = time
        self.duration = duration
        self.wake_paid = wake_paid

    def __repr__(self):
        wake = " +wake" if self.wake_paid else ""
        return f"<DriverSample {self.kind} {self.duration * 1e3:.3f}ms{wake}>"


class SdioBus:
    """The host-to-chipset bus with the idlecount/idletime sleep policy."""

    def __init__(self, sim, chipset, rng, sleep_enabled=True, name="sdio"):
        self.sim = sim
        self.chipset = chipset
        self.rng = rng
        self.name = name
        self.sleep_enabled = sleep_enabled
        self.state = BUS_AWAKE
        #: Optional ``callback(old_state, new_state)`` observer (used by
        #: the energy meter).
        self.on_transition = None
        self.idlecount = 0
        self._activity_since_tick = True
        self.sleep_count = 0
        self.wake_count = 0
        self._slept_at = None
        # The dhd watchdog is a scheduler-native periodic train — the
        # densest timer in the model (10 ms, per bus), so it rides the
        # scheduler's batched fast path.
        self._watchdog = sim.schedule_periodic(
            chipset.watchdog_period, self._watchdog_tick,
            label=f"watchdog:{name}",
        )

    @property
    def asleep(self):
        return self.state == BUS_ASLEEP

    def mark_activity(self):
        """Bus traffic observed: reset the idle bookkeeping."""
        self._activity_since_tick = True
        self.idlecount = 0

    def set_sleep_enabled(self, enabled):
        """Toggle the sleep feature (the paper's driver patch for Table 3)."""
        self.sleep_enabled = enabled
        if not enabled and self.asleep:
            # An always-on bus comes up for free at the next access; model
            # the toggle as an immediate wake.
            self._transition(BUS_AWAKE)
            if self.sim.spans.enabled and self._slept_at is not None:
                self.sim.spans.record(SPAN_SDIO_ASLEEP, self._slept_at,
                                      self.sim.now, bus=self.name)
            self._slept_at = None

    def _transition(self, new_state):
        old = self.state
        self.state = new_state
        if self.on_transition is not None and old != new_state:
            self.on_transition(old, new_state)

    def wake_delay(self):
        """Promotion delay for one access; 0 when the bus is already up.

        Transitions the bus to AWAKE and counts activity.
        """
        self.mark_activity()
        if self.state == BUS_AWAKE:
            return 0.0
        self._transition(BUS_AWAKE)
        self.wake_count += 1
        delay = self.chipset.wake_delay.draw(self.rng)
        sim = self.sim
        if sim.metrics.enabled:
            sim.metrics.inc(SDIO_WAKES_TOTAL, labels={"bus": self.name})
        if sim.spans.enabled:
            # The asleep period just ending, then the promotion it costs.
            if self._slept_at is not None:
                sim.spans.record(SPAN_SDIO_ASLEEP, self._slept_at, sim.now,
                                 bus=self.name)
                self._slept_at = None
            sim.spans.record(SPAN_SDIO_PROMOTION, sim.now, sim.now + delay,
                             bus=self.name)
        return delay

    def _watchdog_tick(self):
        if self._activity_since_tick:
            self._activity_since_tick = False
            self.idlecount = 0
            return
        self.idlecount += 1
        if (
            self.idlecount >= self.chipset.idletime
            and self.sleep_enabled
            and self.state == BUS_AWAKE
        ):
            self._transition(BUS_ASLEEP)
            self.sleep_count += 1
            self._slept_at = self.sim.now
            if self.sim.metrics.enabled:
                self.sim.metrics.inc(SDIO_SLEEPS_TOTAL,
                                     labels={"bus": self.name})
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, "sdio", "bus sleep",
                                      bus=self.name)

    def stop(self):
        """Stop the watchdog (simulation teardown)."""
        self._watchdog.cancel()

    def __repr__(self):
        return f"<SdioBus {self.name} {self.state} idlecount={self.idlecount}>"


class WnicDriver:
    """dpc + rxframe thread model above an :class:`SdioBus`.

    ``tx_complete(packet)`` receives packets leaving the driver toward
    the radio; ``rx_complete(packet)`` receives packets leaving the
    driver toward the kernel.
    """

    def __init__(self, sim, chipset, rng, tx_complete, rx_complete,
                 sleep_enabled=True, name="wnic"):
        self.sim = sim
        self.chipset = chipset
        self.rng = rng
        self.name = name
        self.tx_complete = tx_complete
        self.rx_complete = rx_complete
        self.bus = SdioBus(sim, chipset, rng, sleep_enabled=sleep_enabled,
                           name=f"{name}.bus")
        self._dpc_queue = deque()
        self._dpc_busy = False
        self.samples = []
        self.packets_tx = 0
        self.packets_rx = 0

    # -- entry points (kernel / radio facing) ---------------------------

    def start_xmit(self, packet):
        """``dhd_start_xmit``: TX entry from the kernel."""
        packet.stamp("driver", self.sim.now)
        self._dpc_submit(("tx", packet, self.sim.now))

    def isr(self, packet):
        """``dhdsdio_isr``: RX interrupt from the chipset."""
        packet.stamp("driver", self.sim.now)
        self._dpc_submit(("rx", packet, self.sim.now))

    def set_bus_sleep(self, enabled):
        """Enable/disable the SDIO sleep feature."""
        self.bus.set_sleep_enabled(enabled)

    # -- dpc thread -------------------------------------------------------

    def _dpc_submit(self, task):
        self._dpc_queue.append(task)
        if not self._dpc_busy:
            self._dpc_run()

    def _dpc_run(self):
        if not self._dpc_queue:
            self._dpc_busy = False
            return
        self._dpc_busy = True
        kind, packet, entry_time = self._dpc_queue.popleft()
        sim = self.sim
        if sim.spans.enabled and sim.now > entry_time:
            # Time the task sat behind the busy dpc thread — the
            # paper's driver-queueing delay component.
            sim.spans.record(SPAN_DRIVER_QUEUEING, entry_time, sim.now,
                             queue=f"dpc:{self.name}", direction=kind,
                             probe_id=packet.probe_id)
        wake = self.bus.wake_delay()
        cost = (
            self.chipset.tx_cost if kind == "tx" else self.chipset.rx_cost
        ).draw(self.rng)
        self.sim.schedule(
            wake + cost, self._dpc_done, kind, packet, entry_time, wake > 0,
            label=f"dpc:{self.name}",
        )

    def _dpc_done(self, kind, packet, entry_time, wake_paid):
        now = self.sim.now
        self.bus.mark_activity()
        packet.stamp("driver_done", now)
        duration = now - entry_time
        self.samples.append(DriverSample(
            "send" if kind == "tx" else "recv", now, duration, wake_paid,
        ))
        if self.sim.metrics.enabled:
            self.sim.metrics.observe(
                DRIVER_DVSEND_SECONDS if kind == "tx"
                else DRIVER_DVRECV_SECONDS, duration)
        if kind == "tx":
            self.packets_tx += 1
            self.tx_complete(packet)
        else:
            self.packets_rx += 1
            # rxframe thread: dequeue + netif_rx_ni.
            self.sim.schedule(
                self.chipset.rxframe_cost.draw(self.rng),
                self._rxframe_deliver, packet,
                label=f"rxframe:{self.name}",
            )
        self._dpc_busy = False
        if self._dpc_queue:
            self._dpc_run()

    def _rxframe_deliver(self, packet):
        self.rx_complete(packet)

    # -- instrumentation ----------------------------------------------------

    def samples_of(self, kind):
        """All recorded dvsend ('send') or dvrecv ('recv') durations."""
        return [s.duration for s in self.samples if s.kind == kind]

    def clear_samples(self):
        self.samples = []

    def __repr__(self):
        return f"<WnicDriver {self.name} chipset={self.chipset.name}>"
