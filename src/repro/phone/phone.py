"""The assembled smartphone.

Wires the layer pipeline together (stack <-> kernel <-> driver <-> STA)
and exposes the two primitives measurement apps need:

``user_send(fn)``
    Run ``fn`` (which builds and sends packets through ``phone.stack``)
    after the user-space runtime cost; returns the user-level send
    timestamp ``tou`` the app would have recorded.

``user_wrap(cb)``
    Wrap a receive callback so it fires after the kernel-to-user runtime
    cost, stamping any :class:`~repro.net.packet.Packet` arguments with
    their ``user`` (``tiu``) time.

Whether those costs reflect a pre-compiled native binary or the Dalvik
runtime is controlled by :attr:`Phone.runtime` — the knob behind the
paper's Δdu−k findings.
"""

from repro.net.packet import Packet
from repro.net.stack import IpStack
from repro.phone.driver import WnicDriver
from repro.phone.kernel import KernelLayer
from repro.wifi.sta import PsmConfig, Station


class Phone:
    """A simulated Android phone attached to a WiFi channel."""

    def __init__(self, sim, profile, channel, ap, ip_addr, mac,
                 rng=None, name=None, bus_sleep=True, psm_enabled=True,
                 runtime="native", sta_factory=None):
        self.sim = sim
        self.profile = profile
        self.ip_addr = ip_addr
        self.name = name or profile.key
        self.rng = rng if rng is not None else sim.rng.stream(f"phone:{self.name}")
        self.runtime = runtime

        psm = PsmConfig(
            enabled=psm_enabled,
            timeout=profile.psm_timeout,
            timeout_jitter=profile.psm_timeout_jitter,
            listen_interval=profile.listen_interval_actual,
            listen_interval_assoc=profile.listen_interval_assoc,
        )
        # ``sta_factory`` swaps the MAC power-save machine (TWT,
        # predictive sleep, ...) while keeping the rest of the pipeline.
        if sta_factory is None:
            sta_factory = Station
        self.sta = sta_factory(sim, channel, mac, psm=psm, rng=self.rng,
                               name=f"{self.name}.sta")

        kernel_tx, kernel_rx = profile.kernel_costs()
        self.kernel = KernelLayer(sim, self.rng, kernel_tx, kernel_rx,
                                  name=f"{self.name}.kernel")
        self.driver = WnicDriver(
            sim, profile.scaled_chipset(), self.rng,
            tx_complete=self.sta.send_packet,
            rx_complete=self.kernel.receive,
            sleep_enabled=bus_sleep,
            name=f"{self.name}.wnic",
        )
        self.kernel.driver = self.driver
        self.kernel.deliver_up = self._deliver_up
        self.sta.on_packet = self.driver.isr

        self.stack = IpStack(
            sim, ip_addr, transmit=self.kernel.transmit, rng=self.rng,
            name=self.name, proc_delay=200e-6, proc_jitter=100e-6,
        )

        self.sta.associate(ap)
        ap.register_station_ip(ip_addr, mac)

    # -- user space -------------------------------------------------------

    def app_cost(self):
        """One user-space runtime delay draw (send or receive side)."""
        return self.profile.runtime_cost(self.runtime).draw(self.rng)

    def user_send(self, fn):
        """App-level send: returns ``tou`` and runs ``fn`` after the
        runtime cost."""
        t_user = self.sim.now
        self.sim.schedule(self.app_cost(), fn, label=f"app-send:{self.name}")
        return t_user

    def user_wrap(self, callback):
        """Wrap a receive callback with the kernel-to-user runtime delay."""

        def wrapped(*args):
            def fire():
                for arg in args:
                    if isinstance(arg, Packet):
                        arg.stamp("user", self.sim.now)
                callback(*args)

            self.sim.schedule(self.app_cost(), fire,
                              label=f"app-recv:{self.name}")

        return wrapped

    # -- internal wiring ------------------------------------------------------

    def _deliver_up(self, packet):
        if packet.dst == self.ip_addr:
            self.stack.deliver(packet)

    # -- experiment knobs -------------------------------------------------------

    def set_bus_sleep(self, enabled):
        """Toggle SDIO bus sleep (the paper's rebuilt-driver experiment)."""
        self.driver.set_bus_sleep(enabled)

    def set_psm_enabled(self, enabled):
        """Toggle adaptive PSM (forces CAM when disabled)."""
        self.sta.psm.enabled = enabled
        if not enabled:
            self.sta._wake("psm-disabled")

    def __repr__(self):
        return f"<Phone {self.name} ({self.profile.chipset.name}) {self.ip_addr}>"
