"""tcpdump on the phone.

The paper records its kernel-level timestamps (tok/tik) "with bpf and
libpcap" — i.e. tcpdump running in an adb shell.  :class:`PhoneTcpdump`
reproduces that: it subscribes to the phone's kernel tap and writes a
real linktype-101 (raw IPv4) pcap file, from which
:func:`kernel_rtts_from_pcap` re-derives the kernel-level RTT ``dk``
offline, exactly as the authors post-processed their captures.
"""

from repro.net import wire
from repro.net.packet import TCP_ACK, TcpSegment
from repro.sniffer.pcap import LINKTYPE_RAW, PcapReader, PcapWriter


class PhoneTcpdump:
    """A kernel-tap capture that writes raw-IP pcap."""

    def __init__(self, phone, path, snaplen=65535):
        self.phone = phone
        self.path = path
        self.packets_captured = 0
        self._writer = PcapWriter(path, linktype=LINKTYPE_RAW,
                                  snaplen=snaplen)
        phone.kernel.add_tap(self._tap)

    def _tap(self, packet, direction):
        if self._writer is None:
            return
        self.packets_captured += 1
        self._writer.write(self.phone.sim.now, wire.encode_ipv4(packet))

    def close(self):
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def _is_pure_tcp_ack(packet):
    payload = packet.payload
    return (isinstance(payload, TcpSegment)
            and payload.payload_size == 0
            and payload.flags == TCP_ACK)


def kernel_rtts_from_pcap(path, phone_ip):
    """Recover per-probe kernel RTTs (dk) from a phone tcpdump capture.

    Pairs each probe's first outgoing packet with its first substantive
    response (matching the live collector's rules).  Returns
    ``{probe_id: dk_seconds}``.
    """
    out_times = {}
    in_times = {}
    in_is_ack = {}
    with PcapReader(path) as reader:
        if reader.linktype != LINKTYPE_RAW:
            raise ValueError(
                f"expected raw-IP capture (linktype 101), got {reader.linktype}"
            )
        for timestamp, data in reader:
            packet = wire.decode_ipv4(data)
            probe_id = packet.probe_id
            if probe_id is None:
                continue
            if packet.src == phone_ip:
                out_times.setdefault(probe_id, timestamp)
            elif packet.dst == phone_ip:
                pure_ack = _is_pure_tcp_ack(packet)
                if probe_id not in in_times:
                    in_times[probe_id] = timestamp
                    in_is_ack[probe_id] = pure_ack
                elif in_is_ack.get(probe_id) and not pure_ack:
                    in_times[probe_id] = timestamp
                    in_is_ack[probe_id] = False
    return {
        probe_id: in_times[probe_id] - sent
        for probe_id, sent in out_times.items()
        if probe_id in in_times
    }
