"""The phone's kernel layer: socket path costs and the tcpdump tap.

The paper records kernel timestamps "with bpf and libpcap" (tcpdump on a
rooted shell).  :class:`KernelLayer` reproduces that vantage point: every
packet is stamped and offered to registered taps

* on TX at ``dev_queue_xmit`` time — after the socket-layer cost, right
  before the driver, and
* on RX at ``netif_rx_ni`` time — as the driver hands the packet up,
  before socket demux.
"""


class KernelLayer:
    """Kernel networking between the IP stack and the WNIC driver."""

    def __init__(self, sim, rng, tx_cost, rx_cost, name="kernel"):
        self.sim = sim
        self.rng = rng
        self.tx_cost = tx_cost
        self.rx_cost = rx_cost
        self.name = name
        self.driver = None  # wired by the Phone
        self.deliver_up = None  # wired by the Phone (toward the stack)
        self._taps = []
        self.packets_tx = 0
        self.packets_rx = 0

    def add_tap(self, callback):
        """Register ``callback(packet, direction)`` (direction 'tx'/'rx');
        the equivalent of running tcpdump on the phone."""
        self._taps.append(callback)

    # -- TX: stack -> driver -------------------------------------------

    def transmit(self, packet):
        self.packets_tx += 1
        self.sim.schedule(
            self.tx_cost.draw(self.rng), self._tx_tap, packet,
            label=f"kernel-tx:{self.name}",
        )

    def _tx_tap(self, packet):
        packet.stamp("kernel", self.sim.now)
        for tap in self._taps:
            tap(packet, "tx")
        self.driver.start_xmit(packet)

    # -- RX: driver -> stack ----------------------------------------------

    def receive(self, packet):
        self.packets_rx += 1
        packet.stamp("kernel", self.sim.now)
        for tap in self._taps:
            tap(packet, "rx")
        self.sim.schedule(
            self.rx_cost.draw(self.rng), self.deliver_up, packet,
            label=f"kernel-rx:{self.name}",
        )
