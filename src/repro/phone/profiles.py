"""The five smartphones of Table 1, as simulation profiles.

Each profile bundles a chipset (bus-sleep personality), the measured
adaptive-PSM timeout ``Tip`` and listen intervals (Table 4), a CPU speed
factor that scales the host-side processing costs, and the runtime
(Dalvik vs native) costs the paper's earlier work [23] identified.

+----------------+---------+-------------------+---------+-----------+
| Model          | Android | CPU (cores)       | WNIC    | Tip       |
+================+=========+===================+=========+===========+
| Google Nexus 5 | 4.4.2   | 2.26 GHz (4)      | BCM4339 | ~205 ms   |
| Google Nexus 4 | 4.4.4   | 1.5 GHz (4)       | WCN3660 | ~40 ms    |
| HTC One        | 4.2.2   | 1.7 GHz (4)       | WCN3680 | ~400 ms   |
| Sony Xperia J  | 4.0.4   | 1 GHz (1)         | BCM4330 | ~210 ms   |
| Samsung Grand  | 4.1.2   | 1.2 GHz (2)       | BCM4329 | ~45 ms    |
+----------------+---------+-------------------+---------+-----------+
"""

from repro.phone.chipset import BCM4329, BCM4330, BCM4339, WCN3660, WCN3680
from repro.phone.latency import DelayDistribution

#: Baseline user-space costs (scaled per phone by ``cpu_factor``):
#: a pre-compiled native C binary vs the Dalvik runtime ([23] and §4.2.2 —
#: native keeps Δdu−k under ~0.5 ms on fast phones, under ~1 ms on slow).
NATIVE_RUNTIME_COST = DelayDistribution.from_ms(0.02, 0.05, 0.20)
DALVIK_RUNTIME_COST = DelayDistribution.from_ms(0.15, 0.40, 1.60)

#: Baseline kernel socket-path costs.
KERNEL_TX_COST = DelayDistribution.from_ms(0.010, 0.020, 0.060)
KERNEL_RX_COST = DelayDistribution.from_ms(0.010, 0.030, 0.090)


class PhoneProfile:
    """Everything phone-specific the simulation needs."""

    def __init__(self, key, name, android_version, cpu_desc, cores, ram_mb,
                 chipset, cpu_factor, psm_timeout, psm_timeout_jitter,
                 listen_interval_assoc, listen_interval_actual=0,
                 ping_integer_above_100ms=False, driver_cpu_factor=None):
        self.key = key
        self.name = name
        self.android_version = android_version
        self.cpu_desc = cpu_desc
        self.cores = cores
        self.ram_mb = ram_mb
        self.chipset = chipset
        self.cpu_factor = cpu_factor
        #: Driver paths run in kernel threads and scale more gently with
        #: CPU speed than the user-space runtime does (Figure 7 shows the
        #: slow phones' Δdk−n only modestly above the Nexus 5's).
        self.driver_cpu_factor = (
            driver_cpu_factor if driver_cpu_factor is not None
            else 1.0 + (cpu_factor - 1.0) * 0.2
        )
        #: Adaptive-PSM timeout Tip and its observed run-to-run jitter.
        self.psm_timeout = psm_timeout
        self.psm_timeout_jitter = psm_timeout_jitter
        self.listen_interval_assoc = listen_interval_assoc
        self.listen_interval_actual = listen_interval_actual
        #: Nexus 4's ping truncates RTTs above 100 ms to integer ms (§3.1).
        self.ping_integer_above_100ms = ping_integer_above_100ms

    @property
    def sdio_idle_window(self):
        """``Tis`` for this phone's chipset."""
        return self.chipset.idle_window

    def scaled_chipset(self):
        """The chipset with CPU-dependent costs adjusted for this phone."""
        return self.chipset.scaled(self.driver_cpu_factor)

    def runtime_cost(self, runtime):
        """User-space per-operation cost distribution for a runtime."""
        if runtime == "native":
            return NATIVE_RUNTIME_COST.scaled(self.cpu_factor)
        if runtime == "dalvik":
            return DALVIK_RUNTIME_COST.scaled(self.cpu_factor)
        raise ValueError(f"unknown runtime {runtime!r}")

    def kernel_costs(self):
        """(tx, rx) kernel path cost distributions."""
        return (
            KERNEL_TX_COST.scaled(self.cpu_factor),
            KERNEL_RX_COST.scaled(self.cpu_factor),
        )

    def __repr__(self):
        return f"<PhoneProfile {self.name} ({self.chipset.name})>"


NEXUS_5 = PhoneProfile(
    key="nexus5", name="Google Nexus 5", android_version="4.4.2",
    cpu_desc="2.26GHz", cores=4, ram_mb=2048, chipset=BCM4339,
    cpu_factor=1.0, psm_timeout=205e-3, psm_timeout_jitter=20e-3,
    listen_interval_assoc=10,
)

NEXUS_4 = PhoneProfile(
    key="nexus4", name="Google Nexus 4", android_version="4.4.4",
    cpu_desc="1.5GHz", cores=4, ram_mb=2048, chipset=WCN3660,
    cpu_factor=1.15, psm_timeout=40e-3, psm_timeout_jitter=15e-3,
    listen_interval_assoc=1, ping_integer_above_100ms=True,
)

HTC_ONE = PhoneProfile(
    key="htc_one", name="HTC One", android_version="4.2.2",
    cpu_desc="1.7GHz", cores=4, ram_mb=2048, chipset=WCN3680,
    cpu_factor=1.1, psm_timeout=400e-3, psm_timeout_jitter=30e-3,
    listen_interval_assoc=1,
)

XPERIA_J = PhoneProfile(
    key="xperia_j", name="Sony Xperia J", android_version="4.0.4",
    cpu_desc="1GHz", cores=1, ram_mb=512, chipset=BCM4330,
    cpu_factor=2.6, psm_timeout=210e-3, psm_timeout_jitter=20e-3,
    listen_interval_assoc=10,
)

GALAXY_GRAND = PhoneProfile(
    key="galaxy_grand", name="Samsung Grand", android_version="4.1.2",
    cpu_desc="1.2GHz", cores=2, ram_mb=1024, chipset=BCM4329,
    cpu_factor=1.9, psm_timeout=45e-3, psm_timeout_jitter=10e-3,
    listen_interval_assoc=10,
)

#: Registry keyed by profile key.
PHONES = {
    profile.key: profile
    for profile in (NEXUS_5, NEXUS_4, HTC_ONE, XPERIA_J, GALAXY_GRAND)
}


def phone_profile(key):
    """Look up a profile by key; raises with the known keys on a miss."""
    try:
        return PHONES[key]
    except KeyError:
        raise KeyError(
            f"unknown phone {key!r}; known: {sorted(PHONES)}"
        ) from None


def coerce_profile(profile):
    """Accept a profile key or a :class:`PhoneProfile`; return the profile.

    The single coercion point every testbed routes through, so the
    key-vs-object duality behaves identically everywhere.
    """
    if isinstance(profile, PhoneProfile):
        return profile
    return phone_profile(profile)
