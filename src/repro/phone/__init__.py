"""The simulated Android smartphone.

The phone is a layered pipeline matching the paper's Figure 1::

    measurement app (user space; native C or Dalvik runtime)
        |  tou / tiu
    kernel (socket layer; bpf/tcpdump tap)
        |  tok / tik
    WNIC driver (dpc + rxframe threads; SDIO bus sleep state machine)
        |  tov / tiv  (dvsend / dvrecv instrumentation)
    802.11 station MAC (adaptive PSM)  ->  the air (ton / tin)

Each layer both *delays* packets (with chipset- and phone-specific
distributions) and *stamps* them, so the paper's overhead decomposition
(Δdu−k, Δdk−v, Δdv−n) falls out of plain arithmetic.
"""

from repro.phone.chipset import ChipsetProfile
from repro.phone.driver import SdioBus, WnicDriver
from repro.phone.energy import EnergyMeter, PowerProfile
from repro.phone.latency import DelayDistribution
from repro.phone.phone import Phone
from repro.phone.tcpdump import PhoneTcpdump, kernel_rtts_from_pcap
from repro.phone.profiles import (
    GALAXY_GRAND,
    HTC_ONE,
    NEXUS_4,
    NEXUS_5,
    PHONES,
    XPERIA_J,
    PhoneProfile,
    phone_profile,
)

__all__ = [
    "ChipsetProfile",
    "DelayDistribution",
    "EnergyMeter",
    "PhoneTcpdump",
    "PowerProfile",
    "kernel_rtts_from_pcap",
    "GALAXY_GRAND",
    "HTC_ONE",
    "NEXUS_4",
    "NEXUS_5",
    "PHONES",
    "Phone",
    "PhoneProfile",
    "SdioBus",
    "WnicDriver",
    "XPERIA_J",
    "phone_profile",
]
