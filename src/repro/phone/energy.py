"""Energy accounting for the phone's WNIC and host bus.

§4.1 claims "AcuteMon consumes very low battery, because it sends out
very few additional packets in the measurement phase, and will not
affect the energy-saving mechanisms when there are no measurement
tasks."  To check that quantitatively, :class:`EnergyMeter` integrates
the phone's radio and bus power over simulated time:

* the radio draws a *baseline* current depending on its power state
  (CAM listen vs PS doze — the whole point of PSM),
* transmissions and receptions add tx/rx deltas for their airtime,
* the awake SDIO bus adds a host-interface delta (the whole point of
  bus sleep).

Default currents are representative smartphone WNIC figures at a 3.7 V
battery (hundreds of mA transmitting, low single digits dozing); they
are knobs, not claims — comparisons between strategies are what matter.
"""

from repro.phone.driver import BUS_AWAKE
from repro.wifi.sta import PowerState


class PowerProfile:
    """Current draw (amperes) per activity at ``voltage`` volts."""

    def __init__(self, radio_tx=0.250, radio_rx=0.200, radio_cam=0.120,
                 radio_doze=0.004, bus_awake=0.020, voltage=3.7):
        self.radio_tx = radio_tx
        self.radio_rx = radio_rx
        self.radio_cam = radio_cam
        self.radio_doze = radio_doze
        self.bus_awake = bus_awake
        self.voltage = voltage


class EnergyMeter:
    """Integrates one phone's radio + bus energy over simulated time.

    Attach once; read :meth:`report` (or the time/energy properties) at
    any point.  Chains politely with existing ``on_state_change`` /
    ``on_transition`` observers.
    """

    def __init__(self, phone, profile=None):
        self.phone = phone
        self.sim = phone.sim
        self.profile = profile if profile is not None else PowerProfile()
        self.started_at = self.sim.now
        # Accumulated seconds per activity.
        self.cam_time = 0.0
        self.doze_time = 0.0
        self.tx_airtime = 0.0
        self.rx_airtime = 0.0
        self.bus_awake_time = 0.0
        self._radio_state = phone.sta.power_state
        self._radio_since = self.sim.now
        self._bus_state = phone.driver.bus.state
        self._bus_since = self.sim.now

        self._chain_sta = phone.sta.on_state_change
        phone.sta.on_state_change = self._on_radio_state
        self._chain_bus = phone.driver.bus.on_transition
        phone.driver.bus.on_transition = self._on_bus_state
        phone.sta.channel.add_monitor(self._on_transmission)

    # -- observers ----------------------------------------------------------

    def _on_radio_state(self, old, new, reason):
        self._account_radio()
        self._radio_state = new
        if self._chain_sta is not None:
            self._chain_sta(old, new, reason)

    def _on_bus_state(self, old, new):
        self._account_bus()
        self._bus_state = new
        if self._chain_bus is not None:
            self._chain_bus(old, new)

    def _on_transmission(self, frame, tx_start, tx_end, status):
        mac = self.phone.sta.mac
        airtime = tx_end - tx_start
        if frame.src_mac == mac:
            self.tx_airtime += airtime
        elif (frame.dst_mac == mac or frame.is_broadcast) and \
                self.phone.sta.receiver_active:
            self.rx_airtime += airtime

    # -- integration -----------------------------------------------------------

    def _account_radio(self):
        elapsed = self.sim.now - self._radio_since
        if self._radio_state == PowerState.DOZE:
            self.doze_time += elapsed
        else:
            self.cam_time += elapsed
        self._radio_since = self.sim.now

    def _account_bus(self):
        elapsed = self.sim.now - self._bus_since
        if self._bus_state == BUS_AWAKE:
            self.bus_awake_time += elapsed
        self._bus_since = self.sim.now

    def snapshot(self):
        """Bring the accumulators up to the current simulated time."""
        self._account_radio()
        self._account_bus()

    # -- results --------------------------------------------------------------

    @property
    def elapsed(self):
        return self.sim.now - self.started_at

    def energy_joules(self):
        """Total radio + bus energy since attachment (joules)."""
        self.snapshot()
        p = self.profile
        current_seconds = (
            self.cam_time * p.radio_cam
            + self.doze_time * p.radio_doze
            + self.tx_airtime * (p.radio_tx - p.radio_cam)
            + self.rx_airtime * (p.radio_rx - p.radio_cam)
            + self.bus_awake_time * p.bus_awake
        )
        return current_seconds * p.voltage

    def average_power_watts(self):
        elapsed = self.elapsed
        return self.energy_joules() / elapsed if elapsed > 0 else 0.0

    def milliamp_hours(self):
        """Battery-units view of the same integral."""
        return self.energy_joules() / self.profile.voltage / 3.6

    def report(self):
        """A small dict for printing/inspection."""
        self.snapshot()
        return {
            "elapsed_s": self.elapsed,
            "cam_s": self.cam_time,
            "doze_s": self.doze_time,
            "tx_airtime_s": self.tx_airtime,
            "rx_airtime_s": self.rx_airtime,
            "bus_awake_s": self.bus_awake_time,
            "energy_J": self.energy_joules(),
            "avg_power_W": self.average_power_watts(),
        }

    def __repr__(self):
        return (f"<EnergyMeter {self.phone.name} "
                f"{self.energy_joules():.3f}J over {self.elapsed:.1f}s>")
