"""Link-layer and network-layer addressing.

IPv4 addresses reuse :class:`ipaddress.IPv4Address` from the standard
library; :func:`ip` is a terse constructor.  MAC addresses get a small
value class with the formatting and byte-conversion the pcap writer needs.
"""

import ipaddress


def ip(text):
    """Build an :class:`ipaddress.IPv4Address` from dotted-quad text."""
    return ipaddress.IPv4Address(text)


class MacAddress:
    """A 48-bit IEEE MAC address (EUI-48)."""

    __slots__ = ("value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, value):
        if isinstance(value, MacAddress):
            value = value.value
        elif isinstance(value, str):
            value = int(value.replace(":", "").replace("-", ""), 16)
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise ValueError(f"MAC bytes must have length 6, got {len(value)}")
            value = int.from_bytes(value, "big")
        if not 0 <= value <= self.BROADCAST_VALUE:
            raise ValueError(f"MAC value out of range: {value!r}")
        self.value = value

    @classmethod
    def broadcast(cls):
        """The all-ones broadcast address ff:ff:ff:ff:ff:ff."""
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def from_index(cls, index, oui=0x020000):
        """Deterministically allocate a locally administered MAC.

        ``oui`` defaults to a locally-administered prefix (the 0x02 bit);
        ``index`` fills the lower 24 bits, which is plenty for a testbed.
        """
        if not 0 <= index < (1 << 24):
            raise ValueError(f"index out of range: {index!r}")
        return cls((oui << 24) | index)

    @property
    def is_broadcast(self):
        return self.value == self.BROADCAST_VALUE

    def to_bytes(self):
        """Big-endian 6-byte encoding."""
        return self.value.to_bytes(6, "big")

    def __eq__(self, other):
        if isinstance(other, MacAddress):
            return self.value == other.value
        return NotImplemented

    def __hash__(self):
        return hash(self.value)

    def __str__(self):
        raw = f"{self.value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self):
        return f"MacAddress('{self}')"
