"""IP routing.

The testbed AP is the phone's first-hop router; its L3 behaviour matters
to AcuteMon because warm-up/background packets are sent with TTL=1 and
must "be dropped at the first-hop router" (paper §4.1).  The
:class:`Router` here decrements TTL, drops expired datagrams, and
(configurably) returns ICMP time-exceeded to the sender — which AcuteMon
deliberately ignores.

Ports are L2-agnostic: an Ethernet port wraps a NIC, while the AP
registers a wireless port whose transmit function goes through the 802.11
MAC.  This keeps one routing core for both media.
"""

import ipaddress

from repro.net.interface import EthernetFrame, EthernetInterface
from repro.net.packet import IcmpTimeExceeded, Packet
from repro.net.stack import IpStack


class RouterPort:
    """One logical router interface.

    ``transmit(packet, next_hop_ip)`` must resolve L2 details and send.
    """

    def __init__(self, name, ip_addr, network, transmit):
        self.name = name
        self.ip_addr = ip_addr
        self.network = ipaddress.IPv4Network(network)
        self.transmit = transmit

    def __repr__(self):
        return f"<RouterPort {self.name} {self.ip_addr} net={self.network}>"


class Router:
    """A routing core with longest-prefix-match forwarding and TTL handling."""

    def __init__(self, sim, name="router", send_time_exceeded=True, rng=None,
                 forwarding_delay=20e-6):
        self.sim = sim
        self.name = name
        self.send_time_exceeded = send_time_exceeded
        self.forwarding_delay = forwarding_delay
        self.ports = []
        self.routes = []  # (IPv4Network, port, next_hop_ip or None)
        self.stack = None
        self._rng = rng
        self.packets_forwarded = 0
        self.packets_expired = 0
        self.packets_unroutable = 0
        self.packets_unresolved = 0

    # -- configuration --------------------------------------------------

    def add_port(self, port):
        """Register a port and its connected route."""
        self.ports.append(port)
        self.add_route(port.network, port)
        if self.stack is None:
            # The first port's address doubles as the router's control-plane
            # identity (so the gateway answers pings).
            self.stack = IpStack(
                self.sim, port.ip_addr, transmit=self._stack_egress,
                rng=self._rng, name=self.name,
            )
        return port

    def add_ethernet_port(self, name, ip_addr, network, arp_table, link=None):
        """Create an Ethernet-backed port (wired side of the AP)."""
        from repro.net.addresses import MacAddress

        nic = EthernetInterface(
            self.sim, owner=self,
            mac=MacAddress.from_index(len(self.ports) + 1, oui=0x02AA00),
            name=f"{self.name}.{name}",
        )
        if link is not None:
            nic.attach_link(link)
        arp_table.register(ip_addr, nic.mac)

        def transmit(packet, next_hop):
            if not arp_table.knows(next_hop):
                # Unresolvable neighbour (failed ARP): drop, like a real
                # router whose ARP request went unanswered.
                self.packets_unresolved += 1
                return
            dst_mac = arp_table.lookup(next_hop)
            nic.send(EthernetFrame(dst_mac, nic.mac, packet))

        port = RouterPort(name, ip_addr, network, transmit)
        port.nic = nic
        port.arp = arp_table
        nic.router_port = port
        self.add_port(port)
        return port

    def add_route(self, network, port, next_hop=None):
        """Install a route; more-specific prefixes win."""
        network = ipaddress.IPv4Network(network)
        self.routes.append((network, port, next_hop))
        self.routes.sort(key=lambda route: route[0].prefixlen, reverse=True)

    # -- L2 entry points --------------------------------------------------

    def handle_frame(self, frame, nic):
        """Ethernet ingress (wired router ports)."""
        if frame.dst_mac != nic.mac and not frame.dst_mac.is_broadcast:
            return
        self.route_packet(frame.packet, ingress=getattr(nic, "router_port", None))

    # -- forwarding --------------------------------------------------------

    def route_packet(self, packet, ingress=None):
        """Route one packet arriving on ``ingress`` (or locally generated)."""
        if any(packet.dst == port.ip_addr for port in self.ports):
            self.stack.deliver(packet)
            return
        if packet.ttl <= 1:
            self.packets_expired += 1
            if self.send_time_exceeded:
                self._emit_time_exceeded(packet, ingress)
            return
        packet.ttl -= 1
        route = self.lookup_route(packet.dst)
        if route is None:
            self.packets_unroutable += 1
            return
        network, port, next_hop = route
        self.packets_forwarded += 1
        target = next_hop if next_hop is not None else packet.dst
        if self.forwarding_delay:
            self.sim.schedule(self.forwarding_delay, port.transmit, packet, target,
                              label=f"route:{self.name}")
        else:
            port.transmit(packet, target)

    def lookup_route(self, dst):
        """Longest-prefix-match; returns the route tuple or ``None``."""
        for route in self.routes:
            if dst in route[0]:
                return route
        return None

    def _emit_time_exceeded(self, packet, ingress):
        if isinstance(packet.payload, IcmpTimeExceeded):
            return  # never generate ICMP errors about ICMP errors
        source_ip = ingress.ip_addr if ingress is not None else self.ports[0].ip_addr
        error = Packet(
            source_ip, packet.src, IcmpTimeExceeded(packet),
            meta=dict(packet.meta), created_at=self.sim.now,
        )
        self.sim.schedule(
            self.forwarding_delay, self.route_packet, error,
            label=f"ttl-exceeded:{self.name}",
        )

    def _stack_egress(self, packet):
        self.route_packet(packet)

    def __repr__(self):
        return f"<Router {self.name} ports={len(self.ports)}>"
