"""The Internet checksum (RFC 1071).

Used for IPv4 headers, ICMP messages, and the UDP/TCP pseudo-header
checksums emitted into pcap captures.

The checksum is computed with a machine-order ``array('H')`` fold rather
than ``struct.iter_unpack``: RFC 1071 §2(B) notes the one's-complement
sum is byte-order independent, so we sum native 16-bit words in C speed
and byte-swap the folded result once on little-endian hosts.  This is
the hottest pure function on the wire-encoding path (three checksums per
encoded TCP/UDP packet).
"""

import struct
import sys
from array import array

_SWAP_RESULT = sys.byteorder == "little"


def internet_checksum(data):
    """Compute the 16-bit one's-complement checksum of ``data``.

    ``data`` may be any bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``).  Odd-length input is padded with a zero byte, per
    RFC 1071.  The return value is the checksum field value (i.e. already
    complemented).
    """
    if not isinstance(data, (bytes, bytearray)):
        # array('H', memoryview) would widen each *byte* to a word.
        data = bytes(data)
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    total = sum(array("H", data))
    # Fold carries back in until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if _SWAP_RESULT:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def verify_checksum(data):
    """True when ``data`` (including its checksum field) sums to zero."""
    return internet_checksum(data) == 0


_PSEUDO = struct.Struct("!4s4sBBH")
_pseudo_cache = {}


def pseudo_header(src_ip, dst_ip, protocol, length):
    """IPv4 pseudo-header used by UDP and TCP checksums.

    Cached: an experiment reuses a handful of (src, dst, protocol,
    length) combinations thousands of times.
    """
    key = (src_ip, dst_ip, protocol, length)
    cached = _pseudo_cache.get(key)
    if cached is None:
        cached = _PSEUDO.pack(src_ip.packed, dst_ip.packed, 0, protocol,
                              length)
        if len(_pseudo_cache) < 4096:
            _pseudo_cache[key] = cached
    return cached
