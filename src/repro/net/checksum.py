"""The Internet checksum (RFC 1071).

Used for IPv4 headers, ICMP messages, and the UDP/TCP pseudo-header
checksums emitted into pcap captures.
"""

import struct


def internet_checksum(data):
    """Compute the 16-bit one's-complement checksum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.  The return
    value is the checksum field value (i.e. already complemented).
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries back in until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data):
    """True when ``data`` (including its checksum field) sums to zero."""
    return internet_checksum(data) == 0


def pseudo_header(src_ip, dst_ip, protocol, length):
    """IPv4 pseudo-header used by UDP and TCP checksums."""
    return struct.pack(
        "!4s4sBBH",
        src_ip.packed,
        dst_ip.packed,
        0,
        protocol,
        length,
    )
