"""The Internet checksum (RFC 1071).

Used for IPv4 headers, ICMP messages, and the UDP/TCP pseudo-header
checksums emitted into pcap captures.

The checksum is computed with a machine-order ``array('H')`` fold rather
than ``struct.iter_unpack``: RFC 1071 §2(B) notes the one's-complement
sum is byte-order independent, so we sum native 16-bit words in C speed
and byte-swap the folded result once on little-endian hosts.  This is
the hottest pure function on the wire-encoding path (three checksums per
encoded TCP/UDP packet).
"""

import struct
import sys
from array import array

try:  # numpy is a declared dependency; degrade gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

_SWAP_RESULT = sys.byteorder == "little"


def internet_checksum(data):
    """Compute the 16-bit one's-complement checksum of ``data``.

    ``data`` may be any bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``).  Odd-length input is padded with a zero byte, per
    RFC 1071.  The return value is the checksum field value (i.e. already
    complemented).
    """
    if not isinstance(data, (bytes, bytearray)):
        # array('H', memoryview) would widen each *byte* to a word.
        data = bytes(data)
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    total = sum(array("H", data))
    # Fold carries back in until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if _SWAP_RESULT:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def internet_checksum_batch(blobs):
    """Checksums of many bytes-like blobs in one vectorized pass.

    Equivalent to ``[internet_checksum(b) for b in blobs]`` but folds
    every word of every blob in a handful of numpy array operations.
    Blobs are grouped by length — an experiment uses a handful of
    payload sizes, the same low-cardinality assumption behind the wire
    codec's caches — and each group is concatenated into one buffer and
    summed as a 2-D word matrix (one row per blob), followed by a
    vectorized carry fold.  This is what makes batch packet encoding
    (:func:`repro.net.wire.encode_ipv4_batch`) pay off — the checksum
    is the only part of encoding that touches every payload byte.
    """
    if _np is None:  # stripped install: keep the semantics, lose the speed
        return [internet_checksum(blob) for blob in blobs]
    if not blobs:
        return []
    groups = {}
    for i, blob in enumerate(blobs):
        if not isinstance(blob, (bytes, bytearray)):
            blob = bytes(blob)
        group = groups.get(len(blob))
        if group is None:
            group = groups[len(blob)] = ([], [])
        group[0].append(i)
        group[1].append(blob)
    results = [0] * len(blobs)
    for length, (indices, members) in groups.items():
        if length == 0:
            for i in indices:
                results[i] = 0xFFFF  # empty input: ~0
            continue
        if length & 1:
            # Uniform odd length: a zero byte after every member pads
            # each to even (RFC 1071) in a single join.
            buf = b"\x00".join(members) + b"\x00"
        else:
            buf = b"".join(members)
        # Machine-order words, like the array('H') scalar fold; the
        # one's-complement sum is byte-order independent (RFC 1071
        # §2(B)) so only the folded result is swapped.
        words = _np.frombuffer(buf, dtype=_np.uint16)
        sums = words.reshape(len(members), -1).sum(axis=1, dtype=_np.uint64)
        while (sums >> _np.uint64(16)).any():
            sums = (sums & _np.uint64(0xFFFF)) + (sums >> _np.uint64(16))
        if _SWAP_RESULT:
            sums = (((sums & _np.uint64(0xFF)) << _np.uint64(8))
                    | (sums >> _np.uint64(8)))
        for i, value in zip(indices, ((~sums) & _np.uint64(0xFFFF)).tolist()):
            results[i] = value
    return results


def verify_checksum(data):
    """True when ``data`` (including its checksum field) sums to zero."""
    return internet_checksum(data) == 0


_PSEUDO = struct.Struct("!4s4sBBH")
_pseudo_cache = {}


def pseudo_header(src_ip, dst_ip, protocol, length):
    """IPv4 pseudo-header used by UDP and TCP checksums.

    Cached: an experiment reuses a handful of (src, dst, protocol,
    length) combinations thousands of times.
    """
    key = (src_ip, dst_ip, protocol, length)
    cached = _pseudo_cache.get(key)
    if cached is None:
        cached = _PSEUDO.pack(src_ip.packed, dst_ip.packed, 0, protocol,
                              length)
        if len(_pseudo_cache) < 4096:
            _pseudo_cache[key] = cached
    return cached
