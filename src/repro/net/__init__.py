"""Wired network substrate.

This package implements everything between the access point's Ethernet
port and the measurement server in the paper's Figure 2 testbed:

* byte-accurate packet headers with real Internet checksums
  (:mod:`repro.net.packet`, :mod:`repro.net.wire`),
* links, NICs and drop-tail queues (:mod:`repro.net.link`,
  :mod:`repro.net.interface`, :mod:`repro.net.queues`),
* a learning switch and an IP router with TTL handling and ICMP
  time-exceeded generation (:mod:`repro.net.switch`, :mod:`repro.net.router`),
* ``tc netem``-style delay emulation (:mod:`repro.net.netem`),
* host stacks with ICMP echo, UDP sockets and a small TCP implementation
  (:mod:`repro.net.host`, :mod:`repro.net.tcp`),
* the measurement server and iPerf-style load generation
  (:mod:`repro.net.servers`, :mod:`repro.net.iperf`).
"""

from repro.net.addresses import MacAddress, ip
from repro.net.host import Host
from repro.net.iperf import UdpLoadGenerator, UdpSink
from repro.net.link import Link
from repro.net.netem import NetemQdisc
from repro.net.packet import (
    IcmpEcho,
    IcmpTimeExceeded,
    Packet,
    TcpSegment,
    UdpDatagram,
)
from repro.net.queues import DropTailQueue
from repro.net.router import Router
from repro.net.servers import HttpServer, MeasurementServer
from repro.net.switch import Switch

__all__ = [
    "DropTailQueue",
    "Host",
    "HttpServer",
    "IcmpEcho",
    "IcmpTimeExceeded",
    "Link",
    "MacAddress",
    "MeasurementServer",
    "NetemQdisc",
    "Packet",
    "Router",
    "Switch",
    "TcpSegment",
    "UdpDatagram",
    "UdpLoadGenerator",
    "UdpSink",
    "ip",
]
