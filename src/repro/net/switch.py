"""A learning Ethernet switch.

Models the testbed switch of the paper's Figure 2 that connects the
measurement server, the load server, and the AP's wired port.  Standard
transparent-bridge behaviour: learn source MACs, forward to the learned
port, flood unknowns and broadcast.
"""

from repro.net.interface import EthernetInterface


class Switch:
    """An N-port store-and-forward learning switch."""

    def __init__(self, sim, name="switch"):
        self._sim = sim
        self.name = name
        self.ports = []
        self._fdb = {}  # MacAddress -> EthernetInterface
        self.frames_forwarded = 0
        self.frames_flooded = 0

    def new_port(self, link=None):
        """Create a port; optionally attach it to ``link`` right away."""
        from repro.net.addresses import MacAddress

        port = EthernetInterface(
            self._sim,
            owner=self,
            # Switch ports are transparent; a MAC is only needed for repr.
            mac=MacAddress.from_index(len(self.ports), oui=0x02FFFF),
            name=f"{self.name}.p{len(self.ports)}",
        )
        self.ports.append(port)
        if link is not None:
            port.attach_link(link)
        return port

    def handle_frame(self, frame, ingress):
        """Bridge one frame."""
        self._fdb[frame.src_mac] = ingress
        if frame.dst_mac.is_broadcast:
            self._flood(frame, ingress)
            return
        egress = self._fdb.get(frame.dst_mac)
        if egress is None:
            self._flood(frame, ingress)
        elif egress is not ingress:
            self.frames_forwarded += 1
            egress.send(frame)
        # Frames addressed back out the ingress port are filtered.

    def _flood(self, frame, ingress):
        self.frames_flooded += 1
        for port in self.ports:
            if port is not ingress and port.link is not None:
                port.send(frame)

    def __repr__(self):
        return f"<Switch {self.name} ports={len(self.ports)}>"
