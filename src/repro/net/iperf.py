"""iPerf-style UDP load generation.

Paper §4.3: "The load generator establishes 10 connections to the server,
and each connection sends out UDP packets at a sending rate of 2.5Mbps",
enough to congest an 802.11g WLAN whose practical UDP ceiling is
~20 Mbps.  :class:`UdpLoadGenerator` reproduces that workload;
:class:`UdpSink` is the fixed load server that counts what actually got
through (the paper observed ~10 Mbps goodput under contention).
"""

from repro.sim.units import bytes_to_bits

DEFAULT_UDP_PAYLOAD = 1470  # iperf's classic UDP datagram payload


class UdpFlow:
    """One paced UDP flow."""

    def __init__(self, sim, stack, dst, dst_port, rate_bps,
                 payload_size=DEFAULT_UDP_PAYLOAD, rng=None, name=""):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.stack = stack
        self.dst = dst
        self.dst_port = dst_port
        self.rate_bps = rate_bps
        self.payload_size = payload_size
        self.rng = rng
        self.name = name
        self.src_port = stack.allocate_port()
        self.packets_sent = 0
        self._running = False
        self._event = None

    @property
    def interval(self):
        """Ideal inter-packet gap for the configured rate."""
        return bytes_to_bits(self.payload_size) / self.rate_bps

    def start(self, jitter_first=True):
        """Begin pacing.  Flows desynchronise their first packet."""
        if self._running:
            return
        self._running = True
        phase = self.rng.uniform(0, self.interval) if (self.rng and jitter_first) else 0.0
        self._event = self.sim.schedule(phase, self._send_one,
                                        label=f"iperf:{self.name}")

    def stop(self):
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _send_one(self):
        if not self._running:
            return
        self.stack.send_udp(
            self.dst, self.dst_port, src_port=self.src_port,
            payload_size=self.payload_size, meta={"flow": self.name},
        )
        self.packets_sent += 1
        self._event = self.sim.schedule(self.interval, self._send_one,
                                        label=f"iperf:{self.name}")


class UdpLoadGenerator:
    """A bundle of parallel UDP flows (iperf -P style)."""

    def __init__(self, sim, stack, dst, dst_port, flows=10, rate_bps=2.5e6,
                 payload_size=DEFAULT_UDP_PAYLOAD, rng=None, name="loadgen"):
        self.sim = sim
        self.name = name
        self.flows = [
            UdpFlow(sim, stack, dst, dst_port, rate_bps,
                    payload_size=payload_size, rng=rng, name=f"{name}.{i}")
            for i in range(flows)
        ]

    @property
    def offered_load_bps(self):
        return sum(flow.rate_bps for flow in self.flows)

    @property
    def packets_sent(self):
        return sum(flow.packets_sent for flow in self.flows)

    def start(self):
        for flow in self.flows:
            flow.start()

    def stop(self):
        for flow in self.flows:
            flow.stop()


class UdpSink:
    """Receives load traffic and reports achieved throughput."""

    def __init__(self, host, port):
        self.host = host
        self.sim = host.sim
        self.port = port
        self.packets_received = 0
        self.bytes_received = 0
        self.first_arrival = None
        self.last_arrival = None
        self.binding = host.stack.udp_bind(port, self._on_datagram)

    def _on_datagram(self, packet):
        size = packet.payload.payload_size
        self.packets_received += 1
        self.bytes_received += size
        if self.first_arrival is None:
            self.first_arrival = self.sim.now
        self.last_arrival = self.sim.now

    def throughput_bps(self):
        """Achieved goodput over the observed receive window."""
        if self.packets_received < 2:
            return 0.0
        span = self.last_arrival - self.first_arrival
        if span <= 0:
            return 0.0
        return bytes_to_bits(self.bytes_received) / span

    def close(self):
        self.binding.close()
