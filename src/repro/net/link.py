"""Full-duplex point-to-point wired links."""

from repro.sim.units import bytes_to_bits


class Link:
    """A wired link between two interfaces.

    Each direction serialises independently (full duplex) at
    ``bandwidth_bps`` and then propagates for ``propagation_delay``
    seconds.  The link itself never reorders or drops; loss and delay
    variation belong to :mod:`repro.net.netem`.
    """

    def __init__(self, sim, bandwidth_bps=1e9, propagation_delay=1e-6, name=""):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay must be >= 0")
        self._sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.name = name
        self._ends = [None, None]

    def attach(self, interface):
        """Attach an interface to the first free end; returns the end index."""
        for index in (0, 1):
            if self._ends[index] is None:
                self._ends[index] = interface
                return index
        raise RuntimeError(f"link {self.name or id(self)} already has two ends")

    def peer_of(self, interface):
        """The interface at the other end, or ``None`` if unattached."""
        if interface is self._ends[0]:
            return self._ends[1]
        if interface is self._ends[1]:
            return self._ends[0]
        raise ValueError("interface is not attached to this link")

    def serialization_time(self, wire_size):
        """Seconds to clock ``wire_size`` bytes onto the medium."""
        return bytes_to_bits(wire_size) / self.bandwidth_bps

    def transmit(self, sender, frame):
        """Deliver ``frame`` from ``sender`` to the peer after tx + propagation.

        Called by the sending interface once its egress scheduler decides
        the frame goes out *now*; the return value is the serialisation
        time so the sender knows when its transmitter frees up.
        """
        peer = self.peer_of(sender)
        tx_time = self.serialization_time(frame.wire_size)
        if peer is not None:
            self._sim.schedule(
                tx_time + self.propagation_delay,
                peer.receive_from_link,
                frame,
                label=f"link-deliver:{self.name}",
            )
        return tx_time

    def __repr__(self):
        return (
            f"<Link {self.name or id(self)} {self.bandwidth_bps / 1e6:.0f}Mbps "
            f"prop={self.propagation_delay * 1e6:.1f}us>"
        )
