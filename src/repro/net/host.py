"""Wired hosts.

A :class:`Host` is an end system on the switched LAN: one Ethernet NIC,
one :class:`~repro.net.stack.IpStack`, a default gateway, and an optional
egress :class:`~repro.net.netem.NetemQdisc` (how the measurement server
emulates long paths).
"""

from repro.net.interface import EthernetFrame, EthernetInterface
from repro.net.stack import IpStack


class Host:
    """An end host attached to an Ethernet segment."""

    def __init__(self, sim, name, ip_addr, mac, arp_table, gateway=None,
                 netem=None, rng=None, proc_delay=100e-6, proc_jitter=50e-6):
        self.sim = sim
        self.name = name
        self.ip_addr = ip_addr
        self.arp = arp_table
        self.gateway = gateway
        self.netem = netem
        self.nic = EthernetInterface(sim, owner=self, mac=mac, name=f"{name}.eth0")
        self.stack = IpStack(
            sim, ip_addr, transmit=self._egress, rng=rng, name=name,
            proc_delay=proc_delay, proc_jitter=proc_jitter,
        )
        arp_table.register(ip_addr, mac)

    # -- outbound -----------------------------------------------------

    def _egress(self, packet):
        if self.netem is not None:
            self.netem.apply(packet, self._send_frame)
        else:
            self._send_frame(packet)

    def _send_frame(self, packet):
        next_hop = packet.dst if self.arp.knows(packet.dst) else self.gateway
        if next_hop is None:
            raise RuntimeError(
                f"{self.name}: no route to {packet.dst} and no gateway configured"
            )
        dst_mac = self.arp.lookup(next_hop)
        self.nic.send(EthernetFrame(dst_mac, self.nic.mac, packet))

    # -- inbound ------------------------------------------------------

    def handle_frame(self, frame, interface):
        """NIC delivery: accept frames addressed to us (or broadcast)."""
        if frame.dst_mac != self.nic.mac and not frame.dst_mac.is_broadcast:
            return
        packet = frame.packet
        if packet.dst == self.ip_addr or frame.dst_mac.is_broadcast:
            self.stack.deliver(packet)
        # Hosts do not forward.

    def __repr__(self):
        return f"<Host {self.name} {self.ip_addr}>"
