"""Server applications used by the measurement tools.

:class:`MeasurementServer` is the paper's "measurement server": it answers
ICMP echo (built into the host stack), accepts TCP connections and speaks
just enough HTTP for ``httping``/AcuteMon data probes, and echoes UDP.
All responses preserve the request's ``probe_id`` metadata so sniffers and
the analysis pipeline can pair request/response.
"""

HTTP_PORT = 80
UDP_ECHO_PORT = 7007

#: Approximate sizes of a minimal HTTP GET and its response (bytes).
HTTP_REQUEST_SIZE = 120
HTTP_RESPONSE_SIZE = 230


class HttpServer:
    """A one-request-per-connection HTTP responder.

    The request is any chunk of TCP data; after ``response_delay`` (the
    server's application processing) it answers with ``response_size``
    bytes and optionally half-closes.
    """

    def __init__(self, host, port=HTTP_PORT, response_size=HTTP_RESPONSE_SIZE,
                 close_after_response=False):
        self.host = host
        self.sim = host.sim
        self.port = port
        self.response_size = response_size
        self.close_after_response = close_after_response
        self.requests_served = 0
        self.listener = host.stack.tcp.listen(port, self._on_connection)

    def _on_connection(self, conn):
        conn.on_data = self._on_data

    def _on_data(self, conn, nbytes, meta):
        self.sim.schedule(
            self.host.stack.response_delay(), self._respond, conn, meta,
            label="http-respond",
        )

    def _respond(self, conn, meta):
        if conn.state not in ("ESTABLISHED", "CLOSE_WAIT"):
            return
        self.requests_served += 1
        conn.send(self.response_size, meta=meta)
        if self.close_after_response:
            conn.close()

    def close(self):
        self.listener.close()


class UdpEchoServer:
    """Echo every UDP datagram back to its source (same size, same meta).

    Honours an ``echo_delay`` metadata key: the response is held for that
    long before being sent.  Timer-calibration probes use this to emulate
    arbitrarily long paths from inside the testbed
    (:mod:`repro.core.calibration`).
    """

    def __init__(self, host, port=UDP_ECHO_PORT):
        self.host = host
        self.sim = host.sim
        self.port = port
        self.datagrams_echoed = 0
        self.binding = host.stack.udp_bind(port, self._on_datagram)

    def _on_datagram(self, packet):
        datagram = packet.payload
        delay = self.host.stack.response_delay()
        delay += packet.meta.get("echo_delay", 0.0)
        self.sim.schedule(delay, self._echo, packet, datagram,
                          label="udp-echo")

    def _echo(self, packet, datagram):
        self.datagrams_echoed += 1
        self.host.stack.send_udp(
            packet.src, datagram.src_port, src_port=self.port,
            payload_size=datagram.payload_size, meta=dict(packet.meta),
        )

    def close(self):
        self.binding.close()


class MeasurementServer:
    """The full server role from Figure 2: ICMP + HTTP + UDP echo."""

    def __init__(self, host, http_port=HTTP_PORT, udp_echo_port=UDP_ECHO_PORT,
                 http_response_size=HTTP_RESPONSE_SIZE):
        self.host = host
        host.stack.echo_responder_enabled = True
        self.http = HttpServer(host, port=http_port,
                               response_size=http_response_size)
        self.udp_echo = UdpEchoServer(host, port=udp_echo_port)

    @property
    def ip_addr(self):
        return self.host.ip_addr

    def __repr__(self):
        return f"<MeasurementServer on {self.host.name}>"
