"""Ethernet frames and interfaces.

:class:`EthernetInterface` is the L2 attachment point used by hosts,
switches, routers, and the AP's wired port.  It owns a drop-tail egress
queue and serialises frames onto its :class:`~repro.net.link.Link` one at
a time.  Taps (callbacks) observe frames in both directions — this is how
``tcpdump``-style wired captures are implemented.
"""

ETHERNET_OVERHEAD = 38  # preamble + SFD + header + FCS + minimum IFG, bytes


class EthernetFrame:
    """An Ethernet frame carrying one IP packet."""

    __slots__ = ("dst_mac", "src_mac", "packet")

    def __init__(self, dst_mac, src_mac, packet):
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self.packet = packet

    @property
    def wire_size(self):
        return ETHERNET_OVERHEAD + self.packet.wire_size

    def __repr__(self):
        return f"EthernetFrame({self.src_mac} -> {self.dst_mac} {self.packet!r})"


class EthernetInterface:
    """One Ethernet port.

    ``owner`` must implement ``handle_frame(frame, interface)``; it is
    invoked for every frame arriving from the link.  Sending is
    store-and-forward: frames queue in ``egress`` and are clocked out at
    link speed.
    """

    def __init__(self, sim, owner, mac, queue=None, name=""):
        from repro.net.queues import DropTailQueue

        self._sim = sim
        self.owner = owner
        self.mac = mac
        self.link = None
        self.egress = queue if queue is not None else DropTailQueue()
        self.name = name
        self._transmitting = False
        self._taps = []
        self.frames_sent = 0
        self.frames_received = 0

    def attach_link(self, link):
        """Connect this interface to a link end."""
        if self.link is not None:
            raise RuntimeError(f"interface {self.name or self.mac} already attached")
        self.link = link
        link.attach(self)

    def add_tap(self, callback):
        """Register ``callback(frame, direction)``; direction is 'tx' or 'rx'."""
        self._taps.append(callback)

    def send(self, frame):
        """Queue a frame for transmission; returns ``False`` if tail-dropped."""
        if self.link is None:
            raise RuntimeError(f"interface {self.name or self.mac} has no link")
        if not self.egress.enqueue(frame):
            return False
        self._pump()
        return True

    def _pump(self):
        if self._transmitting or self.egress.is_empty:
            return
        frame = self.egress.dequeue()
        self._transmitting = True
        for tap in self._taps:
            tap(frame, "tx")
        tx_time = self.link.transmit(self, frame)
        self.frames_sent += 1
        self._sim.schedule(tx_time, self._transmit_done, label=f"eth-tx:{self.name}")

    def _transmit_done(self):
        self._transmitting = False
        self._pump()

    def receive_from_link(self, frame):
        """Link delivery entry point."""
        self.frames_received += 1
        for tap in self._taps:
            tap(frame, "rx")
        self.owner.handle_frame(frame, self)

    def __repr__(self):
        return f"<EthernetInterface {self.name or ''} mac={self.mac}>"
