"""The transport-layer stack shared by hosts and the phone kernel.

:class:`IpStack` demultiplexes inbound IPv4 packets to ICMP/UDP/TCP
handlers and funnels outbound packets to whatever lower layer its owner
wires in — an Ethernet NIC for wired hosts, the WNIC driver chain for the
simulated smartphone.  Keeping this layer L2-agnostic is what lets the
same tools (:mod:`repro.tools`) run unchanged on a wired host or on the
phone model.
"""

from repro.net.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    IcmpEcho,
    IcmpTimeExceeded,
    Packet,
    UdpDatagram,
)
from repro.net.tcp import TcpStack

EPHEMERAL_PORT_FIRST = 32768
EPHEMERAL_PORT_LAST = 60999


class PingHandle:
    """Registration of an ICMP echo ident; replies arrive via the callback."""

    def __init__(self, stack, ident, callback):
        self._stack = stack
        self.ident = ident
        self.callback = callback

    def close(self):
        self._stack._ping_handles.pop(self.ident, None)


class UdpBinding:
    """A bound UDP port; datagrams arrive via ``callback(packet)``."""

    def __init__(self, stack, port, callback):
        self._stack = stack
        self.port = port
        self.callback = callback

    def close(self):
        self._stack._udp_bindings.pop(self.port, None)


class IpStack:
    """IPv4 endpoint: ICMP echo, UDP sockets, and a TCP stack.

    Parameters
    ----------
    sim:
        The simulator.
    local_ip:
        This endpoint's address.
    transmit:
        ``callable(packet)`` pushing an outbound packet toward the network.
    rng:
        Optional :class:`random.Random` for ISNs and processing jitter.
    proc_delay / proc_jitter:
        Mean and half-width (uniform) of the host processing delay applied
        when *this stack itself* generates a response (echo replies).  The
        paper treats server processing as microsecond-level (citing TCP
        data-probe results); the default reflects that.
    """

    def __init__(self, sim, local_ip, transmit, rng=None, name="",
                 proc_delay=100e-6, proc_jitter=50e-6):
        self.sim = sim
        self.local_ip = local_ip
        self.name = name or str(local_ip)
        self._transmit = transmit
        self.rng = rng
        self.proc_delay = proc_delay
        self.proc_jitter = proc_jitter
        self.echo_responder_enabled = True
        self.tcp = TcpStack(self)
        self._ping_handles = {}
        self._udp_bindings = {}
        self._icmp_error_handlers = []
        self._next_ephemeral = EPHEMERAL_PORT_FIRST
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_dropped = 0

    # -- outbound --------------------------------------------------------

    def send(self, packet):
        """Push one packet down to the attached lower layer."""
        self.packets_sent += 1
        self._transmit(packet)

    def send_echo_request(self, dst, ident, seq, payload_size=56, ttl=None, meta=None):
        """Convenience: build and send an ICMP echo request."""
        echo = IcmpEcho(icmp_type=8, ident=ident, seq=seq, payload_size=payload_size)
        packet = Packet(self.local_ip, dst, echo, ttl=ttl or Packet.DEFAULT_TTL,
                        meta=meta, created_at=self.sim.now)
        self.send(packet)
        return packet

    def send_udp(self, dst, dst_port, src_port=None, payload_size=0, ttl=None, meta=None):
        """Convenience: build and send a UDP datagram."""
        if src_port is None:
            src_port = self.allocate_port()
        datagram = UdpDatagram(src_port, dst_port, payload_size)
        packet = Packet(self.local_ip, dst, datagram, ttl=ttl or Packet.DEFAULT_TTL,
                        meta=meta, created_at=self.sim.now)
        self.send(packet)
        return packet

    def allocate_port(self):
        """Next ephemeral port (wraps around the Linux default range)."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > EPHEMERAL_PORT_LAST:
            self._next_ephemeral = EPHEMERAL_PORT_FIRST
        return port

    # -- inbound ---------------------------------------------------------

    def deliver(self, packet):
        """Demultiplex one inbound packet addressed to this endpoint."""
        self.packets_received += 1
        protocol = packet.protocol
        if protocol == PROTO_ICMP:
            self._deliver_icmp(packet)
        elif protocol == PROTO_UDP:
            self._deliver_udp(packet)
        elif protocol == PROTO_TCP:
            self.tcp.deliver(packet)
        else:
            self.packets_dropped += 1

    def _deliver_icmp(self, packet):
        payload = packet.payload
        if isinstance(payload, IcmpTimeExceeded):
            for handler in self._icmp_error_handlers:
                handler(packet)
            return
        if not isinstance(payload, IcmpEcho):
            self.packets_dropped += 1
            return
        if payload.is_request:
            if self.echo_responder_enabled:
                self._schedule_echo_reply(packet, payload)
            return
        handle = self._ping_handles.get(payload.ident)
        if handle is not None:
            handle.callback(packet)
        else:
            self.packets_dropped += 1

    def _schedule_echo_reply(self, request, echo):
        reply = Packet(
            self.local_ip, request.src, echo.make_reply(),
            meta=dict(request.meta), created_at=self.sim.now,
        )
        self.sim.schedule(self.response_delay(), self.send, reply,
                          label=f"echo-reply:{self.name}")

    def _deliver_udp(self, packet):
        binding = self._udp_bindings.get(packet.payload.dst_port)
        if binding is not None:
            binding.callback(packet)
        else:
            self.packets_dropped += 1

    # -- registration ------------------------------------------------------

    def register_ping(self, ident, callback):
        """Claim an ICMP echo ident; replies with it go to ``callback``."""
        if ident in self._ping_handles:
            raise ValueError(f"ICMP ident {ident} already registered")
        handle = PingHandle(self, ident, callback)
        self._ping_handles[ident] = handle
        return handle

    def udp_bind(self, port, callback):
        """Bind a UDP port."""
        if port in self._udp_bindings:
            raise ValueError(f"UDP port {port} already bound")
        binding = UdpBinding(self, port, callback)
        self._udp_bindings[port] = binding
        return binding

    def add_icmp_error_handler(self, handler):
        """Observe inbound ICMP errors (time exceeded, ...)."""
        self._icmp_error_handlers.append(handler)

    def response_delay(self):
        """Draw one host processing delay for a locally generated response."""
        if self.proc_jitter and self.rng is not None:
            return max(
                0.0,
                self.proc_delay + self.rng.uniform(-self.proc_jitter, self.proc_jitter),
            )
        return self.proc_delay

    def __repr__(self):
        return f"<IpStack {self.name} ip={self.local_ip}>"
