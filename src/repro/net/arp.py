"""Static address resolution.

The paper's testbed is a closed LAN, so rather than simulating ARP
request/reply chatter (which would itself wake sleeping radios and
perturb the measurements) the topology builder pre-populates one
:class:`ArpTable` per L2 segment — the moral equivalent of
``arp -s`` entries on every box.
"""


class ArpTable:
    """IP-to-MAC mapping for one broadcast domain."""

    def __init__(self):
        self._entries = {}

    def register(self, ip_addr, mac):
        """Add or replace a static entry."""
        self._entries[ip_addr] = mac

    def lookup(self, ip_addr):
        """Resolve ``ip_addr``; raises :class:`KeyError` with context if absent."""
        try:
            return self._entries[ip_addr]
        except KeyError:
            raise KeyError(
                f"no ARP entry for {ip_addr}; did the topology register it?"
            ) from None

    def knows(self, ip_addr):
        return ip_addr in self._entries

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return f"<ArpTable {len(self._entries)} entries>"
