"""``tc netem``-style network emulation.

The paper's testbed emulates Internet RTTs by adding delay on the
measurement server with ``tc`` ("we set the nRTT to 30ms and 60ms with tc
command on the server side").  :class:`NetemQdisc` reproduces that knob —
fixed delay, optional jitter (uniform or normal), optional loss — and can
be attached to any host's egress.
"""

from repro.obs.names import SPAN_WIRE_NETEM


class NetemStats:
    __slots__ = ("delayed", "lost")

    def __init__(self):
        self.delayed = 0
        self.lost = 0


class NetemQdisc:
    """Delay/jitter/loss shaping applied to packets passing through it.

    Parameters
    ----------
    delay:
        Fixed one-way delay in seconds.
    jitter:
        Jitter half-width in seconds; each packet draws an extra delay.
    jitter_dist:
        ``'uniform'`` (default, +/- jitter) or ``'normal'`` (sigma=jitter,
        clamped at zero), matching tc's ``delay <d> <jitter>`` and
        ``distribution normal``.
    loss:
        Independent drop probability in [0, 1].
    maintain_order:
        When true, a packet is never released before one that entered
        earlier (tc reorders by default; enable this for strictly FIFO
        behaviour).
    """

    def __init__(self, sim, delay=0.0, jitter=0.0, jitter_dist="uniform",
                 loss=0.0, rng=None, maintain_order=False, name="netem"):
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be >= 0")
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be within [0, 1]")
        if jitter_dist not in ("uniform", "normal"):
            raise ValueError(f"unknown jitter distribution {jitter_dist!r}")
        if (jitter > 0 or loss > 0) and rng is None:
            raise ValueError("jitter/loss require an rng")
        self._sim = sim
        self.delay = delay
        self.jitter = jitter
        self.jitter_dist = jitter_dist
        self.loss = loss
        self.rng = rng
        self.maintain_order = maintain_order
        self.name = name
        self.stats = NetemStats()
        self._last_release = 0.0

    def draw_delay(self):
        """One per-packet delay sample."""
        extra = 0.0
        if self.jitter > 0:
            if self.jitter_dist == "uniform":
                extra = self.rng.uniform(-self.jitter, self.jitter)
            else:
                extra = self.rng.gauss(0.0, self.jitter)
        return max(0.0, self.delay + extra)

    def apply(self, packet, forward):
        """Shape one packet; ``forward(packet)`` runs when it is released."""
        if self.loss > 0 and self.rng.random() < self.loss:
            self.stats.lost += 1
            return
        sim = self._sim
        release = sim.now + self.draw_delay()
        if self.maintain_order and release < self._last_release:
            release = self._last_release
        self._last_release = release
        self.stats.delayed += 1
        if sim.spans.enabled and packet.probe_id is not None:
            # Emulated wired-path delay: one leg of the probe's nRTT.
            sim.spans.record(SPAN_WIRE_NETEM, sim.now, release,
                             netem=self.name, probe_id=packet.probe_id)
        sim.at(release, forward, packet, label=f"netem:{self.name}")
