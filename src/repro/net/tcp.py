"""A small TCP implementation.

Implements the parts of TCP the paper's tools exercise:

* three-way handshake (AcuteMon and MobiPerf time SYN -> SYN|ACK),
* request/response data transfer with immediate ACKs (httping and
  AcuteMon's HTTP probes),
* orderly FIN teardown and RST for closed ports (MobiPerf's
  ``InetAddress`` method observes SYN -> RST),
* a plain fixed-RTO retransmission scheme so probes survive configured
  netem loss.

Deliberately out of scope (documented here rather than half-built):
congestion control, window management, SACK, and out-of-order
reassembly — the testbed paths are short, lossless by default, and
request/response sized, so none of these affect the reproduced results.
"""

from repro.net.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    Packet,
    TcpSegment,
)
from repro.sim.timers import Timer

#: Maximum segment size used when applications send large buffers.
DEFAULT_MSS = 1460

#: Fixed retransmission timeout (seconds) and retry budget.
DEFAULT_RTO = 1.0
MAX_RETRIES = 5

# Connection states (subset of RFC 793).
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"


class TcpError(Exception):
    """Raised for invalid TCP API use (e.g. sending on a closed connection)."""


class TcpListener:
    """A passive socket; calls ``on_connection(conn)`` once ESTABLISHED."""

    def __init__(self, stack, port, on_connection):
        self.stack = stack
        self.port = port
        self.on_connection = on_connection

    def close(self):
        self.stack._listeners.pop(self.port, None)


class TcpConnection:
    """One end of a TCP connection.

    Callbacks (all optional):

    ``on_connected(conn)``
        Handshake completed (client: SYN|ACK received; server: ACK received).
    ``on_data(conn, nbytes, meta)``
        Payload bytes arrived (called per segment).
    ``on_close(conn)``
        Peer FIN processed and teardown finished.
    ``on_reset(conn)``
        Peer sent RST (e.g. closed port).
    """

    def __init__(self, stack, local_port, remote_ip, remote_port, meta=None):
        self.stack = stack
        self.sim = stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.meta = dict(meta) if meta else {}
        self.state = CLOSED
        self.snd_nxt = 0
        self.snd_una = 0
        self.rcv_nxt = 0
        self.mss = DEFAULT_MSS
        self.on_connected = None
        self.on_data = None
        self.on_close = None
        self.on_reset = None
        self.bytes_received = 0
        self.bytes_sent = 0
        self.retransmissions = 0
        self._retx_queue = []  # [(seq, segment, retries), ...] in seq order
        self._retx_timer = Timer(self.sim, self._on_rto, label="tcp-rto")
        self._fin_sent = False

    # -- public API ---------------------------------------------------

    @property
    def key(self):
        return (self.local_port, self.remote_ip, self.remote_port)

    def open_active(self):
        """Client side: send SYN."""
        if self.state != CLOSED:
            raise TcpError(f"open_active in state {self.state}")
        iss = self.stack.initial_sequence_number()
        self.snd_una = iss
        self.snd_nxt = iss
        self.state = SYN_SENT
        self._send_segment(TCP_SYN, seq_len=1, meta=self.meta)

    def send(self, nbytes, meta=None, push=True):
        """Send ``nbytes`` of application data (segmented at the MSS)."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise TcpError(f"send in state {self.state}")
        if nbytes <= 0:
            raise TcpError("send requires a positive byte count")
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, self.mss)
            remaining -= chunk
            flags = TCP_ACK | (TCP_PSH if push and remaining == 0 else 0)
            self._send_segment(flags, payload_size=chunk, meta=meta)
        self.bytes_sent += nbytes

    def close(self):
        """Send FIN (half-close); teardown completes via callbacks."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, FIN_WAIT_1, FIN_WAIT_2):
            return
        if self.state == SYN_SENT:
            self._teardown()
            return
        if self.state == ESTABLISHED or self.state == SYN_RCVD:
            self.state = FIN_WAIT_1
        elif self.state == CLOSE_WAIT:
            self.state = LAST_ACK
        self._fin_sent = True
        self._send_segment(TCP_FIN | TCP_ACK, seq_len=1)

    def abort(self):
        """Send RST and drop all state."""
        if self.state != CLOSED:
            self._emit(TcpSegment(
                self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt,
                TCP_RST | TCP_ACK,
            ))
        self._teardown()

    # -- segment handling ----------------------------------------------

    def handle_segment(self, packet, segment):
        """Process one inbound segment (stack dispatch)."""
        if segment.has(TCP_RST):
            self._teardown()
            if self.on_reset:
                self.on_reset(self)
            return

        if self.state == SYN_SENT:
            self._handle_in_syn_sent(packet, segment)
            return

        if segment.has(TCP_SYN):
            if self.state == SYN_RCVD:
                # Duplicate SYN: retransmit our SYN|ACK via the RTO path.
                return
            self._emit_rst(segment)
            return

        if segment.has(TCP_ACK):
            self._process_ack(segment.ack)

        advanced = False
        if segment.payload_size and segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + segment.payload_size) & 0xFFFFFFFF
            self.bytes_received += segment.payload_size
            advanced = True
        elif segment.payload_size:
            # Out-of-window / duplicate data: re-ACK and drop.
            self._send_ack(meta=packet.meta)
            return

        if self.state == SYN_RCVD and segment.has(TCP_ACK):
            self.state = ESTABLISHED
            if self.on_connected:
                self.on_connected(self)

        fin_processed = False
        if segment.has(TCP_FIN):
            self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
            advanced = True
            fin_processed = True

        if advanced:
            self._send_ack(meta=packet.meta)

        if segment.payload_size and self.on_data:
            self.on_data(self, segment.payload_size, dict(packet.meta))

        if fin_processed:
            self._handle_peer_fin()
        self._maybe_finish_close()

    def _handle_in_syn_sent(self, packet, segment):
        if not (segment.has(TCP_SYN) and segment.has(TCP_ACK)):
            return
        if segment.ack != (self.snd_una + 1) & 0xFFFFFFFF:
            self._emit_rst(segment)
            return
        self._process_ack(segment.ack)
        self.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
        self.state = ESTABLISHED
        self._send_ack(meta=packet.meta)
        if self.on_connected:
            self.on_connected(self)

    def _handle_peer_fin(self):
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT_1:
            self.state = TIME_WAIT if not self._retx_queue else CLOSE_WAIT
        elif self.state == FIN_WAIT_2:
            self.state = TIME_WAIT
        if self.state == TIME_WAIT:
            self._finish_time_wait()

    def _maybe_finish_close(self):
        if self.state == LAST_ACK and not self._retx_queue:
            self._teardown()
            if self.on_close:
                self.on_close(self)
        elif self.state == FIN_WAIT_1 and not self._retx_queue:
            self.state = FIN_WAIT_2

    def _finish_time_wait(self):
        # Compressed TIME_WAIT: the simulation tears down immediately; the
        # stack's ISN generator guarantees no segment confusion.
        self._teardown()
        if self.on_close:
            self.on_close(self)

    def _process_ack(self, ack):
        if not self._seq_le(self.snd_una, ack):
            return
        self.snd_una = ack
        self._retx_queue = [
            entry for entry in self._retx_queue
            if not self._seq_le(entry[0] + entry[1].seq_space, ack)
        ]
        if self._retx_queue:
            self._retx_timer.restart(self.stack.rto)
        else:
            self._retx_timer.cancel()

    @staticmethod
    def _seq_le(a, b):
        """a <= b in 32-bit sequence space."""
        return ((b - a) & 0xFFFFFFFF) < 0x80000000

    # -- emission -------------------------------------------------------

    def _send_segment(self, flags, payload_size=0, seq_len=None, meta=None):
        segment = TcpSegment(
            self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt,
            flags, payload_size,
        )
        consumed = segment.seq_space if seq_len is None else seq_len
        self.snd_nxt = (self.snd_nxt + consumed) & 0xFFFFFFFF
        if consumed:
            self._retx_queue.append((segment.seq, segment, 0))
            if not self._retx_timer.armed:
                self._retx_timer.start(self.stack.rto)
        self._emit(segment, meta=meta)

    def _send_ack(self, meta=None):
        self._emit(TcpSegment(
            self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt, TCP_ACK,
        ), meta=meta)

    def _emit(self, segment, meta=None):
        merged = dict(self.meta)
        if meta:
            merged.update(meta)
        packet = Packet(
            self.stack.ip.local_ip, self.remote_ip, segment, meta=merged,
            created_at=self.sim.now,
        )
        self.stack.ip.send(packet)

    def _emit_rst(self, inbound):
        self._emit(TcpSegment(
            self.local_port, self.remote_port,
            inbound.ack, (inbound.seq + inbound.seq_space) & 0xFFFFFFFF,
            TCP_RST | TCP_ACK,
        ))

    def _on_rto(self):
        if not self._retx_queue:
            return
        refreshed = []
        for seq, segment, retries in self._retx_queue:
            if retries + 1 > MAX_RETRIES:
                self._teardown()
                if self.on_reset:
                    self.on_reset(self)
                return
            self.retransmissions += 1
            self._emit(segment, meta=self.meta)
            refreshed.append((seq, segment, retries + 1))
        self._retx_queue = refreshed
        self._retx_timer.start(self.stack.rto)

    def _teardown(self):
        self._retx_timer.cancel()
        self._retx_queue = []
        self.state = CLOSED
        self.stack._forget(self)

    def __repr__(self):
        return (
            f"<TcpConnection {self.local_port}<->{self.remote_ip}:"
            f"{self.remote_port} {self.state}>"
        )


class TcpStack:
    """Per-host TCP state: listeners + active connections."""

    def __init__(self, ip_stack, rto=DEFAULT_RTO):
        self.ip = ip_stack
        self.sim = ip_stack.sim
        self.rto = rto
        self._listeners = {}
        self._connections = {}
        self._isn = self.ip.rng.randrange(1 << 32) if self.ip.rng else 1

    def initial_sequence_number(self):
        """A fresh ISN (deterministic stride keeps flows distinguishable)."""
        self._isn = (self._isn + 64009) & 0xFFFFFFFF
        return self._isn

    def listen(self, port, on_connection):
        """Open a passive socket on ``port``."""
        if port in self._listeners:
            raise TcpError(f"port {port} already listening")
        listener = TcpListener(self, port, on_connection)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_ip, remote_port, local_port=None, meta=None):
        """Start an active open; returns the connection (configure callbacks
        before the next event fires — the SYN is sent immediately)."""
        if local_port is None:
            local_port = self.ip.allocate_port()
        conn = TcpConnection(self, local_port, remote_ip, remote_port, meta=meta)
        key = conn.key
        if key in self._connections:
            raise TcpError(f"connection {key} already exists")
        self._connections[key] = conn
        conn.open_active()
        return conn

    def deliver(self, packet):
        """IP-stack dispatch for an inbound TCP packet."""
        segment = packet.payload
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(packet, segment)
            return
        if segment.has(TCP_SYN) and not segment.has(TCP_ACK):
            listener = self._listeners.get(segment.dst_port)
            if listener is not None:
                self._accept(listener, packet, segment)
                return
        if not segment.has(TCP_RST):
            self._refuse(packet, segment)

    def _accept(self, listener, packet, segment):
        conn = TcpConnection(
            self, segment.dst_port, packet.src, segment.src_port,
            meta=packet.meta,
        )
        self._connections[conn.key] = conn
        conn.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
        iss = self.initial_sequence_number()
        conn.snd_una = iss
        conn.snd_nxt = iss
        conn.state = SYN_RCVD
        listener.on_connection(conn)
        conn._send_segment(TCP_SYN | TCP_ACK, seq_len=1, meta=packet.meta)

    def _refuse(self, packet, segment):
        """RST a segment for which no socket exists (closed port)."""
        if segment.has(TCP_ACK):
            rst = TcpSegment(segment.dst_port, segment.src_port,
                             segment.ack, 0, TCP_RST)
        else:
            rst = TcpSegment(
                segment.dst_port, segment.src_port, 0,
                (segment.seq + segment.seq_space) & 0xFFFFFFFF,
                TCP_RST | TCP_ACK,
            )
        response = Packet(
            self.ip.local_ip, packet.src, rst, meta=dict(packet.meta),
            created_at=self.sim.now,
        )
        self.ip.send(response)

    def _forget(self, conn):
        self._connections.pop(conn.key, None)

    @property
    def active_connections(self):
        return len(self._connections)
