"""Rendering simulation packets to real wire bytes (and back).

Sniffers in the testbed write genuine pcap files; the analysis pipeline
re-derives network-level RTTs by parsing them, exactly as the paper's
authors post-processed their captures.  That round trip requires real
encodings: this module produces RFC-conformant IPv4/ICMP/UDP/TCP bytes
with valid checksums, and parses them back into
:class:`~repro.net.packet.Packet` objects.

Payload bytes are deterministic filler (the byte count is what matters to
the simulation), except that probe ids are embedded in the first payload
bytes of UDP/ICMP probes so captures remain matchable.

Performance notes: every simulated packet that crosses a sniffer is
encoded (and later decoded) here, so the encoders lean on three caches —
precompiled :class:`struct.Struct` instances, memoised filler payloads
(an experiment uses a handful of payload sizes), and fully-encoded IPv4
headers keyed by the header fields (checksum included, since the IPv4
checksum covers only the header).  Decoding memoises
:class:`ipaddress.IPv4Address` construction the same way.
"""

import ipaddress
import struct

from repro.net.checksum import (
    internet_checksum,
    internet_checksum_batch,
    pseudo_header,
)
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    IPV4_HEADER_LEN,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    IcmpEcho,
    IcmpTimeExceeded,
    Packet,
    TcpSegment,
    UdpDatagram,
)

_FILLER = b"\xa5"

_U16 = struct.Struct("!H")
_U64 = struct.Struct("!Q")
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_ICMP_ECHO_HEADER = struct.Struct("!BBHHH")
_ICMP_ERROR_HEADER = struct.Struct("!BBHI")
_UDP_HEADER = struct.Struct("!HHHH")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_TCP_PORTS_SEQ_ACK = struct.Struct("!HHII")
_U16_PAIR = struct.Struct("!HH")
_UDP_PORTS_LEN = struct.Struct("!HHH")

# Bounded memo caches.  Keys are low-cardinality within an experiment
# (payload sizes, header field combinations, endpoint addresses); the
# size caps only matter to pathological fuzzing workloads.
_CACHE_LIMIT = 4096
_filler_cache = {}
_ipv4_header_cache = {}
_address_cache = {}


def _filler_bytes(size):
    cached = _filler_cache.get(size)
    if cached is None:
        cached = _FILLER * size
        if len(_filler_cache) < _CACHE_LIMIT:
            _filler_cache[size] = cached
    return cached


def _payload_filler(size, probe_id=None):
    if probe_id is None:
        return _filler_bytes(size)
    tag = _U64.pack(probe_id & 0xFFFFFFFFFFFFFFFF)
    if size <= 8:
        return tag[:size]
    return tag + _filler_bytes(size - 8)


def _ipv4_header_for(packet, body_len, ident):
    """The encoded (checksummed) IPv4 header for a packet/body-length pair."""
    key = (body_len, ident, packet.ttl, packet.protocol,
           packet.src, packet.dst)
    header = _ipv4_header_cache.get(key)
    if header is None:
        header = _IPV4_HEADER.pack(
            (4 << 4) | 5,  # version 4, IHL 5 words
            0,  # DSCP/ECN
            IPV4_HEADER_LEN + body_len,
            ident & 0xFFFF,
            0,  # flags / fragment offset
            packet.ttl,
            packet.protocol,
            0,  # checksum placeholder
            packet.src.packed,
            packet.dst.packed,
        )
        checksum = internet_checksum(header)
        header = header[:10] + _U16.pack(checksum) + header[12:]
        if len(_ipv4_header_cache) < _CACHE_LIMIT:
            _ipv4_header_cache[key] = header
    return header


def encode_ipv4(packet, ident=0):
    """Encode a :class:`Packet` as IPv4 bytes with a valid header checksum."""
    body = _encode_transport(packet)
    return _ipv4_header_for(packet, len(body), ident) + body


def encode_ipv4_batch(packets, ident=0):
    """Encode many packets at once; checksums fold in one vectorized pass.

    Byte-identical to ``[encode_ipv4(p, ident) for p in packets]``.  The
    transport checksum — the only step that touches every payload byte —
    is computed for the whole batch by
    :func:`repro.net.checksum.internet_checksum_batch`; header packing
    and the IPv4 header cache are shared with the scalar path.  ICMP
    error packets (nested encodings) fall back to the scalar encoder.
    """
    wire_bytes = [None] * len(packets)
    staged = []  # (index, packet, header, body, csum_offset, is_udp)
    csum_inputs = []
    for i, packet in enumerate(packets):
        parts = _transport_parts(packet)
        if parts is None:
            wire_bytes[i] = encode_ipv4(packet, ident)
            continue
        csum_input, header, body, offset, is_udp = parts
        staged.append((i, packet, header, body, offset, is_udp))
        csum_inputs.append(csum_input)
    if staged:
        checksums = internet_checksum_batch(csum_inputs)
        pack_u16 = _U16.pack
        for (i, packet, header, body, offset, is_udp), checksum in zip(
                staged, checksums):
            if is_udp and checksum == 0:
                checksum = 0xFFFF  # RFC 768: zero means "no checksum"
            segment = (header[:offset] + pack_u16(checksum)
                       + header[offset + 2:] + body)
            wire_bytes[i] = _ipv4_header_for(packet, len(segment), ident) + segment
    return wire_bytes


def _transport_parts(packet):
    """Stage one packet's transport encoding for (batched) checksumming.

    Returns ``(checksum_input, header, body, checksum_offset, is_udp)``
    with a zeroed checksum field in ``header``, or ``None`` for payloads
    that need the scalar path (nested ICMP error encodings).
    """
    payload = packet.payload
    probe_id = packet.probe_id
    if isinstance(payload, IcmpEcho):
        body = _payload_filler(payload.payload_size, probe_id)
        header = _ICMP_ECHO_HEADER.pack(payload.icmp_type, 0, 0,
                                        payload.ident, payload.seq)
        return header + body, header, body, 2, False
    if isinstance(payload, UdpDatagram):
        body = _payload_filler(payload.payload_size, probe_id)
        length = 8 + len(body)
        header = _UDP_HEADER.pack(payload.src_port, payload.dst_port,
                                  length, 0)
        pseudo = pseudo_header(packet.src, packet.dst, PROTO_UDP, length)
        return pseudo + header + body, header, body, 6, True
    if isinstance(payload, TcpSegment):
        body = _payload_filler(payload.payload_size, probe_id)
        header = _TCP_HEADER.pack(
            payload.src_port,
            payload.dst_port,
            payload.seq,
            payload.ack,
            5 << 4,  # data offset 5 words, no options
            payload.flags,
            65535,  # advertised window
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        pseudo = pseudo_header(packet.src, packet.dst, PROTO_TCP,
                               len(header) + len(body))
        return pseudo + header + body, header, body, 16, False
    return None


def _encode_transport(packet):
    parts = _transport_parts(packet)
    if parts is None:
        payload = packet.payload
        if isinstance(payload, IcmpTimeExceeded):
            return _encode_icmp_time_exceeded(payload)
        raise TypeError(f"cannot encode payload {payload!r}")
    csum_input, header, body, offset, is_udp = parts
    checksum = internet_checksum(csum_input)
    if is_udp and checksum == 0:
        checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
    return header[:offset] + _U16.pack(checksum) + header[offset + 2:] + body


def _encode_icmp_time_exceeded(message):
    inner = encode_ipv4(message.original)[: IPV4_HEADER_LEN + 8]
    inner = inner.ljust(IPV4_HEADER_LEN + 8, b"\x00")
    header = _ICMP_ERROR_HEADER.pack(ICMP_TIME_EXCEEDED, 0, 0, 0)
    checksum = internet_checksum(header + inner)
    header = header[:2] + _U16.pack(checksum) + header[4:]
    return header + inner


def _decode_address(raw):
    cached = _address_cache.get(raw)
    if cached is None:
        cached = ipaddress.IPv4Address(raw)
        if len(_address_cache) < _CACHE_LIMIT:
            _address_cache[raw] = cached
    return cached


def decode_ipv4(data, allow_truncated=False):
    """Parse IPv4 bytes back into a :class:`Packet`.

    Raises :class:`ValueError` on malformed input.  The embedded probe id
    (if the payload is long enough to carry one) is restored into
    ``packet.meta['probe_id']``.  ``allow_truncated`` accepts a datagram
    cut short of its total-length field — needed for the header+8-bytes
    excerpt inside ICMP error messages.
    """
    if len(data) < IPV4_HEADER_LEN:
        raise ValueError("truncated IPv4 header")
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        raise ValueError(f"not IPv4 (version={version_ihl >> 4})")
    ihl = (version_ihl & 0x0F) * 4
    total_length = _U16.unpack_from(data, 2)[0]
    if total_length > len(data):
        if not allow_truncated:
            raise ValueError("IPv4 total length exceeds buffer")
        total_length = len(data)
    ttl = data[8]
    protocol = data[9]
    src = _decode_address(data[12:16])
    dst = _decode_address(data[16:20])
    body = data[ihl:total_length]
    payload, probe_id = _decode_transport(protocol, body)
    packet = Packet(src, dst, payload, ttl=ttl)
    if probe_id is not None:
        packet.meta["probe_id"] = probe_id
    return packet


def _decode_transport(protocol, body):
    if protocol == PROTO_ICMP:
        return _decode_icmp(body)
    if protocol == PROTO_UDP:
        return _decode_udp(body)
    if protocol == PROTO_TCP:
        return _decode_tcp(body)
    raise ValueError(f"unsupported protocol {protocol}")


_FILLER_TAG = int.from_bytes(_FILLER * 8, "big")


def _extract_probe_id(body):
    if len(body) >= 8:
        tag = _U64.unpack_from(body, 0)[0]
        # Filler-only payloads decode to the repeated filler pattern.
        if tag != _FILLER_TAG:
            return tag
    return None


def _decode_icmp(body):
    if len(body) < 8:
        raise ValueError("truncated ICMP header")
    icmp_type = body[0]
    if icmp_type in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
        ident, seq = _U16_PAIR.unpack_from(body, 4)
        payload = body[8:]
        echo = IcmpEcho(icmp_type, ident, seq, payload_size=len(payload))
        return echo, _extract_probe_id(payload)
    if icmp_type == ICMP_TIME_EXCEEDED:
        inner = decode_ipv4(body[8:], allow_truncated=True)
        return IcmpTimeExceeded(inner), inner.probe_id
    raise ValueError(f"unsupported ICMP type {icmp_type}")


def _decode_udp(body):
    if len(body) < 8:
        raise ValueError("truncated UDP header")
    src_port, dst_port, length = _UDP_PORTS_LEN.unpack_from(body, 0)
    payload = body[8:length]
    datagram = UdpDatagram(src_port, dst_port, payload_size=len(payload))
    return datagram, _extract_probe_id(payload)


def _decode_tcp(body):
    if len(body) < 20:
        raise ValueError("truncated TCP header")
    src_port, dst_port, seq, ack = _TCP_PORTS_SEQ_ACK.unpack_from(body, 0)
    offset = (body[12] >> 4) * 4
    flags = body[13]
    payload = body[offset:]
    segment = TcpSegment(src_port, dst_port, seq, ack, flags, payload_size=len(payload))
    return segment, _extract_probe_id(payload)
