"""Egress queues.

Every transmitting interface owns a :class:`DropTailQueue`.  The queue is
where congestion becomes delay: when iPerf cross-traffic saturates the
WiFi channel (paper §4.3), probe frames wait here and the measured RTT
CDF shifts right.
"""

from collections import deque


class QueueStats:
    """Counters exposed by a queue for tests and reports."""

    __slots__ = ("enqueued", "dequeued", "dropped", "bytes_enqueued", "bytes_dropped")

    def __init__(self):
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0

    def __repr__(self):
        return (
            f"QueueStats(enqueued={self.enqueued}, dequeued={self.dequeued}, "
            f"dropped={self.dropped})"
        )


class DropTailQueue:
    """A FIFO with packet-count and byte limits.

    Items must expose a ``wire_size`` attribute (packets and frames both
    do).  Arrivals beyond either limit are dropped at the tail.
    """

    def __init__(self, packet_limit=1000, byte_limit=None):
        if packet_limit is not None and packet_limit < 1:
            raise ValueError("packet_limit must be >= 1 or None")
        self.packet_limit = packet_limit
        self.byte_limit = byte_limit
        self._items = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self):
        return len(self._items)

    @property
    def bytes_queued(self):
        return self._bytes

    @property
    def is_empty(self):
        return not self._items

    def would_drop(self, item):
        """Whether enqueueing ``item`` now would overflow a limit."""
        if self.packet_limit is not None and len(self._items) >= self.packet_limit:
            return True
        if (
            self.byte_limit is not None
            and self._bytes + item.wire_size > self.byte_limit
        ):
            return True
        return False

    def enqueue(self, item):
        """Append ``item``; returns ``False`` (and counts a drop) on overflow."""
        if self.would_drop(item):
            self.stats.dropped += 1
            self.stats.bytes_dropped += item.wire_size
            return False
        self._items.append(item)
        self._bytes += item.wire_size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += item.wire_size
        return True

    def dequeue(self):
        """Pop the head item, or ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._bytes -= item.wire_size
        self.stats.dequeued += 1
        return item

    def peek(self):
        """Head item without removing it, or ``None``."""
        return self._items[0] if self._items else None

    def clear(self):
        """Drop everything currently queued (not counted as tail drops)."""
        self._items.clear()
        self._bytes = 0
