"""802.11 frame types and their wire encodings.

Data frames encapsulate one IP packet behind an LLC/SNAP header, exactly
as on a real WLAN; sniffers can therefore write linktype-105 pcap files
that any off-the-shelf tooling could parse.  Beacons carry the beacon
interval and a TIM bitmap (which association IDs have buffered frames) —
the mechanism through which power-save mode turns into the >100 ms nRTT
inflation the paper measures.
"""

import struct

from repro.net import wire as ip_wire
from repro.net.addresses import MacAddress

MAC_HEADER_LEN = 24
FCS_LEN = 4
LLC_SNAP_LEN = 8
NULL_FRAME_SIZE = MAC_HEADER_LEN + FCS_LEN
ACK_FRAME_SIZE = 10 + FCS_LEN

# Frame control (type, subtype) pairs.
TYPE_MGMT = 0
TYPE_CTRL = 1
TYPE_DATA = 2
SUBTYPE_BEACON = 8
SUBTYPE_ACK = 13
SUBTYPE_DATA = 0
SUBTYPE_NULL = 4


class WifiFrame:
    """Base class: addressing plus power-management signalling bits."""

    __slots__ = ("dst_mac", "src_mac", "pm", "more_data", "seq")

    frame_type = TYPE_DATA
    subtype = SUBTYPE_DATA

    def __init__(self, dst_mac, src_mac, pm=False, more_data=False, seq=0):
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self.pm = pm
        self.more_data = more_data
        self.seq = seq

    @property
    def is_broadcast(self):
        return self.dst_mac.is_broadcast

    @property
    def needs_ack(self):
        return not self.is_broadcast

    @property
    def wire_size(self):
        raise NotImplementedError

    def _frame_control(self, to_ds=False, from_ds=False):
        b0 = (self.subtype << 4) | (self.frame_type << 2)
        b1 = (0x01 if to_ds else 0) | (0x02 if from_ds else 0)
        if self.pm:
            b1 |= 0x10
        if self.more_data:
            b1 |= 0x20
        return bytes([b0, b1])

    def _mac_header(self, addr3, to_ds=False, from_ds=False):
        return (
            self._frame_control(to_ds, from_ds)
            + struct.pack("<H", 0)  # duration
            + self.dst_mac.to_bytes()
            + self.src_mac.to_bytes()
            + addr3.to_bytes()
            + struct.pack("<H", (self.seq & 0xFFF) << 4)
        )


class DataFrame(WifiFrame):
    """A unicast data frame carrying one IP packet."""

    __slots__ = ("packet", "to_ds", "from_ds", "bssid")

    frame_type = TYPE_DATA
    subtype = SUBTYPE_DATA

    def __init__(self, dst_mac, src_mac, packet, bssid=None, to_ds=False,
                 from_ds=False, pm=False, more_data=False, seq=0):
        super().__init__(dst_mac, src_mac, pm=pm, more_data=more_data, seq=seq)
        self.packet = packet
        self.to_ds = to_ds
        self.from_ds = from_ds
        self.bssid = bssid if bssid is not None else src_mac

    @property
    def wire_size(self):
        return MAC_HEADER_LEN + LLC_SNAP_LEN + self.packet.wire_size + FCS_LEN

    def encode(self):
        """Full 802.11 data frame bytes (header + LLC/SNAP + IP + FCS)."""
        header = self._mac_header(self.bssid, to_ds=self.to_ds, from_ds=self.from_ds)
        llc_snap = b"\xaa\xaa\x03\x00\x00\x00\x08\x00"  # SNAP, ethertype IPv4
        body = ip_wire.encode_ipv4(self.packet)
        return header + llc_snap + body + b"\x00" * FCS_LEN

    def __repr__(self):
        flags = "".join(
            flag for flag, on in (("P", self.pm), ("M", self.more_data)) if on
        )
        return f"DataFrame({self.src_mac}->{self.dst_mac} {flags} {self.packet!r})"


class NullDataFrame(WifiFrame):
    """A null-function frame, used purely to signal the PM bit.

    Adaptive-PSM stations announce "going to sleep" with PM=1 and
    "awake again / fetch my buffered frames" with PM=0 (paper §3.2.2,
    §4.1).
    """

    frame_type = TYPE_DATA
    subtype = SUBTYPE_NULL

    @property
    def wire_size(self):
        return NULL_FRAME_SIZE

    def encode(self):
        header = self._mac_header(self.dst_mac, to_ds=True)
        return header + b"\x00" * FCS_LEN

    def __repr__(self):
        return f"NullDataFrame({self.src_mac}->{self.dst_mac} pm={int(self.pm)})"


class BeaconFrame(WifiFrame):
    """A beacon: timing reference plus the TIM of buffered stations."""

    __slots__ = ("bssid", "beacon_interval_tu", "tim_aids", "ssid", "timestamp")

    frame_type = TYPE_MGMT
    subtype = SUBTYPE_BEACON

    def __init__(self, src_mac, beacon_interval_tu, tim_aids=(), ssid="testbed",
                 timestamp=0.0, seq=0):
        super().__init__(MacAddress.broadcast(), src_mac, seq=seq)
        self.bssid = src_mac
        self.beacon_interval_tu = beacon_interval_tu
        self.tim_aids = frozenset(tim_aids)
        self.ssid = ssid
        self.timestamp = timestamp

    @property
    def wire_size(self):
        # header + fixed fields (12) + SSID IE + rates IE (10) + TIM IE
        # (2-byte IE header + count/period/control + bitmap).
        tim_len = 5 + max(1, (max(self.tim_aids) // 8 + 1) if self.tim_aids else 1)
        return MAC_HEADER_LEN + 12 + (2 + len(self.ssid)) + 10 + tim_len + FCS_LEN

    def encode(self):
        header = self._mac_header(self.bssid)
        fixed = struct.pack(
            "<QHH",
            int(self.timestamp * 1e6) & 0xFFFFFFFFFFFFFFFF,
            self.beacon_interval_tu,
            0x0401,  # capabilities: ESS, short slot
        )
        ssid_bytes = self.ssid.encode("ascii", "replace")
        ssid_ie = bytes([0, len(ssid_bytes)]) + ssid_bytes
        rates_ie = bytes([1, 8, 0x82, 0x84, 0x8B, 0x96, 0x24, 0x30, 0x48, 0x6C])
        bitmap = bytearray(max(1, (max(self.tim_aids) // 8 + 1) if self.tim_aids else 1))
        for aid in self.tim_aids:
            bitmap[aid // 8] |= 1 << (aid % 8)
        tim_ie = bytes([5, 3 + len(bitmap), 0, 1, 0]) + bytes(bitmap)
        return header + fixed + ssid_ie + rates_ie + tim_ie + b"\x00" * FCS_LEN

    def __repr__(self):
        return (
            f"BeaconFrame(interval={self.beacon_interval_tu}TU "
            f"tim={sorted(self.tim_aids)})"
        )


class PsPollFrame(WifiFrame):
    """A PS-Poll control frame.

    Used by *static* power-save stations (legacy PSM): after seeing its
    AID in a beacon TIM, the station polls the AP for exactly one
    buffered frame per PS-Poll.  Adaptive-PSM phones (every phone in the
    paper's Table 4) wake with a PM=0 null instead.
    """

    SUBTYPE_PS_POLL = 10

    __slots__ = ("aid",)

    frame_type = TYPE_CTRL
    subtype = SUBTYPE_PS_POLL

    def __init__(self, dst_mac, src_mac, aid):
        super().__init__(dst_mac, src_mac)
        self.aid = aid

    @property
    def wire_size(self):
        return 16 + FCS_LEN  # fc + AID + BSSID + TA + FCS

    def encode(self):
        b0 = (self.subtype << 4) | (self.frame_type << 2)
        return (
            bytes([b0, 0])
            + struct.pack("<H", self.aid | 0xC000)
            + self.dst_mac.to_bytes()
            + self.src_mac.to_bytes()
            + b"\x00" * FCS_LEN
        )

    def __repr__(self):
        return f"PsPollFrame(aid={self.aid} ->{self.dst_mac})"


class AckFrame(WifiFrame):
    """An 802.11 ACK (modelled implicitly by the channel; encodable for pcap)."""

    frame_type = TYPE_CTRL
    subtype = SUBTYPE_ACK

    def __init__(self, dst_mac, src_mac):
        super().__init__(dst_mac, src_mac)

    @property
    def needs_ack(self):
        return False

    @property
    def wire_size(self):
        return ACK_FRAME_SIZE

    def encode(self):
        b0 = (self.subtype << 4) | (self.frame_type << 2)
        return bytes([b0, 0]) + struct.pack("<H", 0) + self.dst_mac.to_bytes() + b"\x00" * FCS_LEN

    def __repr__(self):
        return f"AckFrame(->{self.dst_mac})"


def decode_data_frame(data):
    """Parse an encoded 802.11 data frame back to ``(header_info, Packet)``.

    Used by the pcap-based analysis path.  Returns ``None`` for non-data
    frames (beacons, nulls, acks) which carry no IP payload.
    """
    if len(data) < MAC_HEADER_LEN:
        raise ValueError("truncated 802.11 header")
    subtype = data[0] >> 4
    frame_type = (data[0] >> 2) & 0x3
    if frame_type != TYPE_DATA or subtype != SUBTYPE_DATA:
        return None
    flags = data[1]
    info = {
        "to_ds": bool(flags & 0x01),
        "from_ds": bool(flags & 0x02),
        "pm": bool(flags & 0x10),
        "more_data": bool(flags & 0x20),
        "dst_mac": MacAddress(data[4:10]),
        "src_mac": MacAddress(data[10:16]),
    }
    body = data[MAC_HEADER_LEN + LLC_SNAP_LEN : -FCS_LEN]
    packet = ip_wire.decode_ipv4(body)
    return info, packet
