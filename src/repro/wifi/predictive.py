"""EAPS-style predictive sleep: wake when the next downlink is due.

Edge-assisted predictive sleep turns the paper's reactive adaptive PSM
inside out: instead of dozing until a TIM beacon says traffic waits,
the station *predicts* the next downlink arrival from the observed
inter-arrival process (an EWMA here), dozes, and wakes ``guard``
seconds before the predicted time — announcing itself with a PM=0 null
so the AP flushes immediately, no beacon wait at all when the
prediction lands.

Two safety rails keep a bad predictor from starving traffic:

* the **fallback timeout** caps every doze: the station never sleeps
  past ``doze_start + fallback_timeout`` no matter what the predictor
  says — the invariant the property suite pins, and the delay bound of
  :func:`repro.analysis.analytic.predictive_wake_bound`;
* a **mispredict penalty path**: a wake whose listen window sees no
  downlink counts as a mispredict, widens the predicted interval by
  ``penalty_backoff``, and re-dozes — so a misfiring predictor decays
  toward the fallback cadence instead of burning the radio.

Every doze cycle is appended to :attr:`PredictiveSleepStation.wake_log`
(doze start, predicted arrival, wake time, deadline) for the harness.
"""

import math

from repro.obs.names import (
    PREDICTIVE_MISPREDICTS_TOTAL,
    PREDICTIVE_WAKES_TOTAL,
    SPAN_PREDICTIVE_LISTEN,
)
from repro.sim.timers import Timer
from repro.sim.units import tu
from repro.wifi.frames import DataFrame, NullDataFrame
from repro.wifi.sta import PowerState, Station


class PredictiveSleepConfig:
    """Predictor and safety-rail parameters.

    ``ewma_alpha`` weights the newest inter-arrival sample;
    ``initial_interval`` seeds the predictor before any downlink is
    seen; ``listen_window`` is how long a wake waits for the predicted
    frame before declaring a mispredict.
    """

    def __init__(self, ewma_alpha=0.3, guard=5e-3, fallback_timeout=0.4,
                 listen_window=0.02, initial_interval=0.2,
                 penalty_backoff=1.5):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if guard < 0:
            raise ValueError("guard must be >= 0")
        if fallback_timeout <= 0:
            raise ValueError("fallback_timeout must be positive")
        if listen_window <= 0:
            raise ValueError("listen_window must be positive")
        if initial_interval <= 0:
            raise ValueError("initial_interval must be positive")
        if penalty_backoff < 1.0:
            raise ValueError("penalty_backoff must be >= 1")
        self.ewma_alpha = ewma_alpha
        self.guard = guard
        self.fallback_timeout = fallback_timeout
        self.listen_window = listen_window
        self.initial_interval = initial_interval
        self.penalty_backoff = penalty_backoff


class PredictiveWake:
    """One doze cycle of :attr:`PredictiveSleepStation.wake_log`.

    ``wake_at <= deadline`` always — the fallback-cap invariant.
    """

    __slots__ = ("doze_start", "predicted", "wake_at", "deadline",
                 "reason")

    def __init__(self, doze_start, predicted, wake_at, deadline, reason):
        self.doze_start = doze_start
        self.predicted = predicted
        self.wake_at = wake_at
        self.deadline = deadline
        self.reason = reason

    def __repr__(self):
        return (f"<PredictiveWake doze={self.doze_start:.3f} "
                f"wake={self.wake_at:.3f} ({self.reason})>")


class PredictiveSleepStation(Station):
    """A station that wakes on predicted downlink arrivals."""

    def __init__(self, sim, channel, mac, psm=None, rng=None,
                 predictor=None, name="pred-sta"):
        super().__init__(sim, channel, mac, psm=psm, rng=rng, name=name)
        self.predictor = (predictor if predictor is not None
                          else PredictiveSleepConfig())
        self.wake_log = []
        self.mispredict_count = 0
        self.predicted_interval = self.predictor.initial_interval
        self._last_downlink = None
        self._wake_timer = Timer(sim, self._predictive_wake_due,
                                 label=f"pred-wake:{name}")
        self._wake_reason = None
        self._listen_started = None
        self._downlink_since_wake = False

    # -- the predictor ----------------------------------------------------

    def frame_delivered(self, frame):
        if isinstance(frame, DataFrame) and frame.dst_mac == self.mac:
            now = self.sim.now
            if self._last_downlink is not None:
                gap = now - self._last_downlink
                alpha = self.predictor.ewma_alpha
                # Floor keeps the predictor away from a zero interval
                # (back-to-back deliveries at one sim instant).
                self.predicted_interval = max(
                    1e-4,
                    alpha * gap + (1.0 - alpha) * self.predicted_interval)
            self._last_downlink = now
            self._downlink_since_wake = True
        super().frame_delivered(frame)

    # -- overrides: prediction replaces the TBTT chase --------------------

    def _arm_psm_timer(self):
        """A short listen window plays the role of ``Tip``: once the
        predicted frame (or its burst) has passed, go back to sleep."""
        if not (self.psm.enabled and self.associated):
            return
        self._psm_timer.restart(self.predictor.listen_window)

    def _schedule_beacon_listen(self):
        """Entering doze: wake at the predicted arrival, capped by the
        fallback timeout — never later."""
        self._beacon_wait_start = self.sim.now
        self._finish_listen_span()
        doze_start = self.sim.now
        cfg = self.predictor
        anchor = (self._last_downlink if self._last_downlink is not None
                  else doze_start)
        predicted = anchor + self.predicted_interval
        if predicted <= doze_start:
            steps = math.floor((doze_start - anchor)
                               / self.predicted_interval) + 1
            predicted = anchor + steps * self.predicted_interval
        deadline = doze_start + cfg.fallback_timeout
        wake_at = min(predicted - cfg.guard, deadline)
        wake_at = max(wake_at, doze_start)
        reason = "predicted" if wake_at < deadline else "fallback"
        self.wake_log.append(PredictiveWake(doze_start, predicted,
                                            wake_at, deadline, reason))
        self._wake_reason = reason
        self._wake_timer.restart(wake_at - doze_start)

    def _cancel_beacon_listen(self):
        super()._cancel_beacon_listen()
        self._wake_timer.cancel()

    def _predictive_wake_due(self):
        if self.power_state != PowerState.DOZE:
            return
        reason = self._wake_reason or "fallback"
        sim = self.sim
        if sim.metrics.enabled:
            sim.metrics.inc(PREDICTIVE_WAKES_TOTAL,
                            labels={"sta": self.name, "reason": reason})
        self._listen_started = sim.now
        self._downlink_since_wake = False
        self._wake(reason)
        # Announce the wake: PM=0 flushes whatever the AP buffered.
        self.null_frames_sent += 1
        self.enqueue_frame(NullDataFrame(self.ap.mac, self.mac, pm=False))

    def _enter_doze(self):
        if self.power_state != PowerState.DOZE \
                and self._listen_started is not None \
                and not self._downlink_since_wake:
            # The predicted frame never came: penalty path.
            self.mispredict_count += 1
            if self.sim.metrics.enabled:
                self.sim.metrics.inc(PREDICTIVE_MISPREDICTS_TOTAL,
                                     labels={"sta": self.name})
            self.predicted_interval *= self.predictor.penalty_backoff
        super()._enter_doze()

    def _finish_listen_span(self):
        if self._listen_started is not None:
            if self.sim.spans.enabled:
                self.sim.spans.record(
                    SPAN_PREDICTIVE_LISTEN, self._listen_started,
                    self.sim.now, sta=self.name,
                    hit=self._downlink_since_wake)
            self._listen_started = None

    def _handle_beacon(self, beacon):
        # Beacons only update the interval bookkeeping; the TIM is
        # ignored — the predictor decides when to fetch.
        self._beacon_interval = tu(beacon.beacon_interval_tu)

    def __repr__(self):
        return (f"<PredictiveSleepStation {self.name} {self.power_state} "
                f"pred={self.predicted_interval * 1e3:.0f}ms>")
