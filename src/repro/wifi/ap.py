"""The access point.

Combines three roles from the testbed's NETGEAR WNDR3800:

* **802.11 MAC**: beacon generation every ``beacon_interval_tu`` Time
  Units (100 TU = 102.4 ms in the paper), association state, and
  per-station **power-save buffering** — downlink frames for a dozing
  station wait here and are advertised through the beacon TIM.
* **First-hop router**: an embedded :class:`repro.net.router.Router`
  forwards between the WLAN and the wired segment, decrements TTL, and
  returns ICMP time-exceeded for AcuteMon's TTL=1 warm-up packets.
* **Gateway control plane**: the router's stack answers pings to the
  gateway address.
"""

from repro.net.router import RouterPort
from repro.obs.names import (
    AP_PS_BUFFER_DROPS_TOTAL,
    AP_PS_FRAMES_BUFFERED_TOTAL,
    SPAN_PSM_BUFFERED,
)
from repro.sim.units import tu
from repro.wifi.channel import Radio
from repro.wifi.frames import BeaconFrame, DataFrame, NullDataFrame, PsPollFrame


class _ApRadio(Radio):
    """The AP's radio; defers frame handling to the owning AP."""

    def __init__(self, sim, channel, mac, ap, name):
        super().__init__(sim, channel, mac, name=name)
        self._ap = ap

    def frame_delivered(self, frame):
        super().frame_delivered(frame)
        self._ap.handle_wireless_frame(frame)

    def frame_dropped(self, frame):
        self._ap.handle_tx_failure(frame)


class StationRecord:
    """The AP's per-station association state."""

    __slots__ = ("station", "aid", "listen_interval", "asleep", "buffer",
                 "buffered_drops")

    def __init__(self, station, aid, listen_interval):
        self.station = station
        self.aid = aid
        self.listen_interval = listen_interval
        self.asleep = False
        self.buffer = []
        self.buffered_drops = 0


class AccessPoint:
    """An infrastructure-mode 802.11 AP with an embedded router."""

    #: Per-station power-save buffer depth (frames).
    PS_BUFFER_LIMIT = 64

    def __init__(self, sim, channel, mac, wlan_ip, wlan_network,
                 beacon_interval_tu=100, ssid="testbed", name="ap", rng=None,
                 send_time_exceeded=True):
        from repro.net.router import Router

        self.sim = sim
        self.name = name
        self.ssid = ssid
        self.beacon_interval_tu = beacon_interval_tu
        self.radio = _ApRadio(sim, channel, mac, self, name=f"{name}.radio")
        self.router = Router(sim, name=f"{name}.router", rng=rng,
                             send_time_exceeded=send_time_exceeded)
        self.wlan_ip = wlan_ip
        self._stations = {}  # mac -> StationRecord
        self._ip_to_mac = {}  # WLAN-side IP resolution
        self._next_aid = 1
        self._beacon_seq = 0
        self.beacons_sent = 0
        self.frames_buffered = 0
        self._buffered_at = {}  # id(frame) -> buffer-entry time (spans)
        self._tx_seq = 0
        self.wlan_port = RouterPort(
            "wlan", wlan_ip, wlan_network, transmit=self._wireless_transmit
        )
        self.router.add_port(self.wlan_port)
        # Beacon generation is a scheduler-native periodic train: one
        # armed event for the whole run, batched on the fast path.
        self._beacon_train = sim.schedule_periodic(
            tu(beacon_interval_tu), self._beacon_tick,
            label=f"beacon:{name}",
        )

    @property
    def mac(self):
        return self.radio.mac

    # -- wired side ----------------------------------------------------------

    def add_wired_port(self, name, ip_addr, network, arp_table, link=None):
        """Attach the AP's Ethernet uplink."""
        return self.router.add_ethernet_port(name, ip_addr, network,
                                             arp_table, link=link)

    # -- association -----------------------------------------------------------

    def associate(self, station, listen_interval):
        """Register a station; returns its association ID."""
        if station.mac in self._stations:
            return self._stations[station.mac].aid
        aid = self._next_aid
        self._next_aid += 1
        self._stations[station.mac] = StationRecord(station, aid, listen_interval)
        return aid

    def register_station_ip(self, ip_addr, mac):
        """Install WLAN-side IP-to-MAC resolution for a station."""
        if mac not in self._stations:
            raise ValueError(f"{mac} is not associated")
        self._ip_to_mac[ip_addr] = mac

    def station_record(self, mac):
        return self._stations[mac]

    # -- beaconing ---------------------------------------------------------------

    def _beacon_tick(self):
        tim = frozenset(
            record.aid for record in self._stations.values() if record.buffer
        )
        self._beacon_seq = (self._beacon_seq + 1) & 0xFFF
        beacon = BeaconFrame(
            self.radio.mac, self.beacon_interval_tu, tim_aids=tim,
            ssid=self.ssid, timestamp=self.sim.now, seq=self._beacon_seq,
        )
        self.beacons_sent += 1
        self.radio.enqueue_frame(beacon, priority=True)

    # -- downlink ---------------------------------------------------------------

    def _wireless_transmit(self, packet, next_hop):
        mac = self._ip_to_mac.get(next_hop)
        if mac is None:
            return  # unresolvable station: drop (mirrors a real AP)
        record = self._stations.get(mac)
        if record is None:
            return
        self._tx_seq = (self._tx_seq + 1) & 0xFFF
        frame = DataFrame(
            mac, self.radio.mac, packet, bssid=self.radio.mac,
            from_ds=True, seq=self._tx_seq,
        )
        if record.asleep:
            self._buffer_frame(record, frame)
        else:
            self.radio.enqueue_frame(frame)

    def _buffer_frame(self, record, frame):
        sim = self.sim
        if len(record.buffer) >= self.PS_BUFFER_LIMIT:
            record.buffered_drops += 1
            if sim.metrics.enabled:
                sim.metrics.inc(AP_PS_BUFFER_DROPS_TOTAL,
                                labels={"ap": self.name})
            return
        self.frames_buffered += 1
        record.buffer.append(frame)
        if sim.metrics.enabled:
            sim.metrics.inc(AP_PS_FRAMES_BUFFERED_TOTAL,
                            labels={"ap": self.name})
        if sim.spans.enabled:
            self._buffered_at[id(frame)] = sim.now
        if sim.trace.enabled:
            sim.trace.record(sim.now, "psm", "frame buffered",
                             ap=self.name, aid=record.aid,
                             depth=len(record.buffer))

    def _release_buffered(self, record, frame):
        """Span bookkeeping for one frame leaving the PS buffer."""
        start = self._buffered_at.pop(id(frame), None)
        if start is not None and self.sim.spans.enabled:
            self.sim.spans.record(SPAN_PSM_BUFFERED, start, self.sim.now,
                                  ap=self.name, aid=record.aid)

    def _flush_buffer(self, record):
        if not record.buffer:
            return
        frames = record.buffer
        record.buffer = []
        for index, frame in enumerate(frames):
            frame.more_data = index < len(frames) - 1
            self._release_buffered(record, frame)
            self.radio.enqueue_frame(frame)

    # -- uplink ---------------------------------------------------------------------

    def handle_wireless_frame(self, frame):
        """Process a frame arriving on the radio."""
        record = self._stations.get(frame.src_mac)
        if record is not None:
            self._update_power_state(record, frame)
            if isinstance(frame, PsPollFrame):
                self._serve_ps_poll(record)
        if isinstance(frame, DataFrame) and frame.dst_mac == self.radio.mac:
            self.router.route_packet(frame.packet, ingress=self.wlan_port)

    def handle_tx_failure(self, frame):
        """A downlink frame exhausted its retries (station went deaf).

        Real APs fall back to power-save buffering here: mark the
        station asleep and re-buffer the frame for TIM delivery.
        """
        if not isinstance(frame, DataFrame):
            return
        record = self._stations.get(frame.dst_mac)
        if record is None:
            return
        record.asleep = True
        self._buffer_frame(record, frame)

    def _serve_ps_poll(self, record):
        """Release exactly one buffered frame (static/legacy PSM)."""
        if not record.buffer:
            return
        frame = record.buffer.pop(0)
        frame.more_data = bool(record.buffer)
        self._release_buffered(record, frame)
        self.radio.enqueue_frame(frame)

    def _update_power_state(self, record, frame):
        if isinstance(frame, (DataFrame, NullDataFrame)):
            was_asleep = record.asleep
            record.asleep = frame.pm
            if was_asleep and not record.asleep:
                self._flush_buffer(record)

    def __repr__(self):
        return f"<AccessPoint {self.name} stations={len(self._stations)}>"
