"""802.11g PHY/MAC timing parameters and airtime arithmetic.

The testbed AP (NETGEAR WNDR3800) ran 802.11g; these constants are the
ERP-OFDM values.  Airtime math drives both the congestion behaviour under
iPerf cross-traffic (paper §4.3 observes a ~10 Mbps UDP ceiling under
contention) and the fine-grained delay each probe spends on the air.
"""

from repro.sim.units import bytes_to_bits, mbps


class PhyParams:
    """Timing parameters for one 802.11 PHY flavour (defaults: 802.11g)."""

    def __init__(
        self,
        slot_time=9e-6,
        sifs=10e-6,
        preamble=20e-6,
        signal_extension=6e-6,
        cw_min=15,
        cw_max=1023,
        retry_limit=7,
        data_rate_bps=mbps(54),
        basic_rate_bps=mbps(24),
        beacon_rate_bps=mbps(6),
        ack_size=14,
        protection_time=0.0,
    ):
        self.slot_time = slot_time
        self.sifs = sifs
        self.preamble = preamble
        self.signal_extension = signal_extension
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.retry_limit = retry_limit
        self.data_rate_bps = data_rate_bps
        self.basic_rate_bps = basic_rate_bps
        self.beacon_rate_bps = beacon_rate_bps
        self.ack_size = ack_size
        #: ERP protection (CTS-to-self at a DSSS rate + SIFS) prepended to
        #: every data frame in b/g-compatibility mode.  Real 802.11g WLANs
        #: run protected — it is why their practical UDP throughput sits
        #: well below the 54 Mbps PHY rate (the paper cites < 20 Mbps and
        #: measured ~10 Mbps under contention).
        self.protection_time = protection_time

    @property
    def difs(self):
        """DIFS = SIFS + 2 slots."""
        return self.sifs + 2 * self.slot_time

    def airtime(self, wire_size, rate_bps):
        """Seconds one frame of ``wire_size`` bytes occupies the medium."""
        return (
            self.preamble
            + bytes_to_bits(wire_size) / rate_bps
            + self.signal_extension
        )

    def ack_time(self):
        """Airtime of an ACK at the basic rate."""
        return self.airtime(self.ack_size, self.basic_rate_bps)

    def contention_window(self, retries):
        """CW after ``retries`` failed attempts (binary exponential backoff)."""
        cw = (self.cw_min + 1) * (2 ** retries) - 1
        return min(cw, self.cw_max)

    def data_exchange_time(self, wire_size, rate_bps):
        """Busy time for one acked unicast: DATA + SIFS + ACK."""
        return self.airtime(wire_size, rate_bps) + self.sifs + self.ack_time()

    def __repr__(self):
        return (
            f"<PhyParams slot={self.slot_time * 1e6:.0f}us "
            f"rate={self.data_rate_bps / 1e6:.0f}Mbps>"
        )
