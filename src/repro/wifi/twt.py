"""Target Wake Time (TWT) station: scheduled wakes with clock drift.

An 802.11ax-flavoured alternative to the paper's adaptive PSM: instead
of chasing TIM beacons, the station negotiates a service-period (SP)
schedule at association — wake every ``sp_interval`` seconds, stay
awake ``sp_duration`` — and sleeps through everything in between.  The
AP needs no TWT awareness: the station announces each wake with a
PM=0 null frame (flushing anything buffered for it) and re-announces
sleep with PM=1, exactly the adaptive-PSM signalling of
:class:`~repro.wifi.sta.Station`.

The interesting part is the clock.  The station schedules wakes on its
*local* oscillator, which runs at ``(1 + drift_rate)`` times true rate;
between resyncs the wake error grows linearly, ``drift_rate *
(t - last_resync)`` (Bankov et al.'s model, mirrored in
:func:`repro.analysis.analytic.twt_drift_bound`).  The machine:

* wakes ``guard`` seconds early so bounded error still lands inside
  the window,
* proactively resyncs on a beacon once the projected error exceeds
  ``resync_fraction * guard`` — a one-beacon listen, not a full wake,
* declares the SP **missed** when the error would exceed the guard
  anyway (drift too hot for the schedule) and recovers by waking on the
  next beacon, resyncing, and serving a recovery SP there.

Every scheduled wake is appended to :attr:`TwtStation.wake_log` with
its planned time, actual time, signed error, and the resync age the
error derives from — the raw material of the theory-vs-simulation
harness (``tests/test_analytic_validation.py``).
"""

from repro.obs.names import (
    SPAN_TWT_SERVICE_PERIOD,
    TWT_MISSED_SPS_TOTAL,
    TWT_RESYNCS_TOTAL,
    TWT_WAKES_TOTAL,
)
from repro.sim.timers import Timer
from repro.sim.units import tu
from repro.wifi.frames import NullDataFrame
from repro.wifi.sta import PowerState, Station


class TwtConfig:
    """One TWT agreement: schedule, guard, and clock-drift personality.

    ``drift_rate`` is the local clock's fractional frequency error
    (20 ppm = ``20e-6``; sign is the direction the clock runs fast or
    slow).  ``guard`` is how early the station opens its wake window;
    ``resync_fraction`` is the share of the guard the projected error
    may consume before the station schedules a beacon resync.
    """

    def __init__(self, sp_interval=0.5, sp_duration=0.02, guard=2e-3,
                 drift_rate=20e-6, resync_fraction=0.5):
        if sp_interval <= 0:
            raise ValueError("sp_interval must be positive")
        if sp_duration <= 0 or sp_duration >= sp_interval:
            raise ValueError("sp_duration must be in (0, sp_interval)")
        if guard <= 0:
            raise ValueError("guard must be positive")
        if not 0.0 < resync_fraction <= 1.0:
            raise ValueError("resync_fraction must be in (0, 1]")
        self.sp_interval = sp_interval
        self.sp_duration = sp_duration
        self.guard = guard
        self.drift_rate = drift_rate
        self.resync_fraction = resync_fraction


class TwtWake:
    """One entry of :attr:`TwtStation.wake_log`.

    ``error == drift_rate * resync_age`` exactly; ``actual`` is
    ``None`` for missed service periods (recovered on a beacon).
    """

    __slots__ = ("sp_index", "planned", "actual", "error", "resync_age",
                 "missed")

    def __init__(self, sp_index, planned, actual, error, resync_age,
                 missed):
        self.sp_index = sp_index
        self.planned = planned
        self.actual = actual
        self.error = error
        self.resync_age = resync_age
        self.missed = missed

    def __repr__(self):
        flag = " missed" if self.missed else ""
        return (f"<TwtWake sp={self.sp_index} planned={self.planned:.6f} "
                f"err={self.error * 1e6:+.1f}us{flag}>")


class TwtStation(Station):
    """A station sleeping on a TWT schedule instead of chasing TIMs."""

    def __init__(self, sim, channel, mac, psm=None, rng=None, twt=None,
                 name="twt-sta"):
        super().__init__(sim, channel, mac, psm=psm, rng=rng, name=name)
        self.twt = twt if twt is not None else TwtConfig()
        self.wake_log = []
        self.resync_count = 0
        self.missed_sp_count = 0
        self._twt_anchor = None  # true time of SP index 0
        self._last_resync = None  # true time the local clock last synced
        self._sp_wake_timer = Timer(sim, self._twt_wake_due,
                                    label=f"twt-wake:{name}")
        self._resync_timer = Timer(sim, self._begin_beacon_listen,
                                   label=f"twt-resync:{name}")
        self._pending_sp = None  # sp index awaiting a resync beacon
        self._recovering = False
        self._sp_started = None

    def associate(self, ap):
        aid = super().associate(ap)
        # The agreement anchors at association; the clock starts fresh.
        self._twt_anchor = self.sim.now
        self._last_resync = self.sim.now
        return aid

    # -- schedule arithmetic ----------------------------------------------

    def _clock_error(self, when):
        """Signed local-clock error at true time ``when``."""
        return self.twt.drift_rate * (when - self._last_resync)

    def _next_sp_index(self):
        interval = self.twt.sp_interval
        index = int((self.sim.now - self._twt_anchor) / interval) + 1
        while self._twt_anchor + index * interval - self.twt.guard \
                <= self.sim.now:
            index += 1
        return index

    def _next_tbtt(self):
        interval = self._beacon_interval
        return (int(self.sim.now / interval) + 1) * interval

    # -- overrides: TWT replaces the TBTT chase ---------------------------

    def _arm_psm_timer(self):
        """The SP-duration timer plays the role of ``Tip``: activity
        keeps the station awake, silence ends the service period."""
        if not (self.psm.enabled and self.associated):
            return
        self._psm_timer.restart(self.twt.sp_duration)

    def _schedule_beacon_listen(self):
        """Entering doze: schedule the next service-period wake."""
        self._beacon_wait_start = self.sim.now
        if self._sp_started is not None:
            if self.sim.spans.enabled:
                self.sim.spans.record(SPAN_TWT_SERVICE_PERIOD,
                                      self._sp_started, self.sim.now,
                                      sta=self.name)
            self._sp_started = None
        self._schedule_next_sp()

    def _cancel_beacon_listen(self):
        super()._cancel_beacon_listen()
        self._sp_wake_timer.cancel()
        self._resync_timer.cancel()
        self._pending_sp = None
        self._recovering = False

    def _begin_beacon_listen(self):
        super()._begin_beacon_listen()
        # Retry on the next TBTT if this beacon is lost to a collision.
        self._resync_timer.restart(self._beacon_interval)

    def _schedule_next_sp(self):
        twt = self.twt
        index = self._next_sp_index()
        planned = self._twt_anchor + index * twt.sp_interval - twt.guard
        projected = abs(self._clock_error(planned))
        if projected > twt.resync_fraction * twt.guard:
            # The local clock is stale: listen for one beacon first.
            listen_at = self._next_tbtt() - self.psm.beacon_guard
            if listen_at < planned:
                self._pending_sp = index
                self._resync_timer.restart(
                    max(listen_at - self.sim.now, 0.0))
                return
            # No beacon fits before the wake; fall through and let the
            # missed-SP check decide with the clock as it is.
        self._arm_sp_wake(index, planned)

    def _arm_sp_wake(self, index, planned):
        error = self._clock_error(planned)
        resync_age = planned - self._last_resync
        if abs(error) > self.twt.guard:
            # Drift ate the whole window: this SP cannot be hit.  Wake
            # on the next beacon instead, resync there, and serve a
            # recovery service period.
            self.missed_sp_count += 1
            sim = self.sim
            if sim.metrics.enabled:
                sim.metrics.inc(TWT_MISSED_SPS_TOTAL,
                                labels={"sta": self.name})
            self.wake_log.append(TwtWake(index, planned, None, error,
                                         resync_age, missed=True))
            self._recovering = True
            listen_at = self._next_tbtt() - self.psm.beacon_guard
            self._resync_timer.restart(max(listen_at - self.sim.now, 0.0))
            return
        actual = max(planned + error, self.sim.now)
        self.wake_log.append(TwtWake(index, planned, actual, error,
                                     resync_age, missed=False))
        self._sp_wake_timer.restart(max(actual - self.sim.now, 0.0))

    def _twt_wake_due(self):
        if self.power_state != PowerState.DOZE:
            return
        self._service_period("twt-sp")

    def _service_period(self, reason):
        sim = self.sim
        if sim.metrics.enabled:
            sim.metrics.inc(TWT_WAKES_TOTAL,
                            labels={"sta": self.name, "reason": reason})
        self._sp_started = sim.now
        self._wake(reason)
        # Announce the wake: PM=0 flushes whatever the AP buffered.
        self.null_frames_sent += 1
        self.enqueue_frame(NullDataFrame(self.ap.mac, self.mac, pm=False))

    def _handle_beacon(self, beacon):
        self._beacon_interval = tu(beacon.beacon_interval_tu)
        if self.power_state != PowerState.DOZE \
                or not self._listening_for_beacon:
            return
        self._listening_for_beacon = False
        self._resync_timer.cancel()
        # The beacon timestamp is the reference clock: resync.
        self._last_resync = self.sim.now
        self.resync_count += 1
        if self.sim.metrics.enabled:
            self.sim.metrics.inc(TWT_RESYNCS_TOTAL,
                                 labels={"sta": self.name})
        index, self._pending_sp = self._pending_sp, None
        if self._recovering:
            self._recovering = False
            self._service_period("twt-recovery")
        elif index is not None:
            planned = (self._twt_anchor + index * self.twt.sp_interval
                       - self.twt.guard)
            if planned <= self.sim.now:
                self._service_period("twt-sp")
            else:
                self._arm_sp_wake(index, planned)
        # TIM bits are ignored: buffered frames wait for the SP.

    def __repr__(self):
        return (f"<TwtStation {self.name} {self.power_state} "
                f"sp={self.twt.sp_interval * 1e3:.0f}ms "
                f"drift={self.twt.drift_rate * 1e6:+.0f}ppm>")
