"""802.11 station MAC with adaptive power-save (the paper's §3.2.2).

The state machine:

* **CAM** (Constantly Awake Mode): receiver always on.  Any data
  activity (tx or rx) restarts the PSM timeout ``Tip``.
* When ``Tip`` expires with nothing queued, the station announces sleep
  with a null frame carrying PM=1 and enters **PS** (doze) once that
  frame is ACKed.
* In PS the receiver is off except around the target beacon times the
  station listens to — every ``listen_interval + 1``-th beacon.  The
  paper measured the *actual* listen interval of every phone to be 0,
  i.e. the station wakes for **every** beacon (102.4 ms apart), which
  bounds the PSM-induced inflation at just over one beacon interval.
* A beacon whose TIM includes the station's AID means the AP holds
  buffered downlink frames: the station wakes, signals PM=0 with a null
  frame, and the AP flushes.
* An uplink send while dozing wakes the station immediately ("a
  smartphone enters CAM immediately when sending out packets", §4.1).

``Tip`` is phone-dependent (Table 4: ~40 ms on Nexus 4 up to ~400 ms on
HTC One) and in practice jittery — the demotion decision rides on driver
polling.  ``timeout_jitter`` models that: each re-arm draws
``Tip + U(-jitter, +jitter)``.
"""

from repro.obs.names import (
    PSM_TRANSITIONS_TOTAL,
    SPAN_PSM_BEACON_WAIT,
    SPAN_PSM_DOZE,
)
from repro.sim.timers import Timer
from repro.sim.units import tu
from repro.wifi.channel import Radio
from repro.wifi.frames import BeaconFrame, DataFrame, NullDataFrame, PsPollFrame


class PowerState:
    """Station power states."""

    AWAKE = "AWAKE"  # CAM
    DOZE = "DOZE"  # PS


#: Power-save flavours.  Adaptive is what every phone in Table 4 runs;
#: static is the legacy scheme whose "RTT round-up effect" (Krashinsky &
#: Balakrishnan, cited as [19]) made vendors abandon it.
MODE_ADAPTIVE = "adaptive"
MODE_STATIC = "static"


class PsmConfig:
    """Power-save parameters for one station.

    ``listen_interval_assoc`` is the value announced during association
    (1 for the wcnss driver, 10 for bcmdhd); ``listen_interval`` is the
    value the station actually honours (0 for every phone in Table 4).

    ``mode`` selects adaptive PSM (dwell in CAM for ``timeout`` after
    activity, wake with PM=0 nulls) or static PSM (return to PS right
    after each exchange, uplink data carries PM=1, buffered frames are
    retrieved one PS-Poll at a time).
    """

    def __init__(self, enabled=True, timeout=0.2, timeout_jitter=0.0,
                 listen_interval=0, listen_interval_assoc=1,
                 beacon_guard=300e-6, mode=MODE_ADAPTIVE):
        if timeout <= 0:
            raise ValueError("PSM timeout must be positive")
        if listen_interval < 0:
            raise ValueError("listen interval must be >= 0")
        if mode not in (MODE_ADAPTIVE, MODE_STATIC):
            raise ValueError(f"unknown PSM mode {mode!r}")
        self.enabled = enabled
        self.timeout = timeout
        self.timeout_jitter = timeout_jitter
        self.listen_interval = listen_interval
        self.listen_interval_assoc = listen_interval_assoc
        self.beacon_guard = beacon_guard
        self.mode = mode

    @property
    def is_static(self):
        return self.mode == MODE_STATIC

    @classmethod
    def disabled(cls):
        return cls(enabled=False, timeout=1.0)


class Station(Radio):
    """A WiFi client (the phone's WNIC, or the load generator's)."""

    def __init__(self, sim, channel, mac, psm=None, rng=None, name="sta"):
        super().__init__(sim, channel, mac, name=name)
        self.psm = psm if psm is not None else PsmConfig()
        self.rng = rng if rng is not None else sim.rng.stream(f"sta:{name}")
        self.ap = None
        self.aid = None
        self.power_state = PowerState.AWAKE
        self.on_packet = None  # callable(packet): upper-layer delivery
        self.on_state_change = None  # callable(old, new, reason)
        self._psm_timer = Timer(sim, self._psm_timeout, label=f"psm:{name}")
        self._listening_for_beacon = False
        self._fetching = False  # static mode: mid PS-Poll retrieval
        self._tbtt_train = None  # periodic wake train while dozing
        self._beacon_interval = None
        self._beacon_wait_start = None
        self._doze_started = None
        self._tx_seq = 0
        self.state_transitions = []  # (time, old, new, reason) for analysis
        self.doze_count = 0
        self.null_frames_sent = 0
        self.ps_polls_sent = 0

    # -- association ----------------------------------------------------

    def associate(self, ap):
        """Join the AP's BSS."""
        self.ap = ap
        self.aid = ap.associate(self, self.psm.listen_interval_assoc)
        self._beacon_interval = tu(ap.beacon_interval_tu)
        self._arm_psm_timer()
        return self.aid

    @property
    def associated(self):
        return self.ap is not None

    @property
    def receiver_active(self):
        return (self.power_state == PowerState.AWAKE
                or self._listening_for_beacon or self._fetching)

    # -- uplink -----------------------------------------------------------

    def send_packet(self, packet, pm_override=None):
        """Transmit one IP packet to the AP (infrastructure uplink)."""
        if not self.associated:
            raise RuntimeError(f"{self.name}: not associated")
        if self.power_state == PowerState.DOZE:
            self._wake("uplink")
        if pm_override is None:
            # Static PSM announces PS on every uplink frame, so the AP
            # keeps buffering; adaptive stations transmit with PM=0.
            pm = self.psm.enabled and self.psm.is_static
        else:
            pm = bool(pm_override)
        self._tx_seq = (self._tx_seq + 1) & 0xFFF
        frame = DataFrame(
            self.ap.mac, self.mac, packet, bssid=self.ap.mac, to_ds=True,
            pm=pm, seq=self._tx_seq,
        )
        return self.enqueue_frame(frame)

    # -- channel hooks -----------------------------------------------------

    def frame_delivered(self, frame):
        super().frame_delivered(frame)
        if isinstance(frame, BeaconFrame):
            self._handle_beacon(frame)
            return
        if isinstance(frame, DataFrame) and frame.dst_mac == self.mac:
            if self.psm.enabled and self.psm.is_static:
                self._static_data_received(frame)
            else:
                self._touch_activity()
            if self.on_packet is not None:
                self.on_packet(frame.packet)

    def frame_transmitted(self, frame):
        super().frame_transmitted(frame)
        if isinstance(frame, NullDataFrame) and frame.pm:
            self._enter_doze()
            return
        if self.psm.enabled and self.psm.is_static:
            self._static_tx_done()
        else:
            self._touch_activity()

    def frame_dropped(self, frame):
        if isinstance(frame, NullDataFrame) and frame.pm:
            # The sleep announcement never got through; stay awake and
            # let the idle timer try again.
            self._arm_psm_timer()

    # -- static PSM (legacy) ----------------------------------------------

    def _static_tx_done(self):
        """Static mode returns to PS the moment nothing is queued."""
        if self.has_pending() or self._fetching:
            return
        if self.power_state == PowerState.AWAKE:
            self._enter_doze()

    def _static_data_received(self, frame):
        """One buffered frame arrived in response to a PS-Poll."""
        if frame.more_data and self.associated:
            self.ps_polls_sent += 1
            self.enqueue_frame(PsPollFrame(self.ap.mac, self.mac, self.aid))
        else:
            self._fetching = False
            if self.power_state == PowerState.DOZE:
                self._schedule_beacon_listen()
            elif not self.has_pending():
                self._enter_doze()

    # -- power management ----------------------------------------------------

    def _touch_activity(self):
        """Data activity: (re)enter CAM and restart the PSM timeout."""
        if self.power_state == PowerState.DOZE:
            self._wake("activity")
        else:
            self._arm_psm_timer()

    def _arm_psm_timer(self):
        if not (self.psm.enabled and self.associated):
            return
        if self.psm.is_static:
            return  # static mode dozes immediately, no CAM dwell
        timeout = self.psm.timeout
        if self.psm.timeout_jitter:
            timeout += self.rng.uniform(-self.psm.timeout_jitter,
                                        self.psm.timeout_jitter)
        self._psm_timer.restart(max(1e-4, timeout))

    def _psm_timeout(self):
        if self.power_state == PowerState.DOZE:
            return
        if self.has_pending():
            # Traffic still queued: not idle, try again later.
            self._arm_psm_timer()
            return
        self.null_frames_sent += 1
        self.enqueue_frame(NullDataFrame(self.ap.mac, self.mac, pm=True))

    def _enter_doze(self):
        if self.power_state == PowerState.DOZE:
            return
        reason = "static-ps" if self.psm.is_static else "psm-timeout"
        self._set_state(PowerState.DOZE, reason)
        self.doze_count += 1
        self._psm_timer.cancel()
        self._schedule_beacon_listen()

    def _wake(self, reason):
        self._cancel_beacon_listen()
        self._listening_for_beacon = False
        self._fetching = False
        self._beacon_wait_start = None
        if self.power_state != PowerState.AWAKE:
            self._set_state(PowerState.AWAKE, reason)
        self._arm_psm_timer()

    def _set_state(self, new_state, reason):
        old = self.power_state
        self.power_state = new_state
        self.state_transitions.append((self.sim.now, old, new_state, reason))
        sim = self.sim
        if sim.metrics.enabled:
            sim.metrics.inc(PSM_TRANSITIONS_TOTAL,
                            labels={"sta": self.name, "to": new_state,
                                    "reason": reason})
        if sim.trace.enabled:
            sim.trace.record(sim.now, "psm", f"{old}->{new_state}",
                             sta=self.name, reason=reason)
        if new_state == PowerState.DOZE:
            self._doze_started = sim.now
        elif self._doze_started is not None:
            if sim.spans.enabled:
                sim.spans.record(SPAN_PSM_DOZE, self._doze_started, sim.now,
                                 sta=self.name, reason=reason)
            self._doze_started = None
        if self.on_state_change is not None:
            self.on_state_change(old, new_state, reason)

    # -- beacon handling -----------------------------------------------------

    def _next_listen_tbtt(self):
        """The next target beacon time this station listens to.

        Beacon k goes on the air at ``k * interval`` (AP schedule); with
        listen interval L the station listens to beacons whose index is a
        multiple of (L + 1).
        """
        interval = self._beacon_interval
        stride = self.psm.listen_interval + 1
        next_index = int(self.sim.now / interval) + 1
        while next_index % stride:
            next_index += 1
        return next_index * interval

    def _schedule_beacon_listen(self):
        """Arm (or keep) the periodic TBTT wake train while dozing.

        One :meth:`~repro.sim.scheduler.Simulator.schedule_periodic`
        train covers every listen cycle of a doze period: tick ``k``
        wakes the receiver ``beacon_guard`` before the ``k``-th listened
        beacon.  A train armed on the current grid is kept as-is — this
        method then only restarts the beacon-wait span clock — and
        re-armed from scratch when the beacon interval changed.
        """
        self._beacon_wait_start = self.sim.now
        period = (self.psm.listen_interval + 1) * self._beacon_interval
        train = self._tbtt_train
        if train is not None and not train.canceled and train.period == period:
            return
        self._cancel_beacon_listen()
        wake_at = self._next_listen_tbtt() - self.psm.beacon_guard
        wake_at = max(wake_at, self.sim.now)
        self._tbtt_train = self.sim.schedule_periodic(
            period, self._begin_beacon_listen, first=wake_at,
            label=f"tbtt-wake:{self.name}",
        )

    def _cancel_beacon_listen(self):
        if self._tbtt_train is not None:
            self._tbtt_train.cancel()
            self._tbtt_train = None

    def _begin_beacon_listen(self):
        self._listening_for_beacon = True

    def _handle_beacon(self, beacon):
        self._beacon_interval = tu(beacon.beacon_interval_tu)
        if self.power_state != PowerState.DOZE:
            return
        if not self._listening_for_beacon:
            return
        self._listening_for_beacon = False
        if self.sim.spans.enabled and self._beacon_wait_start is not None:
            self.sim.spans.record(
                SPAN_PSM_BEACON_WAIT, self._beacon_wait_start,
                self.sim.now,
                sta=self.name, tim=self.aid in beacon.tim_aids)
        self._beacon_wait_start = None
        if self.aid in beacon.tim_aids:
            if self.psm.is_static:
                # Legacy PSM: poll for one buffered frame, stay in PS.
                # No TBTT wakes while fetching; _static_data_received
                # re-arms the train once the retrieval completes.
                self._cancel_beacon_listen()
                self._fetching = True
                self.ps_polls_sent += 1
                self.enqueue_frame(PsPollFrame(self.ap.mac, self.mac, self.aid))
            else:
                # Adaptive PSM: wake and fetch (PM=0 null flushes the AP).
                self._wake("tim")
                self.null_frames_sent += 1
                self.enqueue_frame(NullDataFrame(self.ap.mac, self.mac,
                                                 pm=False))
        else:
            self._schedule_beacon_listen()

    def __repr__(self):
        return f"<Station {self.name} {self.power_state}>"
