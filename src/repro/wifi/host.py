"""A plain IP host on a WiFi station.

Used for wireless devices that are *not* the instrumented phone — in the
reproduced testbed, the iPerf load generator.  The IP stack sits directly
on the station MAC with no driver/bus model in between.
"""

from repro.net.stack import IpStack
from repro.wifi.sta import PsmConfig, Station


class WifiHost:
    """An end host whose NIC is an 802.11 station."""

    def __init__(self, sim, name, channel, ap, ip_addr, mac, psm=None, rng=None):
        self.sim = sim
        self.name = name
        self.ip_addr = ip_addr
        self.sta = Station(
            sim, channel, mac,
            psm=psm if psm is not None else PsmConfig.disabled(),
            rng=rng, name=f"{name}.sta",
        )
        self.stack = IpStack(sim, ip_addr, transmit=self._transmit,
                             rng=rng, name=name)
        self.sta.on_packet = self._on_packet
        self.sta.associate(ap)
        ap.register_station_ip(ip_addr, mac)

    def _transmit(self, packet):
        # Infrastructure mode: everything goes to the AP.
        self.sta.send_packet(packet)

    def _on_packet(self, packet):
        if packet.dst == self.ip_addr:
            self.stack.deliver(packet)

    def __repr__(self):
        return f"<WifiHost {self.name} {self.ip_addr}>"
