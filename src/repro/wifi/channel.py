"""The shared wireless medium with DCF-style contention.

A single :class:`WifiChannel` arbitrates all transmissions within the
testbed's one collision domain (everything sits within 0.5 m in the
paper's Figure 2 — no hidden terminals, no capture effect).

The model is a *centralised* DCF round: whenever the medium goes idle,
every backlogged radio holds a residual backoff counter (drawn uniformly
from its current contention window); the radio with the lowest counter
transmits after DIFS + counter slots, losers freeze and keep the residue.
Equal counters collide: the frames overlap on the air, nobody is
delivered, and the colliding radios redraw from a doubled window.  This
reproduces the delay and throughput behaviour of per-slot DCF without
simulating every idle slot.

Unicast data is followed by SIFS + ACK (modelled as channel busy time).
A missing receiver (e.g. a station that dozed between queueing and
delivery) behaves like a lost ACK: the sender retries.

Monitors registered with :meth:`WifiChannel.add_monitor` observe every
physical transmission with its airtime boundaries — they are the paper's
wireless sniffers.
"""

from repro.net.queues import DropTailQueue
from repro.obs.names import SPAN_WLAN_AIRTIME
from repro.wifi.frames import BeaconFrame, DataFrame
from repro.wifi.phy import PhyParams


class Radio:
    """A device attached to the wireless medium.

    Subclasses (stations, the AP radio) override the ``frame_*`` hooks.
    Frames queue locally; the channel pulls them when contention is won.
    """

    def __init__(self, sim, channel, mac, name="", queue_limit=250):
        self.sim = sim
        self.channel = channel
        self.mac = mac
        self.name = name or str(mac)
        self.queue = DropTailQueue(packet_limit=queue_limit)
        self._priority = []
        self.frames_sent = 0
        self.frames_received = 0
        channel.attach(self)

    @property
    def receiver_active(self):
        """Whether the radio can currently hear the medium."""
        return True

    def enqueue_frame(self, frame, priority=False):
        """Queue a frame for transmission; returns False on tail drop."""
        if priority:
            self._priority.append(frame)
        else:
            if not self.queue.enqueue(frame):
                return False
        self.channel.notify_backlogged(self)
        return True

    def has_pending(self):
        return bool(self._priority) or not self.queue.is_empty

    def next_frame(self):
        """Pop the next frame to transmit (priority frames first)."""
        if self._priority:
            return self._priority.pop(0)
        return self.queue.dequeue()

    def transmit_rate(self, frame):
        """Rate used for ``frame`` (beacons go out at the beacon rate)."""
        phy = self.channel.phy
        if isinstance(frame, BeaconFrame):
            return phy.beacon_rate_bps
        return phy.data_rate_bps

    # -- hooks -----------------------------------------------------------

    def frame_delivered(self, frame):
        """A frame addressed to (or heard by) this radio arrived."""
        self.frames_received += 1

    def frame_transmitted(self, frame):
        """Our frame went out successfully (ACKed if unicast)."""
        self.frames_sent += 1

    def frame_dropped(self, frame):
        """Our frame exhausted its retry budget."""

    def __repr__(self):
        return f"<Radio {self.name}>"


class _Contender:
    __slots__ = ("radio", "frame", "backoff", "retries", "priority")

    def __init__(self, radio, frame, backoff, priority=False):
        self.radio = radio
        self.frame = frame
        self.backoff = backoff
        self.retries = 0
        self.priority = priority


class ChannelStats:
    __slots__ = ("transmissions", "collisions", "retries", "drops", "busy_time")

    def __init__(self):
        self.transmissions = 0
        self.collisions = 0
        self.retries = 0
        self.drops = 0
        self.busy_time = 0.0


class WifiChannel:
    """One 802.11 collision domain."""

    def __init__(self, sim, phy=None, rng=None, name="wlan"):
        self.sim = sim
        self.phy = phy if phy is not None else PhyParams()
        self.rng = rng if rng is not None else sim.rng.stream(f"wifi:{name}")
        self.name = name
        self.stats = ChannelStats()
        self._radios = []
        self._by_mac = {}
        self._contenders = {}
        self._busy_until = 0.0
        self._round_event = None
        self._monitors = []

    # -- topology ----------------------------------------------------------

    def attach(self, radio):
        self._radios.append(radio)
        self._by_mac[radio.mac] = radio

    def add_monitor(self, callback):
        """Register ``callback(frame, tx_start, tx_end, status)``.

        ``status`` is ``'ok'`` or ``'collision'``.  Monitors hear
        everything — they model the external sniffers.
        """
        self._monitors.append(callback)

    # -- contention ---------------------------------------------------------

    def notify_backlogged(self, radio):
        """A radio has frames queued; enter it into contention."""
        if radio in self._contenders:
            return
        frame = radio.next_frame()
        if frame is None:
            return
        priority = isinstance(frame, BeaconFrame)
        backoff = 0 if priority else self.rng.randint(0, self.phy.cw_min)
        self._contenders[radio] = _Contender(radio, frame, backoff, priority)
        self._schedule_round()

    def _schedule_round(self):
        if not self._contenders:
            return
        start = max(self.sim.now, self._busy_until)
        min_backoff = min(c.backoff for c in self._contenders.values())
        resolve_at = start + self.phy.difs + min_backoff * self.phy.slot_time
        if self._round_event is not None:
            if self._round_event.time <= resolve_at:
                return
            self._round_event.cancel()
        self._round_event = self.sim.at(resolve_at, self._resolve,
                                        label=f"dcf-round:{self.name}")

    def _resolve(self):
        self._round_event = None
        if not self._contenders:
            return
        if self.sim.now < self._busy_until:
            self._schedule_round()
            return
        contenders = list(self._contenders.values())
        priority = [c for c in contenders if c.priority]
        if priority:
            winners = [priority[0]]
        else:
            min_backoff = min(c.backoff for c in contenders)
            winners = [c for c in contenders if c.backoff == min_backoff]
            for contender in contenders:
                if contender not in winners:
                    contender.backoff -= min_backoff
        if len(winners) == 1:
            self._transmit(winners[0])
        else:
            self._collide(winners)

    def _transmit(self, contender):
        frame = contender.frame
        radio = contender.radio
        del self._contenders[radio]
        phy = self.phy
        rate = radio.transmit_rate(frame)
        air = phy.airtime(frame.wire_size, rate)
        # ERP protection (CTS-to-self) precedes data frames in b/g mode.
        protection = phy.protection_time if isinstance(frame, DataFrame) else 0.0
        tx_start = self.sim.now + protection
        tx_end = tx_start + air
        busy = protection + air + (
            phy.sifs + phy.ack_time() if frame.needs_ack else 0.0
        )
        self._busy_until = self.sim.now + busy
        self.stats.transmissions += 1
        self.stats.busy_time += busy
        if isinstance(frame, DataFrame):
            frame.packet.stamp("phy", tx_start)
            sim = self.sim
            if sim.spans.enabled and frame.packet.probe_id is not None:
                sim.spans.record(SPAN_WLAN_AIRTIME, tx_start, tx_end,
                                 probe_id=frame.packet.probe_id,
                                 bytes=frame.wire_size)
        for monitor in self._monitors:
            monitor(frame, tx_start, tx_end, "ok")
        self.sim.at(tx_end, self._deliver, contender, tx_start,
                    label=f"wifi-deliver:{self.name}")

    def _deliver(self, contender, tx_start):
        frame = contender.frame
        sender = contender.radio
        if frame.is_broadcast:
            for radio in self._radios:
                if radio is not sender and radio.receiver_active:
                    radio.frame_delivered(frame)
            sender.frame_transmitted(frame)
            self._complete(sender)
            return
        receiver = self._by_mac.get(frame.dst_mac)
        if receiver is not None and receiver.receiver_active:
            receiver.frame_delivered(frame)
            # ACK consumes SIFS + ACK airtime; sender learns success then.
            self.sim.at(self._busy_until, self._acked, sender, frame,
                        label=f"wifi-ack:{self.name}")
        else:
            # No ACK will come: retry after the ACK timeout (~busy window).
            self.sim.at(self._busy_until, self._failed, contender,
                        label=f"wifi-noack:{self.name}")

    def _acked(self, sender, frame):
        sender.frame_transmitted(frame)
        self._complete(sender)

    def _failed(self, contender):
        self._retry(contender)
        self._schedule_round()

    def _complete(self, radio):
        # The radio may have re-entered contention while its previous
        # frame was still on the air (notify_backlogged during the busy
        # window) — never clobber that contender or its frame is lost.
        if radio not in self._contenders and radio.has_pending():
            # Fresh frame: fresh backoff at CWmin.
            frame = radio.next_frame()
            priority = isinstance(frame, BeaconFrame)
            backoff = 0 if priority else self.rng.randint(0, self.phy.cw_min)
            self._contenders[radio] = _Contender(radio, frame, backoff, priority)
        self._schedule_round()

    def _collide(self, winners):
        phy = self.phy
        self.stats.collisions += 1
        tx_start = self.sim.now
        longest = 0.0
        for contender in winners:
            rate = contender.radio.transmit_rate(contender.frame)
            air = phy.airtime(contender.frame.wire_size, rate)
            longest = max(longest, air)
            for monitor in self._monitors:
                monitor(contender.frame, tx_start, tx_start + air, "collision")
        # EIFS-like penalty after a corrupted frame.
        self._busy_until = tx_start + longest + phy.sifs + phy.ack_time()
        for contender in winners:
            self._retry(contender)
        self._schedule_round()

    def _retry(self, contender):
        """Handle a failed attempt (collision or missing ACK).

        Works whether or not the contender is still registered — the
        no-ACK path removed it when transmission started.
        """
        phy = self.phy
        radio = contender.radio
        contender.retries += 1
        if contender.retries > phy.retry_limit:
            self.stats.drops += 1
            self._contenders.pop(radio, None)
            radio.frame_dropped(contender.frame)
            if radio.has_pending():
                self._contenders[radio] = _Contender(
                    radio, radio.next_frame(),
                    self.rng.randint(0, phy.cw_min),
                )
            return
        self.stats.retries += 1
        cw = phy.contention_window(contender.retries)
        contender.backoff = 0 if contender.priority else self.rng.randint(0, cw)
        self._contenders[radio] = contender

    @property
    def is_busy(self):
        return self.sim.now < self._busy_until

    def __repr__(self):
        return f"<WifiChannel {self.name} radios={len(self._radios)}>"
