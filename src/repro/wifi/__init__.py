"""IEEE 802.11 (WiFi) medium, access point, and stations.

This package models the wireless half of the paper's Figure 2 testbed:

* :mod:`repro.wifi.phy` — 802.11g timing constants and airtime math,
* :mod:`repro.wifi.frames` — beacon/data/null/ack frames with real
  802.11 wire encodings for sniffer captures,
* :mod:`repro.wifi.channel` — a DCF-style shared medium with contention,
  collisions, retries, and monitor (sniffer) taps,
* :mod:`repro.wifi.sta` — station MAC with the **adaptive power-save
  state machine** (CAM ↔ PS, the PSM timeout ``Tip``, listen intervals)
  that §3.2.2 of the paper identifies as an nRTT inflation source,
* :mod:`repro.wifi.ap` — access point with beacon generation, TIM,
  per-station power-save buffering, and an embedded first-hop router,
* :mod:`repro.wifi.host` — a plain IP host on a WiFi station (the
  wireless load generator).
"""

from repro.wifi.ap import AccessPoint
from repro.wifi.channel import WifiChannel
from repro.wifi.frames import AckFrame, BeaconFrame, DataFrame, NullDataFrame
from repro.wifi.host import WifiHost
from repro.wifi.phy import PhyParams
from repro.wifi.sta import PowerState, Station

__all__ = [
    "AccessPoint",
    "AckFrame",
    "BeaconFrame",
    "DataFrame",
    "NullDataFrame",
    "PhyParams",
    "PowerState",
    "Station",
    "WifiChannel",
    "WifiHost",
]
