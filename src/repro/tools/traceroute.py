"""Traceroute over the simulated network.

Sends TTL-stepped UDP probes (classic Van Jacobson style, high UDP
ports) and maps each hop from the ICMP time-exceeded responses, with the
destination detected by its UDP echo / port-unreachable behaviour — here,
by the echo response from the measurement server.

On the phone this doubles as a *warm-up-aware* path prober: the TTL=1
probes are exactly AcuteMon's background packets, so tracerouting the
first hop is also how one validates that warm-up traffic really dies at
the AP.
"""

from repro.net.packet import IcmpTimeExceeded
from repro.tools.base import MeasurementTool

BASE_PORT = 33434


class HopResult:
    """One hop's outcome."""

    __slots__ = ("ttl", "address", "rtt")

    def __init__(self, ttl, address, rtt):
        self.ttl = ttl
        self.address = address  # None when the hop timed out
        self.rtt = rtt

    @property
    def timed_out(self):
        return self.address is None

    def __repr__(self):
        if self.timed_out:
            return f"<Hop {self.ttl}: *>"
        return f"<Hop {self.ttl}: {self.address} {self.rtt * 1e3:.2f}ms>"


class TracerouteTool(MeasurementTool):
    """TTL-sweeping path discovery from the phone."""

    runtime = "native"

    def __init__(self, phone, collector, target_ip, max_ttl=8,
                 probe_timeout=1.0, echo_port=7007, name="traceroute"):
        super().__init__(phone, collector, target_ip, name=name)
        self.max_ttl = max_ttl
        self.probe_timeout = probe_timeout
        self.echo_port = echo_port
        self.hops = []
        self._binding = None
        self._src_port = None
        self._current = None  # (ttl, probe_id, t0)
        self._timeout_event = None
        self._done = False

    def _begin(self, count):
        # ``count`` is ignored: a traceroute run is one TTL sweep.
        self.hops = []
        self._src_port = self.phone.stack.allocate_port()
        self._binding = self.phone.stack.udp_bind(
            self._src_port, self.phone.user_wrap(self._on_echo))
        self.phone.stack.add_icmp_error_handler(self._on_icmp_error)
        self._probe(ttl=1)

    def _probe(self, ttl):
        record = self.collector.new_probe(kind="probe")
        meta = self.collector.meta_for(record)
        t0 = self.phone.user_send(lambda: self.phone.stack.send_udp(
            self.target_ip, self.echo_port, src_port=self._src_port,
            payload_size=24, ttl=ttl, meta=meta))
        self.collector.record_user_send(record.probe_id, t0)
        self._current = (ttl, record.probe_id, t0)
        self._timeout_event = self.sim.schedule(
            self.probe_timeout, self._hop_timeout, ttl,
            label=f"{self.name}-timeout")

    def _on_icmp_error(self, packet):
        if self._current is None or self._done:
            return
        payload = packet.payload
        if not isinstance(payload, IcmpTimeExceeded):
            return
        if payload.original.probe_id != self._current[1]:
            return
        ttl, probe_id, t0 = self._current
        self._finish_hop(HopResult(ttl, packet.src, self.sim.now - t0))

    def _on_echo(self, packet):
        if self._current is None or self._done:
            return
        if packet.probe_id != self._current[1]:
            return
        ttl, probe_id, t0 = self._current
        self.collector.record_user_recv(probe_id, self.sim.now)
        self.hops.append(HopResult(ttl, packet.src, self.sim.now - t0))
        self._done = True
        self._finish()

    def _hop_timeout(self, ttl):
        self._timeout_event = None
        if self._current is None or self._current[0] != ttl:
            return
        self._finish_hop(HopResult(ttl, None, None))

    def _finish_hop(self, hop):
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        self.hops.append(hop)
        self._current = None
        if hop.ttl >= self.max_ttl:
            self._finish()
        else:
            self._probe(hop.ttl + 1)

    def _cleanup(self):
        if self._binding is not None:
            self._binding.close()
            self._binding = None

    @property
    def reached_target(self):
        return bool(self.hops) and self.hops[-1].address == self.target_ip

    def render(self):
        lines = [f"traceroute to {self.target_ip}, {self.max_ttl} hops max"]
        for hop in self.hops:
            if hop.timed_out:
                lines.append(f"  {hop.ttl:2d}  *")
            else:
                lines.append(
                    f"  {hop.ttl:2d}  {hop.address}  "
                    f"{hop.rtt * 1e3:.2f} ms")
        return "\n".join(lines)
