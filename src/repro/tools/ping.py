"""ICMP ping with a configurable sending interval.

This is the probe of the paper's §3.1 root-cause experiment: "We run a
ping program through adb shell for 100 times with two packet sending
intervals, a small interval of 10 ms and larger default of 1 s."  Pings
are sent at a fixed rate regardless of outstanding replies, exactly like
``ping -i``.

Two fidelity details:

* ``ping`` executed from a shell is a native binary, so the default
  runtime is ``native``.
* Some builds print integer milliseconds once the RTT exceeds 100 ms
  (the paper traces Nexus 4's negative Δdu−k to this truncation); the
  quirk is honoured when the phone profile sets
  ``ping_integer_above_100ms``.
"""

import math

from repro.tools.base import MeasurementTool, RttSample

DEFAULT_PAYLOAD = 56  # classic ping payload


class PingTool(MeasurementTool):
    """A fixed-rate ICMP echo prober."""

    runtime = "native"

    _next_ident = 0x1000

    def __init__(self, phone, collector, target_ip, interval=1.0,
                 payload_size=DEFAULT_PAYLOAD, timeout=1.0, name="ping"):
        super().__init__(phone, collector, target_ip, name=name)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.payload_size = payload_size
        self.timeout = timeout
        PingTool._next_ident += 1
        self.ident = PingTool._next_ident
        self._handle = None
        self._pending = {}  # probe_id -> t0
        self._expected = 0
        self._finish_event = None

    def _begin(self, count):
        self._expected = count
        self._pending = {}
        self._handle = self.phone.stack.register_ping(
            self.ident, self.phone.user_wrap(self._on_reply))
        for index in range(count):
            self.sim.schedule(index * self.interval, self._send_one, index,
                              label=f"{self.name}-send")
        self._finish_event = self.sim.schedule(
            (count - 1) * self.interval + self.timeout, self._deadline,
            label=f"{self.name}-deadline",
        )

    def _send_one(self, index):
        record = self.collector.new_probe(kind="probe")
        meta = self.collector.meta_for(record)
        t0 = self.phone.user_send(lambda: self.phone.stack.send_echo_request(
            self.target_ip, self.ident, index + 1,
            payload_size=self.payload_size, meta=meta,
        ))
        self.collector.record_user_send(record.probe_id, t0)
        self._pending[record.probe_id] = t0

    def _on_reply(self, packet):
        probe_id = packet.probe_id
        t0 = self._pending.pop(probe_id, None)
        if t0 is None:
            return  # duplicate or post-deadline reply
        now = self.sim.now
        rtt = self._quantize(now - t0)
        # The ledger reflects what the app *reports* (so the truncation
        # quirk shows up as negative user-kernel overhead, Figure 3).
        self.collector.record_user_recv(probe_id, t0 + rtt)
        self.samples.append(RttSample(probe_id, t0, rtt))
        if len(self.samples) >= self._expected:
            self._finish_now()

    def _quantize(self, rtt):
        if (self.phone.profile.ping_integer_above_100ms and rtt >= 0.1):
            return math.floor(rtt * 1e3) * 1e-3
        return rtt

    def _deadline(self):
        self._finish_event = None
        for probe_id, t0 in self._pending.items():
            self.collector.record_timeout(probe_id)
            self.samples.append(RttSample(probe_id, t0, None))
        self._pending = {}
        self._finish_now()

    def _finish_now(self):
        if not self.running:
            return
        if self._finish_event is not None:
            self._finish_event.cancel()
            self._finish_event = None
        self._finish()

    def _cleanup(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
