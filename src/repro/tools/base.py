"""Shared machinery for the measurement tools.

Every tool produces :class:`RttSample` objects and reports user-level
timestamps into a :class:`~repro.core.measurement.ProbeCollector`, so the
multi-layer overhead analysis works identically across tools.
"""


class RttSample:
    """One user-level RTT measurement."""

    __slots__ = ("probe_id", "sent_at", "rtt")

    def __init__(self, probe_id, sent_at, rtt):
        self.probe_id = probe_id
        self.sent_at = sent_at
        self.rtt = rtt  # seconds, or None when the probe was lost

    @property
    def lost(self):
        return self.rtt is None

    def __repr__(self):
        rtt = "lost" if self.lost else f"{self.rtt * 1e3:.2f}ms"
        return f"<RttSample {self.probe_id} {rtt}>"


class MeasurementTool:
    """Base class: lifecycle, runtime override, and synchronous driving."""

    #: Runtime the tool's user space executes in ('native' or 'dalvik').
    runtime = "native"

    def __init__(self, phone, collector, target_ip, name=""):
        self.phone = phone
        self.sim = phone.sim
        self.collector = collector
        self.target_ip = target_ip
        self.name = name or type(self).__name__
        self.samples = []
        self.running = False
        self._on_complete = None
        self._saved_runtime = None

    # -- lifecycle --------------------------------------------------------

    def start(self, count, on_complete=None):
        """Begin a measurement of ``count`` probes (asynchronous)."""
        if self.running:
            raise RuntimeError(f"{self.name} already running")
        self.running = True
        self.samples = []
        self._on_complete = on_complete
        self._saved_runtime = self.phone.runtime
        self.phone.runtime = self.runtime
        self._begin(count)

    def run_sync(self, count, deadline=None):
        """Start and drive the simulator until the tool completes.

        Convenience for experiments and benchmarks; returns the samples.
        """
        done = []
        self.start(count, on_complete=lambda samples: done.append(samples))
        while not done:
            if deadline is not None and self.sim.now > deadline:
                raise RuntimeError(f"{self.name} did not finish by {deadline}s")
            if not self.sim.step():
                raise RuntimeError(f"{self.name} stalled: event heap empty")
        return self.samples

    def _begin(self, count):
        raise NotImplementedError

    def _finish(self):
        self.running = False
        self.phone.runtime = self._saved_runtime
        self._cleanup()
        if self._on_complete is not None:
            self._on_complete(self.samples)

    def _cleanup(self):
        """Release sockets/handles; overridden as needed."""

    # -- results ------------------------------------------------------------

    def rtts(self):
        """Measured RTTs (seconds), losses excluded."""
        return [sample.rtt for sample in self.samples if not sample.lost]

    def loss_count(self):
        return sum(1 for sample in self.samples if sample.lost)

    def __repr__(self):
        return f"<{type(self).__name__} {self.name} samples={len(self.samples)}>"
