"""MobiPerf's three RTT measurement methods (paper §4.3).

1. ``ping``: invoke the platform ping binary and parse its output.  The
   measurement itself is native; MobiPerf only wraps it.
2. ``inetaddress``: the Java ``InetAddress`` reachability API — TCP
   SYN -> RST against a closed port, timed in Dalvik.
3. ``httpurl``: ``HttpURLConnection`` — a TCP connect (SYN -> SYN|ACK)
   against the web port, timed in Dalvik.

Methods 2 and 3 "are very similar, both of which utilize TCP control
messages (SYN/RST vs. SYN/SYN ACK)".
"""

from repro.tools.javaping import JavaPingTool
from repro.tools.ping import PingTool

METHODS = ("ping", "inetaddress", "httpurl")


class MobiPerfTool:
    """Facade dispatching to the underlying prober for each method."""

    def __init__(self, phone, collector, target_ip, method="inetaddress",
                 interval=1.0, http_port=80, closed_port=7, name="mobiperf"):
        if method not in METHODS:
            raise ValueError(f"unknown MobiPerf method {method!r}; "
                             f"known: {METHODS}")
        self.method = method
        self.name = f"{name}:{method}"
        if method == "ping":
            self._tool = PingTool(phone, collector, target_ip,
                                  interval=interval, name=self.name)
        elif method == "inetaddress":
            self._tool = JavaPingTool(phone, collector, target_ip,
                                      port=closed_port, interval=interval,
                                      name=self.name)
        else:  # httpurl: SYN/SYN|ACK against the open web port
            self._tool = JavaPingTool(phone, collector, target_ip,
                                      port=http_port, interval=interval,
                                      name=self.name)

    def start(self, count, on_complete=None):
        self._tool.start(count, on_complete=on_complete)

    def run_sync(self, count, deadline=None):
        return self._tool.run_sync(count, deadline=deadline)

    @property
    def samples(self):
        return self._tool.samples

    def rtts(self):
        return self._tool.rtts()

    def loss_count(self):
        return self._tool.loss_count()

    def __repr__(self):
        return f"<MobiPerfTool method={self.method}>"
