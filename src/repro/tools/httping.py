"""httping-style HTTP RTT measurement.

Measures the time from sending an HTTP GET to receiving the response
over a persistent TCP connection, at a fixed probing interval (httping's
default is one probe per second — which, on a sleepy phone, is exactly
slow enough to let the SDIO bus demote between probes).

Modelling note: command-line httping reconnects per probe by default and
reports connect+request+response; the paper's Figure 8 places httping
within a few milliseconds of ICMP ping at the same emulated RTT, which
matches single-RTT (persistent-connection) semantics, so that is what we
implement.  httping is a native binary, hence runtime 'native'.
"""

from repro.net.servers import HTTP_REQUEST_SIZE
from repro.tools.base import MeasurementTool, RttSample


class HttpingTool(MeasurementTool):
    """Sequential HTTP request/response prober."""

    runtime = "native"

    def __init__(self, phone, collector, target_ip, port=80, interval=1.0,
                 request_size=HTTP_REQUEST_SIZE, timeout=1.0, name="httping"):
        super().__init__(phone, collector, target_ip, name=name)
        self.port = port
        self.interval = interval
        self.request_size = request_size
        self.timeout = timeout
        self._conn = None
        self._expected = 0
        self._pending = None  # (probe_id, t0)
        self._timeout_event = None

    def _begin(self, count):
        self._expected = count
        conn = self.phone.stack.tcp.connect(self.target_ip, self.port)
        self._conn = conn
        conn.on_connected = lambda _conn: self._send_probe()
        conn.on_data = self.phone.user_wrap(self._on_response)
        conn.on_reset = lambda _conn: self._abort()

    def _send_probe(self):
        if len(self.samples) >= self._expected:
            self._finish()
            return
        record = self.collector.new_probe(kind="probe")
        meta = self.collector.meta_for(record)
        t0 = self.phone.user_send(
            lambda: self._conn.send(self.request_size, meta=meta))
        self.collector.record_user_send(record.probe_id, t0)
        self._pending = (record.probe_id, t0)
        self._timeout_event = self.sim.schedule(
            self.timeout, self._probe_timeout, record.probe_id,
            label=f"{self.name}-timeout",
        )

    def _on_response(self, _conn, _nbytes, meta):
        probe_id = meta.get("probe_id")
        if self._pending is None or self._pending[0] != probe_id:
            return
        _pid, t0 = self._pending
        self._pending = None
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        now = self.sim.now
        self.collector.record_user_recv(probe_id, now)
        self.samples.append(RttSample(probe_id, t0, now - t0))
        self._schedule_next(t0)

    def _probe_timeout(self, probe_id):
        self._timeout_event = None
        if self._pending is None or self._pending[0] != probe_id:
            return
        _pid, t0 = self._pending
        self._pending = None
        self.collector.record_timeout(probe_id)
        self.samples.append(RttSample(probe_id, t0, None))
        self._schedule_next(t0)

    def _schedule_next(self, last_start):
        next_at = max(last_start + self.interval, self.sim.now)
        self.sim.at(next_at, self._send_probe, label=f"{self.name}-next")

    def _abort(self):
        if self.running:
            self._finish()

    def _cleanup(self):
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        if self._conn is not None:
            self._conn.close()
            self._conn = None
