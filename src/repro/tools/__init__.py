"""The measurement tools compared in the paper.

* :mod:`repro.tools.ping` — ICMP ping with a configurable sending
  interval (the §3.1 root-cause experiment uses 10 ms and 1 s), including
  the Nexus 4 quirk of integer-millisecond output above 100 ms.
* :mod:`repro.tools.httping` — httping-style HTTP request/response RTTs
  over a persistent connection.
* :mod:`repro.tools.javaping` — the paper's "Java ping": MobiPerf's
  ``InetAddress`` method re-implemented, TCP SYN -> RST against a closed
  port, timed from the Dalvik runtime.
* :mod:`repro.tools.mobiperf` — MobiPerf's three measurement methods.
* :mod:`repro.tools.ping2` — Sui et al.'s server-side double ping, the
  prior-art mitigation AcuteMon is compared against.

AcuteMon itself lives in :mod:`repro.core.acutemon`.
"""

from repro.tools.base import MeasurementTool, RttSample
from repro.tools.httping import HttpingTool
from repro.tools.javaping import JavaPingTool
from repro.tools.mobiperf import MobiPerfTool
from repro.tools.ping import PingTool
from repro.tools.ping2 import Ping2Tool
from repro.tools.traceroute import TracerouteTool

__all__ = [
    "HttpingTool",
    "JavaPingTool",
    "MeasurementTool",
    "MobiPerfTool",
    "Ping2Tool",
    "PingTool",
    "RttSample",
    "TracerouteTool",
]
