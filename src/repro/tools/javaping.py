"""The paper's "Java ping".

MobiPerf's second measurement method uses the Java ``InetAddress`` API,
which probes reachability with TCP control messages — a SYN answered by
RST (closed port).  The paper re-implements it ("we implement its second
method in our own test app, called Java ping") because MobiPerf cannot
configure the probe count.

The defining characteristic is that timestamps are taken inside the
Dalvik runtime, adding the Δdu−k the paper's earlier work measured —
hence ``runtime = 'dalvik'``.
"""

from repro.tools.base import MeasurementTool, RttSample

#: A port nothing listens on; the server stack answers SYNs with RST.
DEFAULT_CLOSED_PORT = 7


class JavaPingTool(MeasurementTool):
    """TCP SYN -> RST reachability probing from the Dalvik runtime."""

    runtime = "dalvik"

    def __init__(self, phone, collector, target_ip, port=DEFAULT_CLOSED_PORT,
                 interval=1.0, timeout=1.0, name="javaping"):
        super().__init__(phone, collector, target_ip, name=name)
        self.port = port
        self.interval = interval
        self.timeout = timeout
        self._expected = 0
        self._pending = None
        self._timeout_event = None

    def _begin(self, count):
        self._expected = count
        self._send_probe()

    def _send_probe(self):
        if len(self.samples) >= self._expected:
            self._finish()
            return
        record = self.collector.new_probe(kind="probe")
        meta = self.collector.meta_for(record)
        t0 = self.phone.user_send(lambda: self._connect(record.probe_id, meta))
        self.collector.record_user_send(record.probe_id, t0)
        self._pending = (record.probe_id, t0)
        self._timeout_event = self.sim.schedule(
            self.timeout, self._probe_timeout, record.probe_id,
            label=f"{self.name}-timeout",
        )

    def _connect(self, probe_id, meta):
        conn = self.phone.stack.tcp.connect(self.target_ip, self.port,
                                            meta=meta)
        # A closed port answers with RST; an open one with SYN|ACK.  Both
        # give a reachability RTT, matching InetAddress semantics.
        conn.on_reset = self.phone.user_wrap(
            lambda _conn: self._completed(probe_id))
        conn.on_connected = self.phone.user_wrap(
            lambda _conn: self._completed(probe_id, conn))

    def _completed(self, probe_id, conn=None):
        if self._pending is None or self._pending[0] != probe_id:
            return
        _pid, t0 = self._pending
        self._pending = None
        if conn is not None:
            conn.abort()
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        now = self.sim.now
        self.collector.record_user_recv(probe_id, now)
        self.samples.append(RttSample(probe_id, t0, now - t0))
        self._schedule_next(t0)

    def _probe_timeout(self, probe_id):
        self._timeout_event = None
        if self._pending is None or self._pending[0] != probe_id:
            return
        _pid, t0 = self._pending
        self._pending = None
        self.collector.record_timeout(probe_id)
        self.samples.append(RttSample(probe_id, t0, None))
        self._schedule_next(t0)

    def _schedule_next(self, last_start):
        next_at = max(last_start + self.interval, self.sim.now)
        self.sim.at(next_at, self._send_probe, label=f"{self.name}-next")

    def _cleanup(self):
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
