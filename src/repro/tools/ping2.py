"""``ping2``: server-side double ping (Sui et al., MobiSys 2016).

The prior-art mitigation the paper positions against: the *server* pings
the phone twice back to back; the first ping drags the phone out of its
power-saving states, and the second ping — sent the moment the first
reply returns — is reported as the RTT.

Its documented weakness (paper §1): "when nRTT is long, the device could
fall back to the inactive state again before it receives the response
packet and starts the second ping" — the second ping then pays bus-wake
(RTT > Tis) or even beacon buffering (RTT > Tip) all over again.  The
ablation benchmark sweeps the emulated RTT to show exactly that
crossover against AcuteMon.
"""

from repro.tools.base import RttSample


class Ping2Tool:
    """Measures phone RTT from the server with warm-up/probe ping pairs."""

    def __init__(self, server_host, phone_ip, interval=1.0, timeout=1.0,
                 name="ping2"):
        self.host = server_host
        self.sim = server_host.sim
        self.phone_ip = phone_ip
        self.interval = interval
        self.timeout = timeout
        self.name = name
        self.samples = []
        self.first_ping_rtts = []
        self.running = False
        self._on_complete = None
        self._expected = 0
        self._round = 0
        self._handle = None
        self._next_probe_id = 1
        self._pending = {}  # probe_id -> (stage, t0, round_index)
        self._timeout_event = None

    def start(self, count, on_complete=None):
        if self.running:
            raise RuntimeError("ping2 already running")
        self.running = True
        self.samples = []
        self.first_ping_rtts = []
        self._expected = count
        self._round = 0
        self._on_complete = on_complete
        self._handle = self.host.stack.register_ping(0x9922, self._on_reply)
        self._start_round()

    def run_sync(self, count, deadline=None):
        done = []
        self.start(count, on_complete=lambda samples: done.append(samples))
        while not done:
            if deadline is not None and self.sim.now > deadline:
                raise RuntimeError("ping2 did not finish in time")
            if not self.sim.step():
                raise RuntimeError("ping2 stalled: event heap empty")
        return self.samples

    # -- rounds ------------------------------------------------------------

    def _start_round(self):
        if self._round >= self._expected:
            self._finish()
            return
        self._round += 1
        self._send_ping("warm")

    def _send_ping(self, stage):
        probe_id = self._next_probe_id
        self._next_probe_id += 1
        t0 = self.sim.now
        self._pending[probe_id] = (stage, t0, self._round)
        self.host.stack.send_echo_request(
            self.phone_ip, 0x9922, probe_id & 0xFFFF,
            meta={"probe_id": probe_id},
        )
        self._timeout_event = self.sim.schedule(
            self.timeout, self._stage_timeout, probe_id,
            label=f"{self.name}-timeout",
        )

    def _on_reply(self, packet):
        probe_id = packet.probe_id
        entry = self._pending.pop(probe_id, None)
        if entry is None:
            return
        stage, t0, round_index = entry
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        rtt = self.sim.now - t0
        if stage == "warm":
            self.first_ping_rtts.append(rtt)
            # Fire the measurement ping immediately — the whole point.
            self._send_ping("probe")
        else:
            self.samples.append(RttSample(round_index, t0, rtt))
            self._schedule_next_round()

    def _stage_timeout(self, probe_id):
        self._timeout_event = None
        entry = self._pending.pop(probe_id, None)
        if entry is None:
            return
        stage, t0, round_index = entry
        if stage == "probe":
            self.samples.append(RttSample(round_index, t0, None))
        self._schedule_next_round()

    def _schedule_next_round(self):
        self.sim.schedule(self.interval, self._start_round,
                          label=f"{self.name}-round")

    def _finish(self):
        self.running = False
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._on_complete is not None:
            self._on_complete(self.samples)

    def rtts(self):
        return [sample.rtt for sample in self.samples if not sample.lost]

    def loss_count(self):
        return sum(1 for sample in self.samples if sample.lost)
