"""repro.lint — plugin-based static analysis for the simulator's contracts.

The repo's headline claims (bit-identical serial vs parallel campaigns,
~zero-cost disabled observability, a faithful Tprom/PSM delay model)
rest on coding contracts: RNG through named ``repro.sim.rng`` streams,
no wall-clock reads in simulation code, ``.enabled``-guarded
observability call sites, buildable registry entries.  This package
turns those conventions into checked rules:

* :mod:`repro.lint.registry` — the ``Rule`` / ``ProjectRule`` protocol
  and the rule registry (``register_rule``).
* :mod:`repro.lint.engine` — single-parse-per-file driver with rule
  isolation (a crashing rule becomes an ``RL000`` finding).
* :mod:`repro.lint.pragmas` — ``# lint: disable=RLxxx`` line pragmas
  and the ``# obs: caller-guarded`` observability pragma.
* :mod:`repro.lint.baseline` — JSON baseline for grandfathered
  findings, matched by line-independent fingerprints.
* :mod:`repro.lint.report` — text / JSON / SARIF reporters.
* rule packs: :mod:`~repro.lint.rules_obs` (RL001/RL002),
  :mod:`~repro.lint.rules_determinism` (RL101–RL105, RL107),
  :mod:`~repro.lint.rules_names` (RL106),
  :mod:`~repro.lint.rules_quality` (RL201–RL203),
  :mod:`~repro.lint.rules_registry` (RL301).

Run it as ``repro lint [--format json|sarif] [--baseline PATH]``; the
rule catalog and the workflow live in docs/STATIC_ANALYSIS.md.
"""

from repro.lint.baseline import Baseline, load_baseline, save_baseline
from repro.lint.engine import (
    LintResult, apply_baseline, lint_file, run_lint,
)
from repro.lint.findings import Finding, internal_finding
from repro.lint.registry import (
    RULES, ProjectRule, Rule, all_rules, register_rule,
)
from repro.lint.report import (
    render, render_json, render_sarif, render_text, rule_descriptors,
)

# Importing the rule packs registers the built-in rules.
from repro.lint import rules_determinism  # noqa: F401  (registers RL1xx)
from repro.lint import rules_names  # noqa: F401  (registers RL106)
from repro.lint import rules_obs  # noqa: F401  (registers RL001/RL002)
from repro.lint import rules_quality  # noqa: F401  (registers RL2xx)
from repro.lint import rules_registry  # noqa: F401  (registers RL301)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_rules",
    "apply_baseline",
    "internal_finding",
    "lint_file",
    "load_baseline",
    "register_rule",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_descriptors",
    "run_lint",
    "save_baseline",
]
