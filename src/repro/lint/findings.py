"""Finding: the unit of output every lint rule produces.

A finding pins a rule violation to a file and line, carries the
stripped source line as a snippet, and derives a *fingerprint* — a
stable hash of ``(rule, path, snippet)`` that deliberately excludes the
line number, so baseline entries survive unrelated edits that shift
code up or down (see :mod:`repro.lint.baseline`).
"""

import dataclasses
import hashlib

#: Finding severities, most severe first.  ``error`` findings fail the
#: run; ``warning`` findings are reported but advisory (the engine still
#: exits non-zero on them by default — the split exists for reporters
#: and SARIF levels, not for a soft-fail mode).
SEVERITIES = ("error", "warning")

#: Rule id reserved for the engine itself: unparseable files and rules
#: that crash are reported as ``RL000`` findings instead of killing the
#: run (rule isolation).
INTERNAL_RULE_ID = "RL000"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is POSIX-style and relative to the lint root, so reports
    and baselines are machine-independent.
    """

    rule_id: str
    path: str
    line: int
    message: str
    category: str = "lint"
    severity: str = "error"
    snippet: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self):
        """Line-number-independent identity hash for baseline matching."""
        material = f"{self.rule_id}|{self.path}|{self.snippet}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def sort_key(self):
        return (self.path, self.line, self.rule_id, self.message)

    def to_dict(self):
        """JSON-ready representation (used by the JSON reporter)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "category": self.category,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def describe(self):
        return (f"{self.path}:{self.line}: {self.rule_id} "
                f"[{self.severity}] {self.message}")


def internal_finding(path, message, line=1):
    """An ``RL000`` finding: the engine reporting its own trouble."""
    return Finding(INTERNAL_RULE_ID, path, line, message,
                   category="internal", severity="error")
