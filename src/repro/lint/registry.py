"""Rule protocol and registry.

Two kinds of rules exist:

* :class:`Rule` — file rules.  The engine parses each file **once** and
  hands every applicable rule the same ``(tree, source, path)`` triple;
  ``visit`` returns :class:`~repro.lint.findings.Finding` objects.
* :class:`ProjectRule` — repo-level rules that cannot be expressed per
  file (the registry-contract check builds every registered environment
  and tool).  ``check(root)`` runs once per lint invocation.

Rules self-register with the :func:`register_rule` class decorator; the
engine and the reporters read the shared :data:`RULES` table, so adding
a rule module is the whole integration story (import it from
``repro.lint.__init__`` and it appears in every report format).
"""

import functools
import pathlib

from repro.lint.findings import Finding

#: All registered rule singletons, keyed by rule id.
RULES = {}


def register_rule(cls):
    """Class decorator: instantiate ``cls`` and add it to :data:`RULES`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r} "
                         f"({cls.__name__} vs {type(RULES[rule.id]).__name__})")
    RULES[rule.id] = rule
    return cls


def all_rules():
    """Every registered rule, sorted by id (deterministic run order)."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def logical_parts(path):
    """Path components *inside* the ``repro`` package, for rule scoping.

    Rules scope themselves to subpackages ("only ``sim``/``net``/...",
    "never ``obs``") regardless of where the tree being linted lives, so
    the anchor is the last ``repro`` component of the absolute path:
    ``/any/where/src/repro/sim/rng.py`` → ``("sim", "rng.py")``.  Trees
    with no ``repro`` component (test fixtures, ad-hoc files) return
    ``None`` — the engine then treats every package-scoped rule as
    applicable, so fixtures exercise rules without faking the layout.
    """
    parts = pathlib.Path(path).resolve().parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    return parts[anchor + 1:]


@functools.lru_cache(maxsize=16)
def source_lines(source):
    """Cached ``splitlines()`` so line-oriented rules share one split."""
    return tuple(source.splitlines())


class Rule:
    """Base class for file rules.

    Subclasses set the metadata attributes and implement
    ``visit(tree, source, path) -> list[Finding]`` where ``tree`` is the
    parsed :mod:`ast`, ``source`` the file text, and ``path`` the
    POSIX-style path the findings should carry.

    Scoping is declarative: ``packages`` limits the rule to files whose
    first logical component (see :func:`logical_parts`) is in the set
    (``None`` = whole tree); ``exclude`` lists logical POSIX prefixes
    (``"obs/"``) or exact files (``"cli.py"``) the rule never visits.
    """

    id = ""
    category = "lint"
    severity = "error"
    description = ""
    packages = None
    exclude = ()

    def applies_to(self, logical):
        """Whether this rule runs on a file with the given logical parts.

        ``logical`` is the tuple from :func:`logical_parts`, or ``None``
        for unanchored trees (always in scope, nothing to exclude by
        package position).
        """
        if logical is None:
            return True
        posix = "/".join(logical)
        for prefix in self.exclude:
            if posix == prefix or posix.startswith(prefix):
                return False
        if self.packages is not None and (
                not logical or logical[0] not in self.packages):
            return False
        return True

    def visit(self, tree, source, path):
        raise NotImplementedError

    def finding(self, path, line, message, source=None):
        """Build a finding carrying this rule's metadata and a snippet."""
        snippet = ""
        if source is not None:
            lines = source_lines(source)
            if 1 <= line <= len(lines):
                snippet = lines[line - 1].strip()
        return Finding(self.id, path, line, message,
                       category=self.category, severity=self.severity,
                       snippet=snippet)


class ProjectRule:
    """Base class for repo-level rules: ``check(root) -> list[Finding]``."""

    id = ""
    category = "lint"
    severity = "error"
    description = ""

    def check(self, root):
        raise NotImplementedError

    def finding(self, path, line, message):
        return Finding(self.id, path, line, message,
                       category=self.category, severity=self.severity)
