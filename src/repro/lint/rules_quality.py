"""API-quality rules: failure modes that corrupt results silently.

A mutable default argument shares state across calls; a bare or
swallowing ``except`` in a simulation hot path turns a modelling bug
into a silently wrong RTT sample; a ``print()`` in library code pollutes
the reports the CLI renders.  None of these crash tests — which is
exactly why they are lint rules.
"""

import ast

from repro.lint.registry import Rule, register_rule
from repro.lint.rules_determinism import SIM_PACKAGES

#: Zero-argument constructor calls that create fresh mutables.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


@register_rule
class MutableDefaultRule(Rule):
    """RL201: no mutable default arguments on public functions."""

    id = "RL201"
    category = "api"
    severity = "error"
    description = ("mutable default argument ([]/{}/set()) on a public "
                   "function — shared across calls; default to None and "
                   "build inside the body")

    @classmethod
    def _is_mutable(cls, node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CALLS
                and not node.args and not node.keywords)

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(self.finding(
                        path, default.lineno,
                        f"mutable default argument in {node.name}(): the "
                        "object is created once at def time and shared "
                        "across calls — use None and construct in the "
                        "body", source))
        return findings


@register_rule
class SwallowedExceptionRule(Rule):
    """RL202: no bare/swallowing excepts in simulation hot paths."""

    id = "RL202"
    category = "api"
    severity = "error"
    description = ("bare 'except:' or silently swallowed broad exception "
                   "in simulation code — a modelling bug becomes a wrong "
                   "sample; catch specific errors or re-raise")
    packages = SIM_PACKAGES

    @staticmethod
    def _swallows(handler):
        return all(isinstance(stmt, ast.Pass)
                   or (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Constant)
                       and stmt.value.value is Ellipsis)
                   for stmt in handler.body)

    @staticmethod
    def _is_broad(handler):
        return (isinstance(handler.type, ast.Name)
                and handler.type.id in ("Exception", "BaseException"))

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    path, node.lineno,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt — name the exception types this "
                    "handler can actually recover from", source))
            elif self._is_broad(node) and self._swallows(node):
                findings.append(self.finding(
                    path, node.lineno,
                    f"'except {node.type.id}: pass' swallows every "
                    "failure in a simulation path — handle or re-raise "
                    "so bad samples cannot pass silently", source))
        return findings


@register_rule
class PrintInLibraryRule(Rule):
    """RL203: no ``print()`` outside the CLI entry points."""

    id = "RL203"
    category = "api"
    severity = "error"
    description = ("print() in library code — return strings or record "
                   "through the trace/metrics layer; only the CLI prints")
    exclude = ("cli.py", "__main__.py")

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                findings.append(self.finding(
                    path, node.lineno,
                    "print() in library code: return the text (the CLI "
                    "prints) or record it via sim.trace so output stays "
                    "capturable and deterministic", source))
        return findings
