"""The lint driver: parse once, run every rule, never die mid-run.

Per file the engine reads and parses the source exactly once, hands the
same ``(tree, source, path)`` triple to every applicable file rule,
then applies per-line ``# lint: disable=`` pragmas and the optional
JSON baseline.  Project rules (registry contract) run once per
invocation.  Rules are *isolated*: a rule that raises is reported as an
``RL000`` internal-error finding on that file and the run continues —
one buggy rule must not hide every other rule's findings.
"""

import ast
import dataclasses
import pathlib

from repro.lint.findings import internal_finding
from repro.lint.pragmas import disabled_map, is_suppressed
from repro.lint.registry import ProjectRule, Rule, all_rules, logical_parts


@dataclasses.dataclass
class LintResult:
    """Everything one lint invocation learned."""

    findings: list = dataclasses.field(default_factory=list)
    suppressed: list = dataclasses.field(default_factory=list)
    baselined: list = dataclasses.field(default_factory=list)
    stale_baseline: list = dataclasses.field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple = ()

    @property
    def exit_code(self):
        return 1 if self.findings else 0

    def merge(self, other):
        """Fold another result in (multi-root CLI invocations)."""
        self.findings += other.findings
        self.suppressed += other.suppressed
        self.baselined += other.baselined
        self.stale_baseline += other.stale_baseline
        self.files_scanned += other.files_scanned
        self.rules_run = tuple(sorted(set(self.rules_run)
                                      | set(other.rules_run)))
        return self


def iter_python_files(root):
    """Yield the .py files under ``root`` in sorted (deterministic) order."""
    root = pathlib.Path(root)
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_file(path, rules, relative_to=None):
    """Run the file rules on one file: ``(findings, suppressed)``.

    The file is read and parsed exactly once; every rule sees the same
    tree.  Findings whose line carries a matching ``# lint: disable=``
    pragma come back in the ``suppressed`` list instead.
    """
    path = pathlib.Path(path)
    rel = path.relative_to(relative_to) if relative_to else path
    rel_posix = rel.as_posix()
    findings, suppressed = [], []
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        findings.append(internal_finding(
            rel_posix, f"could not parse file: {exc!r}", line=line))
        return findings, suppressed
    pragmas = disabled_map(source)
    logical = logical_parts(path)
    for rule in rules:
        if not rule.applies_to(logical):
            continue
        try:
            produced = rule.visit(tree, source, rel_posix)
        except Exception as exc:  # noqa: BLE001 - rule isolation by design
            findings.append(internal_finding(
                rel_posix,
                f"rule {rule.id} ({type(rule).__name__}) crashed: "
                f"{exc!r} — other rules' findings are unaffected"))
            continue
        for finding in produced:
            if is_suppressed(finding, pragmas):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def run_lint(root, rules=None, baseline=None, include_project_rules=True):
    """Lint one tree (or file) and return a :class:`LintResult`.

    ``rules`` defaults to every registered rule; pass an explicit list
    to run a subset (the legacy wrapper scripts do).  ``baseline`` is a
    loaded :class:`~repro.lint.baseline.Baseline`; matched findings move
    to ``result.baselined`` and never fail the run.
    """
    root = pathlib.Path(root).resolve()
    selected = all_rules() if rules is None else list(rules)
    file_rules = [rule for rule in selected if isinstance(rule, Rule)]
    project_rules = [rule for rule in selected
                     if isinstance(rule, ProjectRule)]
    relative_to = root if root.is_dir() else root.parent

    result = LintResult(rules_run=tuple(rule.id for rule in selected))
    for path in iter_python_files(root):
        findings, suppressed = lint_file(path, file_rules,
                                         relative_to=relative_to)
        result.findings += findings
        result.suppressed += suppressed
        result.files_scanned += 1
    if include_project_rules:
        for rule in project_rules:
            try:
                result.findings += rule.check(root)
            except Exception as exc:  # noqa: BLE001 - rule isolation
                result.findings.append(internal_finding(
                    ".", f"project rule {rule.id} "
                         f"({type(rule).__name__}) crashed: {exc!r}"))
    result.findings.sort(key=lambda f: f.sort_key())
    if baseline is not None:
        apply_baseline(result, baseline)
    return result


def apply_baseline(result, baseline):
    """Move baseline-matched findings to ``result.baselined`` in place."""
    active, baselined, stale = baseline.match(result.findings)
    result.findings = active
    result.baselined += baselined
    result.stale_baseline += stale
    return result
