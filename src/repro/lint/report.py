"""Reporters: text for humans, JSON for pipelines, SARIF for code hosts.

All three render the same :class:`~repro.lint.engine.LintResult`; the
JSON and SARIF documents are stable (sorted findings, fixed key order
via the finding dicts) so they can be golden-file tested and diffed in
CI.  A CI-style invocation:

    repro lint --format json | python -m json.tool
"""

import json

from repro.lint.findings import INTERNAL_RULE_ID
from repro.lint.registry import RULES

TOOL_NAME = "repro.lint"

#: SARIF version pinned by the schema URI below.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _tool_version():
    from repro import __version__
    return __version__


def rule_descriptors():
    """Metadata rows for every rule (plus the engine's RL000), by id."""
    rows = [{"id": INTERNAL_RULE_ID, "category": "internal",
             "severity": "error",
             "description": ("the lint engine itself: unparseable file "
                             "or crashed rule (rule isolation)")}]
    rows += [{"id": rule.id, "category": rule.category,
              "severity": rule.severity, "description": rule.description}
             for rule in (RULES[rule_id] for rule_id in sorted(RULES))]
    return rows


def summary_counts(result):
    return {
        "files_scanned": result.files_scanned,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": len(result.stale_baseline),
    }


def render_text(result):
    """Human-oriented report, one line per finding plus a verdict."""
    lines = [finding.describe() for finding in result.findings]
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry: {entry.rule} {entry.path} "
                     f"{entry.fingerprint} — violation fixed; delete the "
                     "entry")
    counts = summary_counts(result)
    if result.findings:
        lines.append(f"{counts['findings']} finding(s) in "
                     f"{counts['files_scanned']} file(s)"
                     f" ({counts['suppressed']} suppressed, "
                     f"{counts['baselined']} baselined)")
    else:
        lines.append(f"lint clean: {counts['files_scanned']} file(s), "
                     f"rules {', '.join(result.rules_run)}"
                     f" ({counts['suppressed']} suppressed, "
                     f"{counts['baselined']} baselined)")
    return "\n".join(lines)


def render_json(result):
    """Machine-oriented JSON document (stable ordering, 2-space indent)."""
    payload = {
        "tool": {"name": TOOL_NAME, "version": _tool_version()},
        "rules": rule_descriptors(),
        "summary": summary_counts(result),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "stale_baseline": [entry.to_dict()
                           for entry in result.stale_baseline],
    }
    return json.dumps(payload, indent=2)


def render_sarif(result):
    """Minimal SARIF 2.1.0 log: one run, one result per finding."""
    driver_rules = [
        {
            "id": row["id"],
            "shortDescription": {"text": row["description"]},
            "defaultConfiguration": {"level": row["severity"]},
            "properties": {"category": row["category"]},
        }
        for row in rule_descriptors()
    ]
    rule_index = {row["id"]: i
                  for i, row in enumerate(rule_descriptors())}
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index.get(finding.rule_id, -1),
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(1, finding.line)},
                },
            }],
            "partialFingerprints": {"reproLint/v1": finding.fingerprint},
        }
        for finding in result.findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "version": _tool_version(),
                "informationUri": "docs/STATIC_ANALYSIS.md",
                "rules": driver_rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def render(result, fmt="text"):
    """Render ``result`` in the named format (text, json, sarif)."""
    try:
        return RENDERERS[fmt](result)
    except KeyError:
        raise ValueError(f"unknown report format {fmt!r}; expected one of "
                         f"{sorted(RENDERERS)}") from None
