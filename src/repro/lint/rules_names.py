"""Metric/span naming contract (RL106).

Every metric and span name the simulator emits is declared once, in
:mod:`repro.obs.names` — the table :mod:`repro.analysis.decompose`, the
exporters and the dashboards key on.  An inline string literal at a call
site silently forks that namespace: a typo creates a second series
nobody aggregates, and a rename in the table misses the stray literal.
``RL106`` therefore requires call sites to pass a name *constant* (any
non-literal expression — in practice an import from ``repro.obs.names``)
rather than a string literal.

The obs package itself is excluded: the recorders' internals and the
names table are where strings legitimately live.
"""

import ast

from repro.lint.registry import Rule, register_rule

#: Recording methods whose first argument is a metric name.
METRIC_METHODS = frozenset({
    "inc", "observe", "set_gauge", "counter", "gauge", "histogram",
})

#: Recording methods whose first argument is a span name.
SPAN_METHODS = frozenset({"record", "begin"})

#: Receiver attribute/variable names that identify the recorders.
_RECEIVERS = {"metrics": METRIC_METHODS, "spans": SPAN_METHODS}


def _receiver_name(node):
    """The trailing identifier of ``a.b.metrics`` / ``metrics``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class InlineObsNameRule(Rule):
    """RL106: metric/span names come from the ``repro.obs.names`` table."""

    id = "RL106"
    category = "obs-naming"
    severity = "error"
    description = ("inline string literal as a metric/span name at a "
                   "recording call site — declare the name in "
                   "repro.obs.names and pass the constant")
    # The recorders and the names table own their strings; the lint
    # package quotes call patterns in docstrings and fixtures.
    exclude = ("obs/", "lint/")

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            receiver = _receiver_name(node.func.value)
            methods = _RECEIVERS.get(receiver)
            if methods is None or node.func.attr not in methods:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                findings.append(self.finding(
                    path, node.lineno,
                    f"inline name literal {name_arg.value!r} in "
                    f"{receiver}.{node.func.attr}(): declare it in "
                    "repro.obs.names and import the constant so the "
                    "series namespace has one source of truth", source))
        return findings
