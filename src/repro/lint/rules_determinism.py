"""Determinism rules: the contracts behind bit-identical campaigns.

The simulator promises that the same master seed reproduces the same
run, serial or parallel (docs/ARCHITECTURE.md).  That only holds while
simulation code draws randomness from named ``repro.sim.rng`` streams
and reads time from ``sim.now`` — never from the process's wall clock
or the ``random`` module's shared global state.  These rules turn that
convention into a checked property across the simulation packages.
"""

import ast

from repro.lint.registry import Rule, register_rule

#: Subpackages whose code runs under (or builds) the simulated clock.
SIM_PACKAGES = frozenset({
    "sim", "core", "phone", "wifi", "net", "testbed", "cellular",
    "tools", "sniffer",
})

#: ``time`` module functions that read the host clock.
WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "thread_time", "thread_time_ns",
})

#: ``datetime``/``date`` constructors that read the host clock.
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


def _dotted(node):
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _from_imports(tree, module):
    """Names bound by ``from <module> import ...`` (alias-aware)."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add((alias.asname or alias.name, alias.name))
    return names


class _SimScopedRule(Rule):
    packages = SIM_PACKAGES


@register_rule
class WallClockRule(_SimScopedRule):
    """RL101: no host-clock reads inside simulation packages."""

    id = "RL101"
    category = "determinism"
    severity = "error"
    description = ("wall-clock read (time.time()/perf_counter()/"
                   "datetime.now()/...) in simulation code — use the "
                   "simulated clock (sim.now)")

    def visit(self, tree, source, path):
        findings = []
        time_aliases = {bound for bound, original
                        in _from_imports(tree, "time")
                        if original in WALL_CLOCK_TIME_FNS}
        datetime_names = {bound for bound, original
                          in _from_imports(tree, "datetime")
                          if original in ("datetime", "date")}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            flagged = None
            head, _, tail = name.rpartition(".")
            if head == "time" and tail in WALL_CLOCK_TIME_FNS:
                flagged = f"time.{tail}()"
            elif (tail in WALL_CLOCK_DATETIME_FNS and head
                  and (head.split(".")[0] == "datetime"
                       or head in datetime_names)):
                flagged = f"{name}()"
            elif not head and name in time_aliases:
                flagged = f"{name}()"
            if flagged:
                findings.append(self.finding(
                    path, node.lineno,
                    f"wall-clock read {flagged} in simulation code: "
                    "derive timing from the simulated clock (sim.now) "
                    "so runs stay reproducible", source))
        return findings


@register_rule
class UnseededRandomRule(_SimScopedRule):
    """RL102: randomness flows through named ``repro.sim.rng`` streams."""

    id = "RL102"
    category = "determinism"
    severity = "error"
    description = ("module-level random.* use (shared global state) or "
                   "unseeded random.Random() in simulation code — draw "
                   "from sim.rng.stream(name) instead")

    _MESSAGE = ("use a named stream from the simulator's RNG registry "
                "(sim.rng.stream(name)) so draws are seeded and "
                "component-isolated")

    def visit(self, tree, source, path):
        findings = []
        random_fn_aliases = {bound for bound, original
                             in _from_imports(tree, "random")
                             if original != "Random"}
        random_class_aliases = {bound for bound, original
                                in _from_imports(tree, "random")
                                if original == "Random"}
        for node in ast.walk(tree):
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "random"):
                bad = sorted(alias.name for alias in node.names
                             if alias.name != "Random")
                if bad:
                    findings.append(self.finding(
                        path, node.lineno,
                        f"from random import {', '.join(bad)}: "
                        f"{self._MESSAGE}", source))
                continue
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            head, _, tail = name.rpartition(".")
            if head == "random":
                if tail == "Random":
                    if not node.args and not node.keywords:
                        findings.append(self.finding(
                            path, node.lineno,
                            "unseeded random.Random(): seeds from OS "
                            f"entropy — {self._MESSAGE}", source))
                else:
                    findings.append(self.finding(
                        path, node.lineno,
                        f"module-level random.{tail}() uses the shared "
                        f"global RNG — {self._MESSAGE}", source))
            elif (not head and name in random_class_aliases
                  and not node.args and not node.keywords):
                findings.append(self.finding(
                    path, node.lineno,
                    f"unseeded {name}(): seeds from OS entropy — "
                    f"{self._MESSAGE}", source))
            elif not head and name in random_fn_aliases:
                findings.append(self.finding(
                    path, node.lineno,
                    f"{name}() drawn from the random module's shared "
                    f"global RNG — {self._MESSAGE}", source))
        return findings


@register_rule
class NegativeDelayRule(_SimScopedRule):
    """RL103: no ``schedule()`` call with a negative delay literal."""

    id = "RL103"
    category = "determinism"
    severity = "error"
    description = ("Simulator.schedule() with a negative delay literal — "
                   "raises SimTimeError at runtime; schedule relative to "
                   "now with a non-negative delay")

    @staticmethod
    def _literal_value(node):
        if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
                and isinstance(node.operand, ast.Constant)
                and isinstance(node.operand.value, (int, float))):
            return -node.operand.value
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)):
            return node.value
        return None

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "schedule"):
                continue
            delay = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "delay":
                    delay = keyword.value
            if delay is None:
                continue
            value = self._literal_value(delay)
            if value is not None and value < 0:
                findings.append(self.finding(
                    path, node.lineno,
                    f"schedule() with negative delay literal {value!r}: "
                    "the scheduler raises SimTimeError on negative "
                    "delays — events cannot fire in the past", source))
        return findings


@register_rule
class SchedulerInternalsRule(_SimScopedRule):
    """RL105: the scheduler's queue layout is private to its home module.

    PR 6 replaced the binary heap behind :class:`repro.sim.Simulator`
    with a hierarchical timing wheel.  The swap was possible because no
    caller reached into ``sim._heap`` — and stays possible only while
    that holds for the wheel fields too.  Code that needs queue state
    has public API: ``pending()``, ``peek()``, ``wheel_stats()``.
    """

    id = "RL105"
    category = "determinism"
    severity = "error"
    description = ("direct access to scheduler queue internals (._heap / "
                   "._wheel_* / ._canceled_in_heap) outside the scheduler "
                   "core — use the public Simulator API (schedule/cancel/"
                   "pending()/peek()/wheel_stats())")
    # The scheduler core: the wheel lives in scheduler.py; Event.cancel
    # (events.py) maintains the lazy-cancellation counter.
    exclude = ("sim/scheduler.py", "sim/events.py")

    _EXACT = frozenset({"_heap", "_canceled_in_heap"})
    _PREFIX = "_wheel_"

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if attr in self._EXACT or attr.startswith(self._PREFIX):
                findings.append(self.finding(
                    path, node.lineno,
                    f"direct access to scheduler internal .{attr}: the "
                    "event-queue layout (timing wheel) is private to "
                    "repro.sim.scheduler — read queue state through "
                    "pending()/peek()/wheel_stats() instead", source))
        return findings


@register_rule
class RawCheckpointWriteRule(_SimScopedRule):
    """RL104: checkpoint/journal writes go through the atomic helper.

    The resume guarantee — a crash can only tear the journal's final
    line — holds because every record is exactly one ``write()`` of a
    complete JSONL line followed by a ``flush()``, which is what
    ``repro.testbed.resilience.append_journal_record`` does.  A raw
    ``handle.write()`` / ``json.dump()`` against a journal or checkpoint
    handle can interleave partial lines (or buffer them past a crash),
    silently corrupting every later resume.  The helper's home module is
    the one place allowed to touch the handle directly.
    """

    id = "RL104"
    category = "determinism"
    severity = "error"
    description = ("raw write to a checkpoint/journal handle bypasses "
                   "the atomic-append helper "
                   "(resilience.append_journal_record) — a torn or "
                   "buffered record corrupts resume")
    exclude = ("testbed/resilience.py",)

    _NEEDLES = ("journal", "checkpoint")

    @classmethod
    def _names_journal(cls, node):
        name = _dotted(node)
        if name is None:
            return False
        lowered = name.lower()
        return any(needle in lowered for needle in cls._NEEDLES)

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr in ("write", "writelines"):
                if self._names_journal(node.func.value):
                    findings.append(self.finding(
                        path, node.lineno,
                        f"raw .{attr}() on a checkpoint/journal handle: "
                        "append records through "
                        "resilience.append_journal_record so a crash "
                        "can only tear the final line", source))
            elif attr == "dump" and _dotted(node.func) == "json.dump":
                targets = list(node.args) + [keyword.value
                                             for keyword in node.keywords]
                if any(self._names_journal(target) for target in targets):
                    findings.append(self.finding(
                        path, node.lineno,
                        "json.dump() straight into a checkpoint/journal "
                        "handle: append records through "
                        "resilience.append_journal_record so a crash "
                        "can only tear the final line", source))
        return findings


@register_rule
class RawStorePathOpenRule(_SimScopedRule):
    """RL107: journal and store files belong to their home modules.

    The resume and cache guarantees rest on two file formats —
    the checkpoint journal (``repro.testbed.resilience``) and the
    result store's segment/index files (``repro.testbed.store``).  Both
    modules own their formats completely: record framing, version
    stamps, torn-line recovery, and (for the store) the private-segment
    rule that makes concurrent writers safe.  Any other code that opens
    those files directly — even just to read — couples itself to the
    layout and breaks silently when the schema version bumps.  Go
    through :class:`CheckpointJournal` and :class:`ResultStore` instead.
    """

    id = "RL107"
    category = "determinism"
    severity = "error"
    description = ("direct open()/read/write of a journal, checkpoint, "
                   "store, or segment file outside its home module — go "
                   "through CheckpointJournal / ResultStore, which own "
                   "the record framing and version stamps")
    exclude = ("testbed/resilience.py", "testbed/store.py")

    #: Substring needles: identifiers like ``sweep_journal`` or
    #: ``checkpoint_file`` unambiguously name the guarded formats.
    _SUBSTRINGS = ("journal", "checkpoint", "segment")
    #: Whole-word needles: ``store`` only matches as an underscore-
    #: delimited word (``store_path``, ``result_store``) so innocent
    #: identifiers like ``restore`` or ``storey`` stay clean.
    _TOKENS = ("store",)
    _IO_METHODS = ("read_text", "write_text", "read_bytes", "write_bytes")

    @classmethod
    def _identifier_matches(cls, identifier):
        lowered = identifier.lower()
        if any(needle in lowered for needle in cls._SUBSTRINGS):
            return True
        return any(word in cls._TOKENS for word in lowered.split("_"))

    @classmethod
    def _mentions_store(cls, node):
        """Whether any identifier in the expression names a store file."""
        for child in ast.walk(node):
            if isinstance(child, ast.Name) \
                    and cls._identifier_matches(child.id):
                return True
            if isinstance(child, ast.Attribute) \
                    and cls._identifier_matches(child.attr):
                return True
        return False

    _MESSAGE = ("the journal and store formats (framing, version stamps, "
                "torn-line recovery) are private to testbed.resilience / "
                "testbed.store — use CheckpointJournal or ResultStore")

    def visit(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                targets = list(node.args) + [keyword.value
                                             for keyword in node.keywords]
                if any(self._mentions_store(target) for target in targets):
                    findings.append(self.finding(
                        path, node.lineno,
                        f"open() on a journal/store path: {self._MESSAGE}",
                        source))
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr in self._IO_METHODS
                  and self._mentions_store(node.func.value)):
                findings.append(self.finding(
                    path, node.lineno,
                    f".{node.func.attr}() on a journal/store path: "
                    f"{self._MESSAGE}", source))
        return findings
