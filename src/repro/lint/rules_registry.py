"""Registry-contract rule (the ``scripts/check_registries.py`` port).

A registry entry that imports but cannot build is a landmine: it passes
``import repro`` yet detonates mid-campaign, possibly hours into a
sweep.  This is a :class:`~repro.lint.registry.ProjectRule` — it cannot
be expressed per file, so it builds every registered environment,
checks the :class:`~repro.testbed.environment.Environment` protocol,
attaches a phone, round-trips a :class:`ScenarioSpec`, and constructs
every registered tool on a live WiFi cell, exactly the contract the
scenario executor drives.  The legacy script is now a thin wrapper over
:func:`environment_problems` / :func:`tool_problems`.
"""

from repro.lint.registry import ProjectRule, register_rule

#: Attributes/methods the Environment protocol promises to every layer
#: above it (scenario build, campaign cells, CLI).
PROTOCOL_ATTRS = ("sim", "server_ip", "server_host", "attach_phone",
                  "settle", "run", "set_emulated_rtt", "observe",
                  "metrics_snapshot")

#: Where registry findings anchor in reports (the registries live here).
ENVIRONMENT_MODULE = "repro/testbed/environment.py"
SCENARIO_MODULE = "repro/testbed/scenario.py"


def environment_problems():
    """Build every registered environment; return problem strings."""
    from repro.testbed.environment import ENVIRONMENTS, build_environment
    from repro.testbed.scenario import ScenarioSpec

    problems = []
    for key, entry in sorted(ENVIRONMENTS.items()):
        if entry.builder is None:
            problems.append(f"environment {key!r}: builder is None")
            continue
        try:
            env = build_environment(key, seed=0)
        except Exception as exc:  # noqa: BLE001 - lint reports, not raises
            problems.append(f"environment {key!r}: build failed: {exc!r}")
            continue
        for attr in PROTOCOL_ATTRS:
            if not hasattr(env, attr):
                problems.append(
                    f"environment {key!r}: missing protocol attr {attr!r}")
        if env.key != key:
            problems.append(
                f"environment {key!r}: instance reports key {env.key!r}")
        if env.capabilities != entry.capabilities:
            problems.append(
                f"environment {key!r}: instance capabilities "
                f"{sorted(env.capabilities)} != registry "
                f"{sorted(entry.capabilities)}")
        try:
            env.attach_phone("nexus5")
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"environment {key!r}: attach_phone failed: {exc!r}")
        try:
            spec = ScenarioSpec(env=key)
            if ScenarioSpec.from_json(spec.to_json()) != spec:
                problems.append(
                    f"environment {key!r}: spec JSON round-trip not "
                    "equal")
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"environment {key!r}: spec round-trip failed: {exc!r}")
    return problems


def tool_problems():
    """Construct every registered tool on a WiFi cell; return problems."""
    from repro.core.measurement import ProbeCollector
    from repro.testbed.environment import build_environment
    from repro.testbed.scenario import TOOLS, ScenarioSpec

    problems = []
    env = build_environment("wifi", seed=0)
    phone = env.attach_phone("nexus5")
    collector = ProbeCollector(phone)
    for key, entry in sorted(TOOLS.items()):
        if entry.builder is None:
            problems.append(f"tool {key!r}: builder is None (register a "
                            "real builder; None placeholders are banned)")
            continue
        if entry.side not in ("phone", "server"):
            problems.append(f"tool {key!r}: unknown side {entry.side!r}")
        try:
            spec = ScenarioSpec(tool=key, count=1)
            if ScenarioSpec.from_json(spec.to_json()) != spec:
                problems.append(
                    f"tool {key!r}: spec JSON round-trip not equal")
        except Exception as exc:  # noqa: BLE001
            problems.append(f"tool {key!r}: spec round-trip failed: {exc!r}")
            continue
        try:
            tool = entry.build(spec, env, phone, collector)
        except Exception as exc:  # noqa: BLE001
            problems.append(f"tool {key!r}: builder failed: {exc!r}")
            continue
        if not callable(getattr(tool, "run_sync", None)):
            problems.append(
                f"tool {key!r}: built object has no run_sync()")
    return problems


@register_rule
class RegistryContractRule(ProjectRule):
    """RL301: every registered environment and tool must actually work."""

    id = "RL301"
    category = "registry"
    severity = "error"
    description = ("registered environment fails to build / violates the "
                   "Environment protocol, or registered tool has no "
                   "working builder — the contract the scenario executor "
                   "drives")

    def check(self, root):
        del root  # the registries are process-global, not tree-local
        findings = [self.finding(ENVIRONMENT_MODULE, 1, problem)
                    for problem in environment_problems()]
        findings += [self.finding(SCENARIO_MODULE, 1, problem)
                     for problem in tool_problems()]
        return findings
