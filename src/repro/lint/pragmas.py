"""Suppression pragmas.

Two comment pragmas are recognised, both tolerant of flexible
whitespace and trailing prose so a rationale can live on the same line:

* ``# lint: disable=RL101`` (or ``=RL101,RL203``, or ``=all``) —
  suppress those rules' findings *on that physical line only*.  Always
  follow the pragma with a reason; suppressions without one read as
  mistakes.
* ``# obs: caller-guarded`` — the observability-guard pragma inherited
  from ``scripts/check_trace_guards.py``: the ``.enabled`` check for
  this call site lives in its (sole) caller.  ``RL002`` flags the
  pragma when no observability call shares the line, so stale
  suppressions cannot rot in place.
"""

import re

from repro.lint.registry import source_lines

#: ``# lint: disable=RL001`` / ``=RL001 , rl203`` / ``=all`` — ids are
#: captured case-insensitively; anything after the id list is ignored,
#: so a rationale can trail the pragma.
DISABLE_RE = re.compile(
    r"#\s*lint:\s*disable\s*=\s*"
    r"(all\b|[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)",
    re.IGNORECASE,
)

#: The observability caller-guarded pragma, whitespace- and
#: trailing-text-tolerant: ``#obs:caller-guarded``, ``#  obs:
#: caller-guarded (guard in run())`` all match.
OBS_PRAGMA_RE = re.compile(r"#\s*obs:\s*caller-guarded\b", re.IGNORECASE)

#: Canonical spelling, for messages and docs.
OBS_PRAGMA = "# obs: caller-guarded"


def disabled_ids(line):
    """Rule ids disabled on this source line (``{"ALL"}`` for ``=all``)."""
    match = DISABLE_RE.search(line)
    if not match:
        return frozenset()
    raw = match.group(1)
    if raw.lower() == "all":
        return frozenset({"ALL"})
    return frozenset(token.strip().upper() for token in raw.split(","))


def disabled_map(source):
    """``{lineno: frozenset(ids)}`` for every pragma-bearing line (1-based)."""
    out = {}
    for index, line in enumerate(source_lines(source), start=1):
        if "#" not in line:
            continue
        ids = disabled_ids(line)
        if ids:
            out[index] = ids
    return out


def has_obs_pragma(line):
    """Whether the line carries the caller-guarded observability pragma."""
    return bool(OBS_PRAGMA_RE.search(line))


def is_suppressed(finding, pragma_map):
    """Whether a per-line pragma suppresses this finding."""
    ids = pragma_map.get(finding.line)
    if not ids:
        return False
    return "ALL" in ids or finding.rule_id in ids
