"""JSON baseline: grandfathered findings that don't fail the run.

A baseline entry matches findings by *fingerprint* (rule + path +
snippet, no line number — see :class:`~repro.lint.findings.Finding`),
so grandfathered code can move within its file without churning the
baseline.  Matching is multiset-style: an entry absorbs exactly one
finding, two identical violations need two entries.

Every entry carries a ``reason``.  The baseline is for *deliberate*
exceptions; fixable findings should be fixed, not baselined (see
docs/STATIC_ANALYSIS.md for the workflow).
"""

import collections
import dataclasses
import json


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    reason: str = ""

    def to_dict(self):
        return dataclasses.asdict(self)


class Baseline:
    """A loaded baseline: entries plus the multiset matcher."""

    VERSION = 1

    def __init__(self, entries=None):
        self.entries = list(entries or [])

    @classmethod
    def from_findings(cls, findings, reason=""):
        """Grandfather the given findings (used by ``--update-baseline``)."""
        return cls(BaselineEntry(f.rule_id, f.path, f.fingerprint, reason)
                   for f in findings)

    @classmethod
    def from_dict(cls, payload):
        version = payload.get("version")
        if version != cls.VERSION:
            raise ValueError(f"unsupported baseline version {version!r}")
        return cls(BaselineEntry(
            rule=entry["rule"], path=entry["path"],
            fingerprint=entry["fingerprint"],
            reason=entry.get("reason", ""),
        ) for entry in payload.get("findings", ()))

    def to_dict(self):
        ordered = sorted(self.entries,
                         key=lambda e: (e.path, e.rule, e.fingerprint))
        return {"version": self.VERSION,
                "findings": [entry.to_dict() for entry in ordered]}

    def match(self, findings):
        """Split findings into ``(active, baselined)`` plus stale entries.

        Returns ``(active, baselined, stale)`` where ``stale`` lists
        baseline entries that matched nothing — fixed violations whose
        entries should now be deleted.
        """
        budget = collections.Counter(e.fingerprint for e in self.entries)
        active, baselined = [], []
        for finding in findings:
            if budget.get(finding.fingerprint, 0) > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        stale = []
        for entry in self.entries:
            if budget.get(entry.fingerprint, 0) > 0:
                budget[entry.fingerprint] -= 1
                stale.append(entry)
        return active, baselined, stale


def load_baseline(path):
    """Read a baseline JSON file."""
    with open(path, encoding="utf-8") as handle:
        return Baseline.from_dict(json.load(handle))


def save_baseline(path, baseline):
    """Write a baseline JSON file (stable ordering, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
