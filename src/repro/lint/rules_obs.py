"""Observability-guard rules (the ``scripts/check_trace_guards.py`` port).

Instrumentation follows the ``if sim.metrics.enabled:`` idiom so the
disabled path costs exactly one attribute check (docs/OBSERVABILITY.md).
``RL001`` is the original lint — an observability call site with no
``.enabled`` guard on the same line or within the preceding
``GUARD_WINDOW`` lines — rehosted on the engine; the legacy script is
now a thin wrapper over this module, so the regexes here are the single
source of truth.  ``RL002`` closes the suppression loophole: a
``# obs: caller-guarded`` pragma on a line with no observability call
is rot and gets flagged.
"""

import re

from repro.lint.pragmas import OBS_PRAGMA, has_obs_pragma
from repro.lint.registry import Rule, register_rule, source_lines

#: How many lines above a call site may hold its ``.enabled`` guard.
GUARD_WINDOW = 6

#: Observability call sites: the recorder attribute plus a recording
#: method.  Matches ``sim.trace.record(...)``, ``self.metrics.inc(...)``
#: and the like; plain method *definitions* never match.
CALL_RE = re.compile(
    r"\b(?:trace\.record"
    r"|metrics\.(?:inc|observe|set_gauge|counter|gauge|histogram)"
    r"|spans\.(?:record|begin|end))\("
)

#: A guard is a check of the recorder's ``enabled`` flag specifically —
#: other ``.enabled`` attributes (e.g. a PSM config) do not count.
GUARD_RE = re.compile(r"\b(?:trace|metrics|spans)\.enabled\b")


@register_rule
class ObsGuardRule(Rule):
    """RL001: every observability call site sits behind ``.enabled``."""

    id = "RL001"
    category = "obs-guard"
    severity = "error"
    description = ("observability call site with no "
                   "(trace|metrics|spans).enabled guard on the same line "
                   f"or the {GUARD_WINDOW} lines above it")
    # The obs package implements the recorders (its internals run under
    # the recorders' own ``enabled`` checks); the lint package quotes
    # the call patterns it greps for in docstrings and regexes.
    exclude = ("obs/", "lint/")

    def visit(self, tree, source, path):
        findings = []
        lines = source_lines(source)
        for index, line in enumerate(lines):
            if not CALL_RE.search(line):
                continue
            if has_obs_pragma(line):
                continue
            window = lines[max(0, index - GUARD_WINDOW):index + 1]
            if any(GUARD_RE.search(candidate) for candidate in window):
                continue
            findings.append(self.finding(
                path, index + 1,
                "unguarded observability call: wrap it in "
                "'if <sim>.<recorder>.enabled:' or mark it "
                f"'{OBS_PRAGMA}'", source))
        return findings


@register_rule
class UnusedObsPragmaRule(Rule):
    """RL002: a caller-guarded pragma must sit on an actual call site."""

    id = "RL002"
    category = "obs-guard"
    severity = "error"
    description = (f"'{OBS_PRAGMA}' pragma on a line with no "
                   "observability call — stale suppression")
    exclude = ("obs/", "lint/")

    def visit(self, tree, source, path):
        findings = []
        for index, line in enumerate(source_lines(source)):
            if has_obs_pragma(line) and not CALL_RE.search(line):
                findings.append(self.finding(
                    path, index + 1,
                    f"unused '{OBS_PRAGMA}' pragma: no observability "
                    "call on this line — delete the pragma", source))
        return findings
