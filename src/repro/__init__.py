"""repro — reproduction of *Demystifying and Puncturing the Inflated
Delay in Smartphone-based WiFi Network Measurement* (Li, Wu, Chang, Mok;
CoNEXT 2016).

The package simulates the paper's entire measurement environment — an
Android phone's layered network stack (with the SDIO bus-sleep state
machine and 802.11 adaptive PSM that inflate measured RTTs), a DCF WiFi
channel, the first-hop AP/router, a multi-sniffer testbed — and
implements **AcuteMon**, the warm-up/background-traffic scheme that
keeps the phone awake during measurement, along with every baseline
tool the paper compares against.

Quick start::

    from repro import acutemon_experiment
    result = acutemon_experiment("nexus5", emulated_rtt=0.03, count=100)
    print(result.overheads.box("dk_n"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.calibration import TimerCalibrator
from repro.core.measurement import ProbeCollector
from repro.core.overhead import decompose
from repro.core.warmup import WarmupPolicy
from repro.obs import MetricsRegistry, enable_observability
from repro.phone.profiles import PHONES, phone_profile
from repro.testbed.environment import build_environment, environment_keys
from repro.testbed.experiments import (
    acutemon_experiment,
    ping2_experiment,
    ping_experiment,
    tool_comparison,
    tool_experiment,
)
from repro.testbed.scenario import ScenarioSpec, run_scenario, tool_keys
from repro.testbed.topology import Testbed

__version__ = "1.0.0"

__all__ = [
    "AcuteMon",
    "AcuteMonConfig",
    "MetricsRegistry",
    "PHONES",
    "ProbeCollector",
    "ScenarioSpec",
    "Testbed",
    "TimerCalibrator",
    "WarmupPolicy",
    "acutemon_experiment",
    "build_environment",
    "decompose",
    "enable_observability",
    "environment_keys",
    "phone_profile",
    "ping2_experiment",
    "ping_experiment",
    "run_scenario",
    "tool_comparison",
    "tool_experiment",
    "tool_keys",
    "__version__",
]
