"""Unit helpers.

Simulation time is a ``float`` number of **seconds**.  Protocol constants
are far more readable when expressed in their native units, so the rest of
the code base goes through these helpers instead of sprinkling ``1e-3``
literals around.

The IEEE 802.11 *Time Unit* (TU) is 1024 microseconds; beacon intervals are
specified in TUs (the paper's access point uses 100 TU = 102.4 ms).
"""

#: One IEEE 802.11 Time Unit, in seconds (1024 us).
TU = 1024e-6

#: Bytes per kibibyte / mebibyte (used for payload sizing).
KIBIBYTE = 1024
MEBIBYTE = 1024 * 1024


def ms(value):
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value):
    """Convert microseconds to seconds."""
    return value * 1e-6


def tu(value):
    """Convert IEEE 802.11 Time Units to seconds."""
    return value * TU


def seconds_to_ms(value):
    """Convert seconds to milliseconds."""
    return value * 1e3


def seconds_to_us(value):
    """Convert seconds to microseconds."""
    return value * 1e6


def mbps(value):
    """Convert megabits/second to bits/second."""
    return value * 1e6


def kbps(value):
    """Convert kilobits/second to bits/second."""
    return value * 1e3


def bytes_to_bits(nbytes):
    """Convert a byte count to bits."""
    return nbytes * 8


def bits_to_bytes(nbits):
    """Convert a bit count to (possibly fractional) bytes."""
    return nbits / 8
