"""Restartable and periodic timers.

Device models in this code base are full of idle timeouts — the SDIO
demotion watchdog, the adaptive-PSM timeout, TCP retransmission — all of
which follow the same "arm, maybe restart, maybe cancel" pattern that
:class:`Timer` captures.  :class:`PeriodicTimer` covers strictly periodic
behaviour such as 802.11 beacon generation and the driver watchdog tick.
"""


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    The callback fires once, ``interval`` seconds after the most recent
    :meth:`start`/:meth:`restart`.  Restarting an armed timer moves the
    deadline; cancelling disarms it.
    """

    def __init__(self, sim, callback, label=""):
        self._sim = sim
        self._callback = callback
        self._event = None
        self.label = label

    @property
    def armed(self):
        """Whether the timer currently has a pending deadline."""
        return self._event is not None and not self._event.canceled

    @property
    def deadline(self):
        """Absolute firing time, or ``None`` when disarmed."""
        return self._event.time if self.armed else None

    def start(self, interval):
        """Arm (or re-arm) the timer to fire ``interval`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(
            interval, self._fire, label=self.label or "timer"
        )

    # ``restart`` reads better at call sites that always re-arm.
    restart = start

    def cancel(self):
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self):
        self._event = None
        self._callback()


class PeriodicTimer:
    """A strictly periodic timer.

    Fires every ``period`` seconds from the moment :meth:`start` is called
    (first firing after one full period, matching a hardware timer armed at
    boot).  Deadlines are computed from the start epoch, not from firing
    times, so callback latency cannot cause drift.

    A thin wrapper over
    :meth:`~repro.sim.scheduler.Simulator.schedule_periodic`: one armed
    :class:`~repro.sim.events.PeriodicEvent` carries the whole train, the
    scheduler re-arms it in place (batching ticks on its fast path), and
    the successor is armed *before* the callback runs so the callback can
    :meth:`stop` the timer and have that stick.
    """

    def __init__(self, sim, period, callback, label=""):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._train = None
        self.label = label

    @property
    def running(self):
        """Whether the timer is currently generating ticks."""
        return self._train is not None and not self._train.canceled

    @property
    def ticks(self):
        """Number of times the callback has fired since :meth:`start`."""
        return self._train.ticks if self._train is not None else 0

    def start(self, phase=0.0):
        """Start ticking.  ``phase`` delays the first tick (0 <= phase < period)."""
        self.stop()
        self._train = self._sim.schedule_periodic(
            self.period, self._callback, phase=phase,
            label=self.label or "periodic",
        )

    def stop(self):
        """Stop ticking.  :attr:`ticks` keeps its count until the next start."""
        if self._train is not None and not self._train.canceled:
            self._train.cancel()

    def next_deadline(self):
        """Absolute time of the next tick, or ``None`` when stopped."""
        return self._train.time if self.running else None
