"""Discrete-event simulation kernel.

Everything in :mod:`repro` runs on top of this small, deterministic
event-driven simulator.  The design goals are:

* **Determinism** — two runs with the same seed produce bit-identical
  traces.  All randomness flows through named :class:`~repro.sim.rng.RngRegistry`
  streams; wall-clock time never enters the simulation.
* **Transparency** — the scheduler is a timing wheel with an exact
  total order (see :mod:`repro.sim.scheduler`); a
  :class:`~repro.sim.trace.TraceRecorder` can capture every interesting
  transition for tests and debugging.
* **Callback style** — components schedule plain callables.  Periodic
  work uses :meth:`~repro.sim.scheduler.Simulator.schedule_periodic`
  trains (batched on the fast path); helper classes
  (:class:`~repro.sim.timers.Timer`,
  :class:`~repro.sim.timers.PeriodicTimer`) cover the recurring patterns
  used by drivers (watchdogs) and access points (beacons).
"""

from repro.sim.errors import SchedulerError, SimTimeError, SimulationError
from repro.sim.events import Event, PeriodicEvent
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceRecorder
from repro.sim.units import (
    KIBIBYTE,
    MEBIBYTE,
    TU,
    bits_to_bytes,
    bytes_to_bits,
    kbps,
    mbps,
    ms,
    seconds_to_ms,
    seconds_to_us,
    tu,
    us,
)

__all__ = [
    "Event",
    "PeriodicEvent",
    "PeriodicTimer",
    "RngRegistry",
    "SchedulerError",
    "SimTimeError",
    "SimulationError",
    "Simulator",
    "Timer",
    "TraceRecorder",
    "KIBIBYTE",
    "MEBIBYTE",
    "TU",
    "bits_to_bytes",
    "bytes_to_bits",
    "kbps",
    "mbps",
    "ms",
    "seconds_to_ms",
    "seconds_to_us",
    "tu",
    "us",
]
