"""Structured trace recording.

Components emit trace records — ``(time, category, message, fields)`` —
through the simulator's recorder.  Tests use traces to assert *why*
something happened (e.g. "the bus demoted exactly once"), and the examples
use them to narrate a measurement run.

Recording is off by default so the hot path costs a single attribute check.
Hot call sites should guard on :attr:`TraceRecorder.enabled` *before*
calling :meth:`TraceRecorder.record` — that skips the call frame and the
keyword-argument packing entirely when tracing is off::

    if sim.trace.enabled:
        sim.trace.record(sim.now, "sdio", "bus sleep", bus=self.name)

(``scripts/check_trace_guards.py`` lints that every call site keeps the
guard.)  The recorder keeps a per-category index so
``select(category=...)`` is O(matches), and counts records dropped by
the ``limit`` per category.
"""

from collections import Counter


class TraceRecord:
    """One trace entry."""

    __slots__ = ("time", "category", "message", "fields")

    def __init__(self, time, category, message, fields):
        self.time = time
        self.category = category
        self.message = message
        self.fields = fields

    def __repr__(self):
        extra = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time * 1e3:10.3f}ms] {self.category}: {self.message} {extra}".rstrip()


class TraceRecorder:
    """Collects :class:`TraceRecord` objects, optionally filtered by category."""

    __slots__ = ("enabled", "categories", "limit", "records", "dropped",
                 "dropped_by_category", "_by_category")

    def __init__(self, enabled=True, categories=None, limit=None):
        self.enabled = enabled
        self.categories = set(categories) if categories else None
        self.limit = limit
        self.records = []
        self.dropped = 0
        self.dropped_by_category = Counter()
        self._by_category = {}

    def record(self, time, category, message, **fields):
        """Store one record (honouring the category filter and limit)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            self.dropped_by_category[category] += 1
            return
        entry = TraceRecord(time, category, message, fields)
        self.records.append(entry)
        bucket = self._by_category.get(category)
        if bucket is None:
            bucket = self._by_category[category] = []
        bucket.append(entry)

    def select(self, category=None, message=None):
        """Return records matching a category and/or message substring.

        With a ``category`` the per-category index makes this O(matches)
        rather than a scan of every record.
        """
        if category is not None:
            candidates = self._by_category.get(category, [])
            if message is None:
                return list(candidates)
        else:
            candidates = self.records
        out = []
        for record in candidates:
            if message is not None and message not in record.message:
                continue
            out.append(record)
        return out

    def count(self, category=None, message=None):
        """Number of matching records."""
        if category is not None and message is None:
            return len(self._by_category.get(category, ()))
        return len(self.select(category=category, message=message))

    def summary(self, dropped=False):
        """Counter of records per category.

        With ``dropped=True``, returns ``{"recorded": Counter,
        "dropped": Counter}`` so limit-induced losses are visible next
        to what survived.
        """
        recorded = Counter({category: len(bucket)
                            for category, bucket in self._by_category.items()
                            if bucket})
        if dropped:
            return {"recorded": recorded,
                    "dropped": Counter(self.dropped_by_category)}
        return recorded

    def clear(self):
        """Drop all stored records and reset the dropped accounting."""
        self.records.clear()
        self._by_category.clear()
        self.dropped = 0
        self.dropped_by_category.clear()

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)
