"""Structured trace recording.

Components emit trace records — ``(time, category, message, fields)`` —
through the simulator's recorder.  Tests use traces to assert *why*
something happened (e.g. "the bus demoted exactly once"), and the examples
use them to narrate a measurement run.

Recording is off by default so the hot path costs a single attribute check.
Hot call sites should guard on :attr:`TraceRecorder.enabled` *before*
calling :meth:`TraceRecorder.record` — that skips the call frame and the
keyword-argument packing entirely when tracing is off::

    if sim.trace.enabled:
        sim.trace.record(sim.now, "sdio", "bus sleep", bus=self.name)
"""

from collections import Counter


class TraceRecord:
    """One trace entry."""

    __slots__ = ("time", "category", "message", "fields")

    def __init__(self, time, category, message, fields):
        self.time = time
        self.category = category
        self.message = message
        self.fields = fields

    def __repr__(self):
        extra = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time * 1e3:10.3f}ms] {self.category}: {self.message} {extra}".rstrip()


class TraceRecorder:
    """Collects :class:`TraceRecord` objects, optionally filtered by category."""

    __slots__ = ("enabled", "categories", "limit", "records", "dropped")

    def __init__(self, enabled=True, categories=None, limit=None):
        self.enabled = enabled
        self.categories = set(categories) if categories else None
        self.limit = limit
        self.records = []
        self.dropped = 0

    def record(self, time, category, message, **fields):
        """Store one record (honouring the category filter and limit)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, category, message, fields))

    def select(self, category=None, message=None):
        """Return records matching a category and/or message substring."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if message is not None and message not in record.message:
                continue
            out.append(record)
        return out

    def count(self, category=None, message=None):
        """Number of matching records."""
        return len(self.select(category=category, message=message))

    def summary(self):
        """Counter of records per category."""
        return Counter(record.category for record in self.records)

    def clear(self):
        """Drop all stored records."""
        self.records.clear()
        self.dropped = 0

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)
