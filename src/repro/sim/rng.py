"""Named, reproducible random streams.

Every stochastic component (channel backoff, promotion-delay draws, netem
jitter, ...) asks the registry for a stream by name.  Stream seeds are
derived from ``(master_seed, name)`` with a stable hash, so

* adding a new component never perturbs the draws of existing ones, and
* the same master seed always reproduces the same run.
"""

import hashlib
import random


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed=0):
        self.master_seed = master_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name):
        material = f"{self.master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def names(self):
        """Names of all streams created so far (sorted for reproducibility)."""
        return sorted(self._streams)

    def __contains__(self, name):
        return name in self._streams
