"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class SimTimeError(SimulationError):
    """An operation was scheduled in the past or with an invalid delay."""


class SchedulerError(SimulationError):
    """The scheduler was used in an invalid state (e.g. re-entrant run)."""
