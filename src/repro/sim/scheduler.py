"""The event scheduler at the heart of the simulator."""

import heapq

from repro.sim.errors import SchedulerError, SimTimeError
from repro.sim.events import Event
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns

    * the virtual clock (:attr:`now`, in seconds, starting at 0.0),
    * the pending-event heap,
    * a :class:`~repro.sim.rng.RngRegistry` so components can draw from
      named, independently seeded random streams, and
    * a :class:`~repro.sim.trace.TraceRecorder` for structured tracing.

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(0.5, handler, arg)
        sim.run(until=10.0)
    """

    def __init__(self, seed=0, trace=None):
        self._now = 0.0
        self._heap = []
        self._running = False
        self._stopped = False
        self.events_fired = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay, fn, *args, label="", **kwargs):
        """Schedule ``fn(*args, **kwargs)`` to fire ``delay`` seconds from now.

        Returns the :class:`~repro.sim.events.Event`, which can be cancelled.
        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimTimeError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn, *args, label=label, **kwargs)

    def at(self, time, fn, *args, label="", **kwargs):
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self._now:
            raise SimTimeError(
                f"cannot schedule at {time!r}; clock is already at {self._now!r}"
            )
        event = Event(time, fn, args, kwargs, label=label)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn, *args, label="", **kwargs):
        """Schedule ``fn`` for the current instant (after pending same-time events)."""
        return self.at(self._now, fn, *args, label=label, **kwargs)

    def stop(self):
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def peek(self):
        """Return the firing time of the next live event, or ``None``."""
        while self._heap and self._heap[0].canceled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self):
        """Fire exactly one event.  Returns ``False`` when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.canceled:
                continue
            self._now = event.time
            self.events_fired += 1
            event.fire()
            return True
        return False

    def run(self, until=None):
        """Run events in time order.

        With ``until`` set, the clock is advanced to exactly ``until`` when
        the heap drains early or when the next event lies beyond it (the
        event is left pending).  Without ``until``, runs until the heap is
        empty.  Returns the final clock value.
        """
        if self._running:
            raise SchedulerError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.canceled)

    def __repr__(self):
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending()} "
            f"fired={self.events_fired}>"
        )
