"""The event scheduler at the heart of the simulator.

The pending-event store is a **hierarchical timing wheel** (a
calendar-queue hybrid) instead of a single binary heap.  The paper's
delay-inflation machinery — SDIO watchdog ticks, beacon intervals,
AcuteMon background packets — produces dense trains of short fixed-delay
events, which is the workload a heap handles worst (O(log n) per event,
all comparisons in Python) and a wheel handles in ~O(1).

Geometry and ordering
---------------------

Time is divided into fixed-width buckets of ``_SLOT_SECONDS`` (1/256 s
by default); an event at time ``t`` belongs to bucket
``int(t / slot)``.  The wheel keeps a sliding window of
``_WHEEL_SLOTS`` (1024) buckets as plain append-only lists, indexed by
``bucket & mask``, with a 1024-bit occupancy bitmask for find-next-slot
in a couple of big-int operations.  Three tiers hold every pending
entry, each a ``(time, seq, event)`` tuple so heap comparisons run at C
speed:

* ``_wheel_active`` — a small binary heap of the entries at or behind
  the cursor bucket; the only tier events fire from.
* ``_wheel_slots`` — unsorted per-bucket lists for buckets strictly
  between the cursor and the window limit.
* ``_wheel_overflow`` — a far heap for buckets at/beyond the limit
  (more than ~4 s ahead); entries are pulled into slots as the window
  slides over them.

Total order is exact, not approximate: ``bucket(t)`` is a monotone
function of ``t``, so entries in later buckets fire strictly later, and
two entries at equal times always land in the same bucket where the
``(time, seq)`` heap restores FIFO scheduling order.  The slot width is
therefore purely a performance knob — every seed-determinism and
serial==parallel==resume bit-identity guarantee is independent of the
geometry (``tests/test_sim_wheel_properties.py`` checks the wheel
against a reference heap scheduler across widths).

When the active heap drains, the cursor advances directly to the next
occupied bucket (bitmask scan); when the whole near wheel is empty it
fast-forwards to the overflow head's bucket.  Cancelled events are
removed lazily exactly as before: :meth:`~repro.sim.events.Event.cancel`
bumps ``_canceled_in_heap`` and the entry is discarded when it surfaces
at the active heap's head, keeping :meth:`pending` O(1).

Periodic trains
---------------

:meth:`Simulator.schedule_periodic` arms a
:class:`~repro.sim.events.PeriodicEvent` — one allocation for the whole
train; each tick re-stamps ``(time, seq)`` in place.  On the fast path
(observability disabled, argument-free anchored callback) the scheduler
fires whole runs of ticks in a single inner loop, bounded by the current
bucket, the next competing event, and ``run(until=...)``.  The batch
aborts the moment the callback touches scheduler state (schedules,
cancels, or stops), so interaction with other events is byte-identical
to the one-tick-at-a-time path; a fresh ``seq`` is drawn per tick at the
same point it would be drawn without batching, so the deterministic
event order is unchanged.  ``events_fired`` is settled once per batch
and may read stale from inside a batched callback.
"""

import heapq
import math
import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.names import (
    SCHEDULER_EVENTS_FIRED_TOTAL,
    SCHEDULER_HANDLER_SELF_SECONDS_TOTAL,
    SCHEDULER_WHEEL_ACTIVATIONS_TOTAL,
    SCHEDULER_WHEEL_DEPTH,
    SCHEDULER_WHEEL_FAST_FORWARDS_TOTAL,
    SCHEDULER_WHEEL_OVERFLOW_PULLS_TOTAL,
)
from repro.obs.spans import SpanTracker
from repro.sim.errors import SchedulerError, SimTimeError
from repro.sim.events import _SEQ, Event, PeriodicEvent
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

#: Buckets in the near wheel; the window covers SLOTS * slot seconds.
_WHEEL_SLOTS = 1024
_WHEEL_MASK = _WHEEL_SLOTS - 1
#: Default bucket width: 1/256 s (~3.9 ms) puts microsecond-scale MAC/bus
#: events and 100 ms beacons in a ~4 s window with few overflow spills.
_SLOT_SECONDS = 1.0 / 256.0
#: Ticks a train batch may run before re-consulting the structure, once
#: its adaptive hint has grown to the cap.
_BATCH_CAP = 512


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns

    * the virtual clock (:attr:`now`, in seconds, starting at 0.0),
    * the pending-event store (a timing wheel; see the module docstring),
    * a :class:`~repro.sim.rng.RngRegistry` so components can draw from
      named, independently seeded random streams,
    * a :class:`~repro.sim.trace.TraceRecorder` for structured tracing,
    * a :class:`~repro.obs.metrics.MetricsRegistry` and a
      :class:`~repro.obs.spans.SpanTracker` (both disabled by default;
      see :func:`repro.obs.enable_observability`).

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(0.5, handler, arg)
        sim.schedule_periodic(0.1024, beacon_tick)
        sim.run(until=10.0)

    Cancelled events are removed lazily: :meth:`~repro.sim.events.Event.cancel`
    marks the event and bumps :attr:`_canceled_in_heap`, the event is
    discarded when it surfaces at the head of the active heap, and
    :meth:`pending` is the O(1) difference between the entry count and
    that counter.

    The wheel tiers (``_wheel_*`` attributes) are private to this module
    and :mod:`repro.sim.events` — lint rule RL105 rejects outside access
    so call sites can never couple to the queue representation again.
    Use :meth:`wheel_stats` for introspection.
    """

    def __init__(self, seed=0, trace=None, metrics=None, spans=None,
                 wheel_slot_seconds=None):
        slot = _SLOT_SECONDS if wheel_slot_seconds is None else wheel_slot_seconds
        if not (slot > 0.0) or not math.isfinite(slot):
            raise ValueError(f"wheel_slot_seconds must be positive, got {slot!r}")
        self._slot_seconds = slot
        self._tps = 1.0 / slot  # buckets ("ticks") per second
        self._now = 0.0
        self._wheel_slots = [[] for _ in range(_WHEEL_SLOTS)]
        self._wheel_occupied = 0  # bitmask over near-wheel slot indices
        self._wheel_active = []  # heap of entries at/behind the cursor
        self._wheel_overflow = []  # far heap, beyond the window limit
        self._wheel_cursor = 0  # absolute bucket the active heap drains
        self._wheel_limit = _WHEEL_SLOTS  # first bucket beyond the window
        self._wheel_size = 0  # entries across all three tiers
        self._canceled_in_heap = 0
        self._running = False
        self._stopped = False
        self.events_fired = 0
        self.events_canceled = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))
        self.spans = (spans if spans is not None
                      else SpanTracker(metrics=self.metrics,
                                       trace=self.trace, enabled=False))

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    # -- insertion ---------------------------------------------------------

    def schedule(self, delay, fn, *args, label="", **kwargs):
        """Schedule ``fn(*args, **kwargs)`` to fire ``delay`` seconds from now.

        Returns the :class:`~repro.sim.events.Event`, which can be cancelled.
        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimTimeError(f"negative delay {delay!r}")
        # Inlined _insert_entry(): schedule() is the hottest entry point,
        # called once per packet hop / timer tick, so it skips a call frame.
        event = Event(self._now + delay, fn, args, kwargs, label=label)
        event.owner = self
        event.in_heap = True
        t = event.time
        tick = int(t * self._tps)
        if tick <= self._wheel_cursor:
            heapq.heappush(self._wheel_active, (t, event.seq, event))
        elif tick < self._wheel_limit:
            idx = tick & _WHEEL_MASK
            slot = self._wheel_slots[idx]
            if not slot:
                self._wheel_occupied |= 1 << idx
            slot.append((t, event.seq, event))
        else:
            self._insert_far((t, event.seq, event), tick)
        self._wheel_size += 1
        return event

    def at(self, time, fn, *args, label="", **kwargs):
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self._now:
            raise SimTimeError(
                f"cannot schedule at {time!r}; clock is already at {self._now!r}"
            )
        event = Event(time, fn, args, kwargs, label=label)
        event.owner = self
        self._insert_entry(event)
        return event

    def call_soon(self, fn, *args, label="", **kwargs):
        """Schedule ``fn`` for the current instant (after pending same-time events)."""
        return self.at(self._now, fn, *args, label=label, **kwargs)

    def schedule_periodic(self, period, fn, *args, phase=0.0, first=None,
                          rearm_after=False, label="", **kwargs):
        """Arm a periodic train firing ``fn(*args, **kwargs)`` every ``period``.

        Returns the :class:`~repro.sim.events.PeriodicEvent`; cancelling
        it stops the train (also from inside its own callback).  By
        default ticks are anchored drift-free at
        ``now + phase + k * period`` for ``k >= 1`` — the first tick one
        full period out, like a hardware timer armed at boot.  ``first``
        instead pins the first tick to an absolute time, with successors
        at ``first + k * period`` (mutually exclusive with ``phase``).
        ``rearm_after=True`` selects chained re-arming: each successor is
        scheduled only after the callback returns, ``period`` after the
        tick that just fired — the semantics of a callback whose last
        statement re-schedules itself.

        Argument-free anchored trains are eligible for batched firing on
        the fast path (see the module docstring); every other shape runs
        tick-at-a-time with identical observable behaviour.
        """
        if period <= 0 or not math.isfinite(period):
            raise ValueError(f"period must be positive and finite, got {period!r}")
        if first is None:
            anchor = self._now + phase
            start = self._now + (period + phase)
            index = 1
        else:
            if phase:
                raise ValueError("pass either phase or first, not both")
            anchor = first
            start = first
            index = 0
        if start < self._now:
            raise SimTimeError(
                f"first tick at {start!r} is before the clock ({self._now!r})"
            )
        event = PeriodicEvent(start, fn, args, kwargs, label=label,
                              period=period, anchor=anchor, index=index,
                              rearm_after=rearm_after)
        event.owner = self
        self._insert_entry(event)
        return event

    def _insert_entry(self, event):
        """Place an event (``time``/``seq`` already set) into its tier."""
        event.in_heap = True
        t = event.time
        tick = int(t * self._tps)
        entry = (t, event.seq, event)
        if tick <= self._wheel_cursor:
            heapq.heappush(self._wheel_active, entry)
        elif tick < self._wheel_limit:
            idx = tick & _WHEEL_MASK
            slot = self._wheel_slots[idx]
            if not slot:
                self._wheel_occupied |= 1 << idx
            slot.append(entry)
        else:
            self._insert_far(entry, tick)
        self._wheel_size += 1

    def _insert_far(self, entry, tick):
        """Slow-path insert: beyond the window, or first insert after a drain.

        When the structure is completely empty the window is re-anchored
        at the clock's bucket first, so a long-idle simulator doesn't
        funnel routine inserts through the overflow heap.
        """
        if self._wheel_size == 0:
            cursor = int(self._now * self._tps)
            if cursor > self._wheel_cursor:
                self._wheel_cursor = cursor
            self._wheel_limit = self._wheel_cursor + _WHEEL_SLOTS
            if tick < self._wheel_limit:
                if tick <= self._wheel_cursor:
                    heapq.heappush(self._wheel_active, entry)
                else:
                    idx = tick & _WHEEL_MASK
                    slot = self._wheel_slots[idx]
                    if not slot:
                        self._wheel_occupied |= 1 << idx
                    slot.append(entry)
                return
        heapq.heappush(self._wheel_overflow, entry)

    # -- cursor ------------------------------------------------------------

    def _advance(self):
        """Advance the cursor to the next non-empty bucket and activate it.

        Called only with an empty active heap.  Returns ``False`` when no
        entries remain anywhere.  Sliding the window pulls newly-covered
        overflow entries into their slots; an empty near wheel
        fast-forwards the cursor straight to the overflow head's bucket.
        """
        occupied = self._wheel_occupied
        if occupied:
            cursor = self._wheel_cursor
            start = (cursor + 1) & _WHEEL_MASK
            hi = occupied >> start
            if hi:
                tick = cursor + 1 + ((hi & -hi).bit_length() - 1)
            else:
                lo = occupied & ((1 << start) - 1)
                tick = (cursor + 1 + (_WHEEL_SLOTS - start)
                        + ((lo & -lo).bit_length() - 1))
            fast_forward = False
        elif self._wheel_overflow:
            tick = int(self._wheel_overflow[0][0] * self._tps)
            fast_forward = True
        else:
            return False
        self._wheel_cursor = tick
        limit = tick + _WHEEL_SLOTS
        pulls = 0
        if limit > self._wheel_limit:
            self._wheel_limit = limit
            overflow = self._wheel_overflow
            if overflow:
                slots = self._wheel_slots
                tps = self._tps
                active = self._wheel_active
                heappop = heapq.heappop
                while overflow and overflow[0][0] * tps < limit:
                    entry = heappop(overflow)
                    etick = int(entry[0] * tps)
                    if etick <= tick:
                        heapq.heappush(active, entry)
                    else:
                        idx = etick & _WHEEL_MASK
                        slot = slots[idx]
                        if not slot:
                            self._wheel_occupied |= 1 << idx
                        slot.append(entry)
                    pulls += 1
        idx = tick & _WHEEL_MASK
        bucket = self._wheel_slots[idx]
        if bucket:
            self._wheel_occupied &= ~(1 << idx)
            self._wheel_slots[idx] = []
            active = self._wheel_active
            if active:
                heappush = heapq.heappush
                for entry in bucket:
                    heappush(active, entry)
            else:
                if len(bucket) > 1:
                    heapq.heapify(bucket)
                self._wheel_active = bucket
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc(SCHEDULER_WHEEL_ACTIVATIONS_TOTAL)
            metrics.set_gauge(SCHEDULER_WHEEL_DEPTH,
                              len(self._wheel_active))
            if pulls:
                metrics.counter(
                    SCHEDULER_WHEEL_OVERFLOW_PULLS_TOTAL).inc(pulls)
            if fast_forward:
                metrics.inc(  # obs: caller-guarded
                    SCHEDULER_WHEEL_FAST_FORWARDS_TOTAL)
        return True

    def _competitor_floor(self):
        """Earliest pending firing time outside the (empty) active heap.

        The exact minimum over the first occupied slot after the cursor
        (bucket monotonicity makes every other slot, and all of
        overflow, later), else the overflow head's time, else ``inf``.
        Bounds cross-bucket train batches in :meth:`_run_fast`.
        """
        occupied = self._wheel_occupied
        if occupied:
            start = (self._wheel_cursor + 1) & _WHEEL_MASK
            hi = occupied >> start
            if hi:
                idx = start + (hi & -hi).bit_length() - 1
            else:
                lo = occupied & ((1 << start) - 1)
                idx = (lo & -lo).bit_length() - 1
            return min(entry[0] for entry in self._wheel_slots[idx])
        if self._wheel_overflow:
            return self._wheel_overflow[0][0]
        return math.inf

    # -- control -----------------------------------------------------------

    def stop(self):
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def peek(self):
        """Return the firing time of the next live event, or ``None``."""
        while True:
            active = self._wheel_active
            while active:
                entry = active[0]
                if not entry[2].canceled:
                    return entry[0]
                self._discard_active_head()
            if not self._advance():
                return None

    def _discard_active_head(self):
        """Pop the (cancelled) active-heap head and settle its accounting."""
        entry = heapq.heappop(self._wheel_active)
        entry[2].in_heap = False
        self._canceled_in_heap -= 1
        self._wheel_size -= 1

    def step(self):
        """Fire exactly one event.  Returns ``False`` when nothing is pending.

        Not callable from inside :meth:`run` — a callback single-stepping
        the scheduler mid-run would fire events out from under the run
        loop.
        """
        if self._running:
            raise SchedulerError("step() is not supported during run()")
        while True:
            active = self._wheel_active
            if not active:
                if not self._advance():
                    return False
                continue
            t, _seq, event = heapq.heappop(active)
            self._wheel_size -= 1
            event.in_heap = False
            if event.canceled:
                self._canceled_in_heap -= 1
                continue
            self._now = t
            if event.__class__ is PeriodicEvent:
                self._fire_train_general(event)
            else:
                self.events_fired += 1
                if self.metrics.enabled:
                    self._fire_observed(event)
                else:
                    event.fire()
            return True

    def _fire_observed(self, event):
        """Fire one event while recording per-category scheduler metrics.

        Only reached when ``self.metrics.enabled`` — the callers keep
        the guard so the disabled path never pays for instrumentation.
        The handler self-time counter is wall-clock derived and therefore
        marked volatile (excluded from deterministic snapshots).
        """
        metrics = self.metrics
        category = event.label.partition(":")[0] or "event"
        # Deliberate wall-clock reads: handler self-time is host-CPU
        # cost, not simulated time, and feeds a volatile-marked counter
        # that deterministic snapshots exclude.
        start = time.perf_counter()  # lint: disable=RL101 (volatile self-time)
        event.fire()
        elapsed = time.perf_counter() - start  # lint: disable=RL101 (volatile self-time)
        metrics.inc(SCHEDULER_EVENTS_FIRED_TOTAL,  # obs: caller-guarded
                    labels={"category": category})
        metrics.counter(SCHEDULER_HANDLER_SELF_SECONDS_TOTAL,  # obs: caller-guarded
                        labels={"category": category},
                        volatile=True).inc(elapsed)

    def _fire_train_general(self, event):
        """Fire one train tick and re-arm it — the unbatched path.

        Used whenever batching doesn't apply (observability on, carried
        arguments, chained re-arm, or a competing event inside the same
        bucket).  Anchored trains draw the successor's ``seq`` and insert
        it *before* the callback, chained trains after — each matching
        the event order of the equivalent self-rescheduling callback.
        """
        event.ticks += 1
        if event.rearm_after:
            self.events_fired += 1
            if self.metrics.enabled:
                self._fire_observed(event)
            else:
                event.fire()
            if not event.canceled:
                event.time = self._now + event.period
                event.seq = next(_SEQ)
                self._insert_entry(event)
            return
        event.index += 1
        event.time = event.anchor + event.index * event.period
        event.seq = next(_SEQ)
        self._insert_entry(event)
        self.events_fired += 1
        if self.metrics.enabled:
            self._fire_observed(event)
        else:
            event.fire()

    # -- run loops ---------------------------------------------------------

    def run(self, until=None):
        """Run events in time order.

        Without ``until``, runs until nothing is pending.  With ``until``
        set, the boundary is **inclusive**: every event whose firing time
        is ``<= until`` fires — including events scheduled *at* exactly
        ``until``, and any same-instant events they go on to schedule —
        while events strictly beyond ``until`` are left pending.  After the
        loop the clock is advanced to exactly ``until`` if it isn't there
        already, so ``run(until=t)`` always returns with ``now == t`` (or
        later, if a fired event was already at ``t``).  Returns the final
        clock value.
        """
        if self._running:
            raise SchedulerError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            # Observability dispatch happens once per run(), not once per
            # event, so the disabled path is exactly the fast loop.
            if self.metrics.enabled:
                self._run_observed(until)
            else:
                self._run_fast(until)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _run_fast(self, until):
        until_ = math.inf if until is None else until
        heappop = heapq.heappop
        next_seq = _SEQ.__next__
        tps = self._tps
        # The loop body is a manually fused peek()+step(): one pop per
        # event, no property reads, and train ticks batched in place.
        while not self._stopped:
            active = self._wheel_active
            if not active:
                if not self._advance():
                    return
                continue
            entry = active[0]
            event = entry[2]
            if event.canceled:
                heappop(active)
                event.in_heap = False
                self._canceled_in_heap -= 1
                self._wheel_size -= 1
                continue
            t = entry[0]
            if t > until_:
                return
            heappop(active)
            self._wheel_size -= 1
            event.in_heap = False
            self._now = t
            if event.__class__ is not PeriodicEvent:
                self.events_fired += 1
                if event.kwargs:
                    event.fn(*event.args, **event.kwargs)
                else:
                    event.fn(*event.args)
                continue
            # ---- periodic train tick ----
            if event.rearm_after or event.args or event.kwargs:
                self._fire_train_general(event)
                continue
            # Batched firing: run consecutive ticks in one C-level loop,
            # bounded by the next competing event and the (inclusive)
            # run boundary.  With competitors in the active heap the
            # batch also stops at the current bucket's edge; with the
            # heap empty it may run across buckets up to the exact
            # earliest entry anywhere else in the wheel.  The
            # size/cancel/stop check after each callback ends the batch
            # on any scheduler interaction, which keeps interleaving
            # exact.
            anchor = event.anchor
            period = event.period
            index = event.index
            hint = event.batch_hint
            if active:
                cursor = self._wheel_cursor
                head_t = active[0][0]
                bound = head_t if head_t < until_ else until_
                slot_end = (cursor + 1) / tps
                if slot_end < bound:
                    bound = slot_end
                barrier = None
            else:
                barrier = self._competitor_floor()
                bound = barrier if barrier < until_ else until_
            if bound == math.inf:
                # Unbounded run of a sole train: batch by hint alone.
                n = hint
            else:
                n = int((bound - anchor) / period) - index + 1
                if n > hint:
                    n = hint
            if n < 2:
                self._fire_train_general(event)
                continue
            times = [anchor + i * period for i in range(index, index + n)]
            times[0] = t  # the popped entry's exact time, never recomputed
            # The arithmetic bound can overshoot by an ulp; trim with the
            # exact per-tick conditions (monotone in t, so tail-only).
            if barrier is None:
                while times:
                    tl = times[-1]
                    if tl > until_ or tl >= head_t or int(tl * tps) > cursor:
                        times.pop()
                    else:
                        break
            else:
                while times:
                    tl = times[-1]
                    if tl > until_ or tl >= barrier:
                        times.pop()
                    else:
                        break
            if len(times) < 2:
                self._fire_train_general(event)
                continue
            fn = event.fn
            size0 = self._wheel_size
            canceled0 = self.events_canceled
            fired = 0
            seq = 0
            interrupted = False
            try:
                for t2 in times:
                    # Draw the successor's seq before the callback, where
                    # the unbatched path would draw it.
                    seq = next_seq()
                    self._now = t2
                    fired += 1
                    fn()
                    if (self._wheel_size != size0
                            or self.events_canceled != canceled0
                            or self._stopped):
                        interrupted = True
                        break
            finally:
                # Settle accounting even if the callback raised, leaving
                # the same state the unbatched path would have: the tick
                # counted and the successor armed.
                self.events_fired += fired
                event.ticks += fired
                event.index = index + fired
                if not event.canceled:
                    event.time = anchor + event.index * period
                    event.seq = seq
                    self._insert_entry(event)
                if interrupted or fired != len(times):
                    event.batch_hint = 4
                elif hint < _BATCH_CAP:
                    event.batch_hint = hint * 2

    def _run_observed(self, until):
        """The event loop plus per-event scheduler metrics (opt-in).

        Trains run tick-at-a-time here so every tick records its span
        and metric exactly once, in serial, parallel, and resumed
        campaigns alike.
        """
        until_ = math.inf if until is None else until
        heappop = heapq.heappop
        while not self._stopped:
            active = self._wheel_active
            if not active:
                if not self._advance():
                    return
                continue
            entry = active[0]
            event = entry[2]
            if event.canceled:
                heappop(active)
                event.in_heap = False
                self._canceled_in_heap -= 1
                self._wheel_size -= 1
                continue
            t = entry[0]
            if t > until_:
                return
            heappop(active)
            self._wheel_size -= 1
            event.in_heap = False
            self._now = t
            if event.__class__ is PeriodicEvent:
                self._fire_train_general(event)
            else:
                self.events_fired += 1
                self._fire_observed(event)

    # -- introspection -----------------------------------------------------

    def pending(self):
        """Number of live (non-cancelled) events still queued.

        O(1): the entry count across all wheel tiers minus the
        lazily-deleted cancelled events still parked in them.
        """
        return self._wheel_size - self._canceled_in_heap

    def wheel_stats(self):
        """A snapshot of wheel internals (for tests, docs, and debugging).

        This is the supported introspection surface — reaching into the
        ``_wheel_*`` tiers directly is rejected by lint rule RL105.
        """
        return {
            "cursor": self._wheel_cursor,
            "limit": self._wheel_limit,
            "active_depth": len(self._wheel_active),
            "occupied_slots": bin(self._wheel_occupied).count("1"),
            "overflow_depth": len(self._wheel_overflow),
            "entries": self._wheel_size,
            "slot_seconds": self._slot_seconds,
        }

    def __repr__(self):
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending()} "
            f"fired={self.events_fired}>"
        )
