"""The event scheduler at the heart of the simulator."""

import heapq
import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracker
from repro.sim.errors import SchedulerError, SimTimeError
from repro.sim.events import Event
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns

    * the virtual clock (:attr:`now`, in seconds, starting at 0.0),
    * the pending-event heap,
    * a :class:`~repro.sim.rng.RngRegistry` so components can draw from
      named, independently seeded random streams,
    * a :class:`~repro.sim.trace.TraceRecorder` for structured tracing,
    * a :class:`~repro.obs.metrics.MetricsRegistry` and a
      :class:`~repro.obs.spans.SpanTracker` (both disabled by default;
      see :func:`repro.obs.enable_observability`).

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(0.5, handler, arg)
        sim.run(until=10.0)

    Cancelled events are removed lazily: :meth:`~repro.sim.events.Event.cancel`
    marks the event and bumps :attr:`_canceled_in_heap`, the event is
    discarded whenever it reaches the top of the heap, and :meth:`pending`
    is the O(1) difference between the heap size and that counter.
    """

    def __init__(self, seed=0, trace=None, metrics=None, spans=None):
        self._now = 0.0
        self._heap = []
        self._canceled_in_heap = 0
        self._running = False
        self._stopped = False
        self.events_fired = 0
        self.events_canceled = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))
        self.spans = (spans if spans is not None
                      else SpanTracker(metrics=self.metrics,
                                       trace=self.trace, enabled=False))

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay, fn, *args, label="", **kwargs):
        """Schedule ``fn(*args, **kwargs)`` to fire ``delay`` seconds from now.

        Returns the :class:`~repro.sim.events.Event`, which can be cancelled.
        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimTimeError(f"negative delay {delay!r}")
        # Inlined self.at(): schedule() is the hottest entry point, called
        # once per packet hop / timer tick, so it skips a call frame.
        event = Event(self._now + delay, fn, args, kwargs, label=label)
        event.owner = self
        event.in_heap = True
        heapq.heappush(self._heap, event)
        return event

    def at(self, time, fn, *args, label="", **kwargs):
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self._now:
            raise SimTimeError(
                f"cannot schedule at {time!r}; clock is already at {self._now!r}"
            )
        event = Event(time, fn, args, kwargs, label=label)
        event.owner = self
        event.in_heap = True
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn, *args, label="", **kwargs):
        """Schedule ``fn`` for the current instant (after pending same-time events)."""
        return self.at(self._now, fn, *args, label=label, **kwargs)

    def stop(self):
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def _discard_head(self):
        """Pop the (cancelled) head event and settle its accounting."""
        event = heapq.heappop(self._heap)
        event.in_heap = False
        self._canceled_in_heap -= 1

    def peek(self):
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0].canceled:
            self._discard_head()
        return heap[0].time if heap else None

    def step(self):
        """Fire exactly one event.  Returns ``False`` when the heap is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            event.in_heap = False
            if event.canceled:
                self._canceled_in_heap -= 1
                continue
            self._now = event.time
            self.events_fired += 1
            if self.metrics.enabled:
                self._fire_observed(event)
            else:
                event.fire()
            return True
        return False

    def _fire_observed(self, event):
        """Fire one event while recording per-category scheduler metrics.

        Only reached when ``self.metrics.enabled`` — the callers keep
        the guard so the disabled path never pays for instrumentation.
        The handler self-time counter is wall-clock derived and therefore
        marked volatile (excluded from deterministic snapshots).
        """
        metrics = self.metrics
        category = event.label.partition(":")[0] or "event"
        # Deliberate wall-clock reads: handler self-time is host-CPU
        # cost, not simulated time, and feeds a volatile-marked counter
        # that deterministic snapshots exclude.
        start = time.perf_counter()  # lint: disable=RL101 (volatile self-time)
        event.fire()
        elapsed = time.perf_counter() - start  # lint: disable=RL101 (volatile self-time)
        metrics.inc("scheduler_events_fired_total",  # obs: caller-guarded
                    labels={"category": category})
        metrics.counter("scheduler_handler_self_seconds_total",  # obs: caller-guarded
                        labels={"category": category},
                        volatile=True).inc(elapsed)

    def run(self, until=None):
        """Run events in time order.

        Without ``until``, runs until the heap is empty.  With ``until``
        set, the boundary is **inclusive**: every event whose firing time
        is ``<= until`` fires — including events scheduled *at* exactly
        ``until``, and any same-instant events they go on to schedule —
        while events strictly beyond ``until`` are left pending.  After the
        loop the clock is advanced to exactly ``until`` if it isn't there
        already, so ``run(until=t)`` always returns with ``now == t`` (or
        later, if a fired event was already at ``t``).  Returns the final
        clock value.
        """
        if self._running:
            raise SchedulerError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            # Observability dispatch happens once per run(), not once per
            # event, so the disabled path is exactly the fast loop.
            if self.metrics.enabled:
                self._run_observed(until)
            else:
                self._run_fast(until)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _run_fast(self, until):
        heap = self._heap
        heappop = heapq.heappop
        # The loop body is a manually fused peek()+step(): one pop per
        # event instead of a scan-then-pop pair, no property reads.
        while not self._stopped and heap:
            event = heap[0]
            if event.canceled:
                self._discard_head()
                continue
            if until is not None and event.time > until:
                break
            heappop(heap)
            event.in_heap = False
            self._now = event.time
            self.events_fired += 1
            if event.kwargs:
                event.fn(*event.args, **event.kwargs)
            else:
                event.fn(*event.args)

    def _run_observed(self, until):
        """The fast loop plus per-event scheduler metrics (opt-in)."""
        heap = self._heap
        heappop = heapq.heappop
        while not self._stopped and heap:
            event = heap[0]
            if event.canceled:
                self._discard_head()
                continue
            if until is not None and event.time > until:
                break
            heappop(heap)
            event.in_heap = False
            self._now = event.time
            self.events_fired += 1
            self._fire_observed(event)

    def pending(self):
        """Number of live (non-cancelled) events still queued.

        O(1): the heap length minus the lazily-deleted cancelled events
        still parked in it.
        """
        return len(self._heap) - self._canceled_in_heap

    def __repr__(self):
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending()} "
            f"fired={self.events_fired}>"
        )
