"""Scheduled events.

An :class:`Event` is a callable bound to a firing time.  Events sort by
``(time, seq)`` where ``seq`` is a monotonically increasing tie-breaker:
two events scheduled for the same instant fire in scheduling order, which
keeps runs deterministic without comparing callbacks.

Events are the single hottest allocation in the simulator — every packet
hop, timer tick, and backoff slot creates one — so the class is slotted,
keeps an empty-kwargs fast path in :meth:`fire`, and carries the two
bookkeeping fields (``owner``, ``in_heap``) that let the scheduler keep
an O(1) live-event count under lazy heap deletion.
"""

import itertools

from repro.obs.names import SCHEDULER_EVENTS_CANCELED_TOTAL

_SEQ = itertools.count()


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.scheduler.Simulator.schedule`
    and friends; user code normally only keeps a reference in order to call
    :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "canceled", "label",
                 "owner", "in_heap")

    def __init__(self, time, fn, args=(), kwargs=None, label=""):
        self.time = time
        self.seq = next(_SEQ)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.canceled = False
        self.label = label
        # Scheduler bookkeeping (see Simulator): the owning scheduler and
        # whether the event currently sits in its heap.  Together they let
        # cancel() maintain the scheduler's canceled-in-heap counter so
        # pending() never has to scan the heap.
        self.owner = None
        self.in_heap = False

    def cancel(self):
        """Mark the event so the scheduler skips it.

        Cancelling is O(1); the event stays in the heap and is discarded
        when popped.  Cancelling an already-fired or already-cancelled
        event is a harmless no-op.
        """
        if self.canceled:
            return
        self.canceled = True
        owner = self.owner
        if owner is not None:
            if self.in_heap:
                owner._canceled_in_heap += 1
            owner.events_canceled += 1
            if owner.metrics.enabled:
                owner.metrics.inc(
                    SCHEDULER_EVENTS_CANCELED_TOTAL,
                    labels={"category": self.label.partition(":")[0]
                            or "event"})

    def fire(self):
        """Invoke the callback (scheduler use only)."""
        if self.kwargs:
            self.fn(*self.args, **self.kwargs)
        else:
            self.fn(*self.args)

    def __lt__(self, other):
        # Hand-rolled instead of tuple comparison: this runs O(log n)
        # times per heap operation and avoids two tuple allocations.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = "canceled" if self.canceled else "pending"
        name = self.label or getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} [{state}]>"


class PeriodicEvent(Event):
    """One periodic train: a single event the scheduler re-arms in place.

    Created by :meth:`repro.sim.scheduler.Simulator.schedule_periodic`.
    Instead of allocating a fresh :class:`Event` per tick, the scheduler
    re-stamps ``time`` and ``seq`` after each firing — and, on its fast
    path, runs whole slot-sized batches of ticks in one inner loop.
    :meth:`Event.cancel` stops the train exactly like cancelling a
    one-shot event, including from inside the train's own callback.

    Two re-arm disciplines exist:

    * anchored (``rearm_after=False``, the default): tick ``i`` fires at
      ``anchor + i * period``, so callback latency can never cause
      drift, and the successor's ``seq`` is drawn *before* the callback
      runs — the same observable order as a callback that re-schedules
      itself first thing.
    * chained (``rearm_after=True``): the successor is armed *after*
      the callback returns, at ``now + period``, matching a callback
      that re-schedules itself as its last statement.
    """

    __slots__ = ("period", "anchor", "index", "ticks", "rearm_after",
                 "batch_hint")

    def __init__(self, time, fn, args=(), kwargs=None, label="",
                 period=0.0, anchor=0.0, index=0, rearm_after=False):
        super().__init__(time, fn, args, kwargs, label=label)
        self.period = period
        self.anchor = anchor
        #: Grid index of the currently-armed tick (anchored mode).
        self.index = index
        #: Number of times the callback has fired since creation.
        self.ticks = 0
        self.rearm_after = rearm_after
        #: Adaptive batch chunk size, tuned by the scheduler: grown while
        #: batches complete untouched, reset when callbacks interact with
        #: the scheduler (which ends a batch early).
        self.batch_hint = 4

    def __repr__(self):
        state = "canceled" if self.canceled else "running"
        name = self.label or getattr(self.fn, "__qualname__", repr(self.fn))
        return (f"<PeriodicEvent t={self.time:.6f} period={self.period:.6f} "
                f"ticks={self.ticks} {name} [{state}]>")
