"""Scheduled events.

An :class:`Event` is a callable bound to a firing time.  Events sort by
``(time, seq)`` where ``seq`` is a monotonically increasing tie-breaker:
two events scheduled for the same instant fire in scheduling order, which
keeps runs deterministic without comparing callbacks.
"""

import itertools

_SEQ = itertools.count()


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.scheduler.Simulator.schedule`
    and friends; user code normally only keeps a reference in order to call
    :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "canceled", "label")

    def __init__(self, time, fn, args=(), kwargs=None, label=""):
        self.time = time
        self.seq = next(_SEQ)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or {}
        self.canceled = False
        self.label = label

    def cancel(self):
        """Mark the event so the scheduler skips it.

        Cancelling is O(1); the event stays in the heap and is discarded
        when popped.  Cancelling an already-fired or already-cancelled
        event is a harmless no-op.
        """
        self.canceled = True

    def fire(self):
        """Invoke the callback (scheduler use only)."""
        self.fn(*self.args, **self.kwargs)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "canceled" if self.canceled else "pending"
        name = self.label or getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} [{state}]>"
