"""Command-line interface: ``python -m repro <command>``.

Runs scaled-down versions of the paper's experiments and prints the same
reports the benchmark suite produces.  The full-size regenerations live
in ``benchmarks/`` (``pytest benchmarks/ --benchmark-only``); the CLI is
for quick interactive exploration.
"""

import argparse
import statistics
import sys

from repro.analysis.cdf import Cdf
from repro.analysis.render import (
    Table, fmt_mean_ci, render_boxplot_row, render_cdf,
)
from repro.analysis.stats import SummaryStats
from repro.phone.profiles import PHONES
from repro.testbed.environment import environment_keys
from repro.testbed.experiments import (
    acutemon_experiment, ping2_experiment, ping_experiment, tool_comparison,
)
from repro.testbed.scenario import tool_keys


def cmd_table2(args):
    table = Table(["Phone", "RTT", "Intv.", "du (ms)", "dk (ms)", "dn (ms)"],
                  title="Multi-layer ping RTTs (Table 2 shape)")
    for phone in ("nexus4", "nexus5"):
        for rtt_ms in (30, 60):
            for label, interval in (("10ms", 0.010), ("1s", 1.0)):
                result = ping_experiment(
                    phone, emulated_rtt=rtt_ms * 1e-3, interval=interval,
                    count=args.count, seed=args.seed)
                stats = {layer: SummaryStats(result.layers[layer])
                         for layer in ("du", "dk", "dn")}
                table.add_row(phone, f"{rtt_ms}ms", label,
                              fmt_mean_ci(stats["du"]),
                              fmt_mean_ci(stats["dk"]),
                              fmt_mean_ci(stats["dn"]))
    print(table)


def cmd_table3(args):
    table = Table(["Type", "Bus sleep", "Interval", "Min", "Mean", "Max"],
                  title="Driver delays dvsend/dvrecv in ms (Table 3 shape)")
    for enabled in (True, False):
        for label, interval in (("10ms", 0.010), ("1s", 1.0)):
            result = ping_experiment(
                "nexus5", emulated_rtt=0.060, interval=interval,
                count=args.count, seed=args.seed, bus_sleep=enabled)
            for kind in ("send", "recv"):
                stats = SummaryStats(result.phone.driver.samples_of(kind))
                table.add_row(f"dv{kind}",
                              "Enabled" if enabled else "Disabled", label,
                              f"{stats.minimum * 1e3:.3f}",
                              f"{stats.mean * 1e3:.3f}",
                              f"{stats.maximum * 1e3:.3f}")
    print(table)


def cmd_table5(args):
    table = Table(["Phone", "20ms", "50ms", "85ms", "135ms"],
                  title="AcuteMon actual nRTT dn, mean±CI ms (Table 5 shape)")
    for phone in PHONES:
        cells = []
        for rtt_ms in (20, 50, 85, 135):
            result = acutemon_experiment(
                phone, emulated_rtt=rtt_ms * 1e-3, count=args.count,
                seed=args.seed)
            cells.append(fmt_mean_ci(SummaryStats(result.layers["dn"])))
        table.add_row(phone, *cells)
    print(table)


def cmd_overheads(args):
    print("AcuteMon overheads per emulated RTT (Figure 7 shape)")
    for rtt_ms in (20, 50, 85, 135):
        result = acutemon_experiment(
            args.phone, emulated_rtt=rtt_ms * 1e-3, count=args.count,
            seed=args.seed)
        print(render_boxplot_row(f"{rtt_ms}ms du_k", result.overheads.box("du_k")))
        print(render_boxplot_row(f"{rtt_ms}ms dk_n", result.overheads.box("dk_n")))


def cmd_compare(args):
    results = tool_comparison(
        args.phone, emulated_rtt=args.rtt * 1e-3, count=args.count,
        seed=args.seed, cross_traffic=args.cross_traffic)
    print(f"Tool comparison on {args.phone}, emulated RTT {args.rtt} ms"
          f"{' with cross traffic' if args.cross_traffic else ''} "
          "(Figure 8 shape, ms)")
    for name, rtts in results.items():
        print(render_cdf(Cdf(rtts), label=name))


def cmd_ping2(args):
    print("ping2 vs AcuteMon median error (ms) across path lengths")
    for rtt_ms in (20, 50, 85, 135):
        rtt = rtt_ms * 1e-3
        ping2 = ping2_experiment(args.phone, emulated_rtt=rtt,
                                 count=args.count, seed=args.seed)
        acute = acutemon_experiment(args.phone, emulated_rtt=rtt,
                                    count=args.count, seed=args.seed)
        ping2_err = statistics.median(ping2.tool.rtts()) - rtt
        acute_err = statistics.median(acute.user_rtts) - rtt
        print(f"  {rtt_ms:4d}ms: ping2 {ping2_err * 1e3:+6.2f}   "
              f"acutemon {acute_err * 1e3:+6.2f}")


def cmd_campaign(args):
    from repro.analysis.decompose import decompose_campaign, write_report
    from repro.obs import write_snapshot
    from repro.testbed.campaign import Campaign

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH")
        return 2
    if args.shards is not None and args.workers != 1:
        print("error: --shards and --workers are mutually exclusive "
              "(the shard transport sizes its own pool)")
        return 2
    campaign = Campaign(
        envs=tuple(args.env),
        phones=tuple(args.phones), rtts=tuple(r * 1e-3 for r in args.rtts),
        tools=tuple(args.tools), count=args.count, base_seed=args.seed,
    )
    workers = args.workers if args.workers > 0 else None
    verb = "running" if workers == 1 and args.shards is None else "finished"
    campaign.run(
        workers=workers,
        collect_metrics=bool(args.metrics_out or args.report_out),
        checkpoint=args.checkpoint, resume=args.resume,
        cell_timeout=args.cell_timeout, retries=args.retries,
        retry_backoff=args.retry_backoff,
        shards=args.shards, store=args.store,
        progress=lambda spec: print(f"  {verb} {spec.describe()}..."))
    table = Table(["Env", "Phone", "RTT", "Tool", "median (ms)",
                   "error (ms)", "n"],
                  title="Campaign results")
    for result in campaign.results:
        stats = result.summary()
        table.add_row(result.env, result.phone,
                      f"{result.rtt * 1e3:.0f}ms",
                      result.tool, f"{stats.median * 1e3:.2f}",
                      f"{result.error() * 1e3:.2f}", stats.n)
    print(table)
    if campaign.run_metrics is not None:
        counters = {metric["name"]: metric["value"]
                    for metric in campaign.run_metrics["metrics"]}
        resumed = counters.get("campaign.cells_resumed", 0)
        retries = counters.get("campaign.retries", 0)
        if resumed or retries:
            print(f"resumed {resumed} cell(s) from checkpoint, "
                  f"{retries} retr{'y' if retries == 1 else 'ies'}")
        hits = counters.get("campaign.cache_hits", 0)
        misses = counters.get("campaign.cache_misses", 0)
        stolen = counters.get("campaign.shards_stolen", 0)
        if args.store:
            print(f"store cache: {hits} hit(s), {misses} miss(es)")
        if args.shards is not None:
            planned = counters.get("campaign.shards_planned", 0)
            print(f"shards: {planned} dispatched, {stolen} stolen")
    if campaign.quarantine:
        bad = Table(["Env", "Phone", "RTT", "Tool", "kind", "attempts",
                     "error"],
                    title="Quarantined cells")
        for failure in campaign.quarantine:
            bad.add_row(failure.env, failure.phone,
                        f"{failure.rtt * 1e3:.0f}ms", failure.tool,
                        failure.kind, failure.attempts, failure.error)
        print(bad)
    if args.out:
        campaign.save(args.out)
        print(f"saved to {args.out}")
    if args.metrics_out:
        merged = campaign.merged_metrics()
        fmt = write_snapshot(args.metrics_out, merged)
        print(f"wrote merged metrics ({fmt}) to {args.metrics_out}")
    if args.report_out:
        report = decompose_campaign(campaign)
        if report is None:
            print("no decomposition data (no observed probes completed)")
        else:
            fmt = write_report(args.report_out, report)
            print(f"wrote decomposition report ({fmt}) to {args.report_out}")
    # A sweep that quarantined cells is incomplete: exit nonzero so CI
    # and shell pipelines notice (the tables above still show the rest).
    return 1 if campaign.quarantine else 0


def cmd_cache(args):
    from repro.testbed.store import ResultStore

    store = ResultStore(args.store)
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"store {stats['path']}: {stats['live']} live cell(s), "
              f"{stats['records']} record(s) in {stats['segments']} "
              f"segment(s), {stats['bytes']} bytes")
        if stats["skipped"]:
            print(f"  {stats['skipped']} unreadable/stale line(s) skipped")
        return 0
    summary = store.gc()
    print(f"gc: kept {summary['live']} live cell(s), removed "
          f"{summary['removed_segments']} segment(s), dropped "
          f"{summary['dropped']} stale or superseded record(s)")
    return 0


def cmd_report(args):
    from repro.analysis.decompose import decompose_campaign, render_report
    from repro.testbed.campaign import Campaign

    campaign = Campaign.load(args.campaign)
    report = decompose_campaign(campaign)
    if report is None:
        print("error: no decomposition data in this campaign — re-run "
              "with `repro campaign --metrics-out/--report-out` so cells "
              "record metrics")
        return 1
    text = render_report(report, args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_obs(args):
    from repro.obs import write_chrome_trace, write_snapshot
    from repro.testbed.experiments import tool_experiment

    result = tool_experiment(
        args.tool, args.phone, emulated_rtt=args.rtt * 1e-3,
        count=args.count, seed=args.seed, observe=True)
    snapshot = result.metrics_snapshot()
    sim = result.testbed.sim
    print(f"observed one {args.tool} cell on {args.phone} @ "
          f"{args.rtt:.0f}ms: {sim.events_fired} events fired, "
          f"{len(sim.spans)} spans, {len(sim.trace.records)} trace records")
    for metric in sim.metrics.metrics():
        if metric.kind != "histogram" or not metric.count:
            continue
        labels = "".join(f" {k}={v}" for k, v in sorted(metric.labels))
        print(f"  {metric.name}{labels}: n={metric.count} "
              f"p50={metric.p50 * 1e3:.3f}ms p95={metric.p95 * 1e3:.3f}ms "
              f"p99={metric.p99 * 1e3:.3f}ms")
    if args.out:
        prefix = args.out
        written = [
            write_snapshot(f"{prefix}.prom", snapshot),
            write_snapshot(f"{prefix}.jsonl", snapshot),
        ]
        write_chrome_trace(f"{prefix}.trace.json", sim.spans)
        written.append("chrome-trace")
        print(f"wrote {prefix}.prom, {prefix}.jsonl and {prefix}.trace.json "
              f"({', '.join(written)})")


def cmd_scenario(args):
    from repro.testbed.environment import ENVIRONMENTS, environment_keys
    from repro.testbed.scenario import TOOLS, ScenarioSpec, run_scenario

    if args.scenario_command == "list":
        envs = Table(["Key", "Capabilities", "Description"],
                     title="Environments")
        for key in environment_keys():
            entry = ENVIRONMENTS[key]
            envs.add_row(key, ", ".join(sorted(entry.capabilities)) or "-",
                         entry.description)
        print(envs)
        tools = Table(["Key", "Side", "Description"], title="Tools")
        for key in sorted(TOOLS):
            entry = TOOLS[key]
            tools.add_row(key, entry.side, entry.description)
        print(tools)
        print("Phones: " + ", ".join(sorted(PHONES)))
        return

    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    else:
        spec = ScenarioSpec(
            env=args.env, phone=args.phone, tool=args.tool,
            emulated_rtt=args.rtt * 1e-3, count=args.count,
            interval=args.interval, seed=args.seed,
            cross_traffic=args.cross_traffic,
            bus_sleep=not args.no_bus_sleep, observe=args.observe,
        )
    if args.save_spec:
        with open(args.save_spec, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json(indent=2) + "\n")
        print(f"saved spec to {args.save_spec}")
    print(f"running {spec.describe()} (seed {spec.seed})")
    result = run_scenario(spec)
    rtts = result.user_rtts
    stats = SummaryStats(rtts)
    lost = len(result.samples) - len(rtts)
    print(f"  probes: {len(result.samples)} ({lost} lost)")
    print(f"  user RTT: median {stats.median * 1e3:.2f}ms "
          f"mean {stats.mean * 1e3:.2f}ms "
          f"[{stats.minimum * 1e3:.2f}, {stats.maximum * 1e3:.2f}]")
    print(f"  error vs emulated: "
          f"{(stats.median - spec.emulated_rtt) * 1e3:+.2f}ms")
    if spec.observe:
        sim = result.testbed.sim
        print(f"  observed: {sim.events_fired} events fired, "
              f"{len(sim.spans)} spans, "
              f"{len(sim.trace.records)} trace records")


def cmd_lint(args):
    import pathlib

    import repro
    from repro.lint import (
        Baseline, LintResult, apply_baseline, load_baseline, render,
        run_lint, save_baseline,
    )

    if args.paths:
        roots = [pathlib.Path(path) for path in args.paths]
        # Explicit paths get the static rules only: the registry
        # contract is process-global, not a property of those files.
        include_project = False
    else:
        roots = [pathlib.Path(repro.__file__).resolve().parents[1]]
        include_project = True
    result = LintResult()
    for index, root in enumerate(roots):
        result.merge(run_lint(
            root, include_project_rules=include_project and index == 0))
    if args.update_baseline:
        if not args.baseline:
            print("--update-baseline requires --baseline PATH")
            return 2
        save_baseline(args.baseline, Baseline.from_findings(
            result.findings, reason="grandfathered via --update-baseline; "
                                    "add a real reason"))
        print(f"wrote baseline with {len(result.findings)} entrie(s) to "
              f"{args.baseline}")
        return 0
    if args.baseline:
        apply_baseline(result, load_baseline(args.baseline))
    print(render(result, args.format))
    return result.exit_code


def cmd_analytic(args):
    from repro.analysis.analytic import predict_for_profile
    from repro.sim.units import tu

    prediction = predict_for_profile(
        args.phone,
        beacon_interval=tu(args.beacon_interval_tu),
        offered_load=args.load,
        base_rtt=args.rtt * 1e-3,
        listen_interval=args.listen_interval,
    )
    print(f"Closed-form PSM predictions for {prediction['phone']} "
          "(docs/ANALYTIC.md)")
    table = Table(["Quantity", "Value"], title=None)
    rows = (
        ("beacon interval", f"{prediction['beacon_interval'] * 1e3:.1f}ms"),
        ("listen interval L", prediction["listen_interval"]),
        ("offered load", f"{prediction['offered_load']:g}/s"),
        ("Tip (PSM timeout)", f"{prediction['tip'] * 1e3:.0f}ms"),
        ("Tis (bus idle)", f"{prediction['tis'] * 1e3:.0f}ms"),
        ("Tprom (bus wake)", f"{prediction['tprom'] * 1e3:.1f}ms"),
        ("listen period", f"{prediction['psm_listen_period'] * 1e3:.1f}ms"),
        ("mean beacon wait",
         f"{prediction['psm_mean_beacon_wait'] * 1e3:.1f}ms"),
        ("P(dozing)", f"{prediction['psm_doze_probability']:.3f}"),
        ("P(bus asleep)", f"{prediction['bus_sleep_probability']:.3f}"),
        ("mean delay E[du]", f"{prediction['psm_mean_delay'] * 1e3:.1f}ms"),
    )
    for label, value in rows:
        table.add_row(label, value)
    print(table)


def cmd_phones(_args):
    table = Table(["Key", "Model", "WNIC", "Tis", "Tip", "L assoc"],
                  title="Phone profiles (Table 1 + Table 4)")
    for key, profile in PHONES.items():
        table.add_row(
            key, profile.name, profile.chipset.name,
            f"{profile.sdio_idle_window * 1e3:.0f}ms",
            f"~{profile.psm_timeout * 1e3:.0f}ms",
            profile.listen_interval_assoc,
        )
    print(table)


COMMANDS = {
    "table2": (cmd_table2, "multi-layer ping RTTs (Table 2)"),
    "table3": (cmd_table3, "driver dvsend/dvrecv delays (Table 3)"),
    "table5": (cmd_table5, "AcuteMon actual nRTT (Table 5)"),
    "overheads": (cmd_overheads, "AcuteMon overhead box stats (Figure 7)"),
    "compare": (cmd_compare, "tool comparison CDFs (Figure 8)"),
    "ping2": (cmd_ping2, "ping2 vs AcuteMon error sweep"),
    "campaign": (cmd_campaign, "run an env x phone x RTT x tool grid"),
    "cache": (cmd_cache, "inspect or compact a persistent result store "
                         "(docs/FABRIC.md)"),
    "report": (cmd_report, "delay-decomposition breakdown of a saved "
                           "campaign (which mechanism dominates where)"),
    "scenario": (cmd_scenario, "run one declarative scenario, or list "
                               "the registries"),
    "obs": (cmd_obs, "run one observed cell and export its metrics"),
    "analytic": (cmd_analytic, "closed-form PSM delay predictions for a "
                               "phone profile (docs/ANALYTIC.md)"),
    "phones": (cmd_phones, "list the modelled phone profiles"),
    "lint": (cmd_lint, "static-analysis engine: determinism, obs-guard, "
                       "API and registry contracts (docs/STATIC_ANALYSIS.md)"),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Demystifying and Puncturing the "
                    "Inflated Delay in Smartphone-based WiFi Network "
                    "Measurement' (CoNEXT 2016)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--count", type=int, default=30,
                        help="probes per cell (default 30; the paper uses "
                             "100, as do the benchmarks)")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_fn, help_text) in COMMANDS.items():
        cmd = sub.add_parser(name, help=help_text)
        if name in ("overheads", "compare", "ping2", "obs"):
            cmd.add_argument("--phone", default="nexus5",
                             choices=sorted(PHONES))
        if name == "compare":
            cmd.add_argument("--rtt", type=float, default=30.0,
                             help="emulated RTT in ms (default 30)")
            cmd.add_argument("--cross-traffic", action="store_true",
                             help="congest the WLAN with iPerf load")
        if name == "obs":
            cmd.add_argument("--rtt", type=float, default=30.0,
                             help="emulated RTT in ms (default 30)")
            cmd.add_argument("--tool", default="acutemon",
                             help="tool to observe (default acutemon)")
            cmd.add_argument("--out", default=None, metavar="PREFIX",
                             help="write PREFIX.prom, PREFIX.jsonl and "
                                  "PREFIX.trace.json")
        if name == "analytic":
            cmd.add_argument("--phone", default="nexus5",
                             choices=sorted(PHONES))
            cmd.add_argument("--rtt", type=float, default=0.0,
                             help="base (wired + awake-path) RTT in ms "
                                  "(default 0)")
            cmd.add_argument("--load", type=float, default=0.0,
                             help="offered probe load in arrivals/s "
                                  "(default 0 = always idle)")
            cmd.add_argument("--listen-interval", type=int, default=None,
                             metavar="L",
                             help="listen interval override (default: the "
                                  "profile's actual value)")
            cmd.add_argument("--beacon-interval-tu", type=int, default=100,
                             metavar="TU",
                             help="AP beacon interval in Time Units "
                                  "(default 100 = 102.4 ms)")
        if name == "scenario":
            scenario_sub = cmd.add_subparsers(dest="scenario_command",
                                              required=True)
            scenario_sub.add_parser(
                "list", help="list registered environments, tools, phones")
            run = scenario_sub.add_parser(
                "run", help="execute one scenario cell")
            run.add_argument("--env", default="wifi",
                             choices=environment_keys(),
                             help="environment key (default wifi)")
            run.add_argument("--tool", default="acutemon",
                             choices=tool_keys(),
                             help="registered tool (default acutemon)")
            run.add_argument("--phone", default="nexus5",
                             choices=sorted(PHONES))
            run.add_argument("--rtt", type=float, default=30.0,
                             help="emulated RTT in ms (default 30)")
            run.add_argument("--interval", type=float, default=1.0,
                             help="probe interval in s (default 1)")
            run.add_argument("--cross-traffic", action="store_true",
                             help="congest the WLAN with iPerf load "
                                  "(WiFi only)")
            run.add_argument("--no-bus-sleep", action="store_true",
                             help="disable SDIO bus sleep (WiFi only)")
            run.add_argument("--observe", action="store_true",
                             help="attach metrics/span/trace recorders")
            run.add_argument("--spec", default=None, metavar="PATH",
                             help="load the scenario from a JSON spec "
                                  "file (overrides the flags above)")
            run.add_argument("--save-spec", default=None, metavar="PATH",
                             help="write the resolved spec JSON before "
                                  "running")
        if name == "cache":
            cache_sub = cmd.add_subparsers(dest="cache_command",
                                           required=True)
            stats_cmd = cache_sub.add_parser(
                "stats", help="print store occupancy (segments, live "
                              "cells, bytes)")
            gc_cmd = cache_sub.add_parser(
                "gc", help="compact live records into one segment and "
                           "drop stale entries")
            for sub_cmd in (stats_cmd, gc_cmd):
                sub_cmd.add_argument("--store", required=True,
                                     metavar="DIR",
                                     help="result store directory")
        if name == "report":
            cmd.add_argument("campaign", metavar="CAMPAIGN.json",
                             help="campaign result file saved by "
                                  "`repro campaign --out` (cells must "
                                  "carry metrics)")
            cmd.add_argument("--format", default="text",
                             choices=("text", "json", "prom"),
                             help="report format (default text)")
            cmd.add_argument("--out", default=None, metavar="PATH",
                             help="write the report instead of printing")
        if name == "lint":
            cmd.add_argument("paths", nargs="*", metavar="PATH",
                             help="files or directories to lint (default: "
                                  "the installed repro package source; "
                                  "explicit paths skip the registry rule)")
            cmd.add_argument("--format", default="text",
                             choices=("text", "json", "sarif"),
                             help="report format (default text)")
            cmd.add_argument("--baseline", default=None, metavar="PATH",
                             help="JSON baseline of grandfathered findings")
            cmd.add_argument("--update-baseline", action="store_true",
                             help="write the current findings to "
                                  "--baseline and exit 0")
        if name == "campaign":
            cmd.add_argument("--env", nargs="+", default=["wifi"],
                             choices=environment_keys(),
                             help="environment keys to sweep "
                                  "(default wifi)")
            cmd.add_argument("--phones", nargs="+", default=["nexus5"],
                             choices=sorted(PHONES))
            cmd.add_argument("--rtts", nargs="+", type=float,
                             default=[20.0, 50.0],
                             help="emulated RTTs in ms")
            cmd.add_argument("--tools", nargs="+",
                             default=["acutemon", "ping"])
            cmd.add_argument("--out", default=None,
                             help="save results to a JSON file")
            cmd.add_argument("--workers", type=int, default=1,
                             metavar="N",
                             help="worker processes for the grid "
                                  "(default 1 = serial; 0 or negative = "
                                  "one per CPU; results are bit-identical "
                                  "either way)")
            cmd.add_argument("--metrics-out", default=None, metavar="PATH",
                             help="run cells observed and write the merged "
                                  "metrics snapshot (.jsonl = JSON lines, "
                                  "anything else = Prometheus text)")
            cmd.add_argument("--report-out", default=None, metavar="PATH",
                             help="run cells observed and write the delay-"
                                  "decomposition report (.json / .prom / "
                                  "anything else = text)")
            cmd.add_argument("--checkpoint", default=None, metavar="PATH",
                             help="journal each completed cell to this "
                                  "JSONL file (see docs/RESILIENCE.md)")
            cmd.add_argument("--resume", action="store_true",
                             help="skip cells already in --checkpoint and "
                                  "re-emit their cached results")
            cmd.add_argument("--cell-timeout", type=float, default=None,
                             metavar="S",
                             help="wall-clock budget per cell attempt in "
                                  "seconds (default: unlimited)")
            cmd.add_argument("--retries", type=int, default=0, metavar="N",
                             help="re-run a failing cell up to N times "
                                  "before quarantining it (default 0)")
            cmd.add_argument("--retry-backoff", type=float, default=0.0,
                             metavar="S",
                             help="base of the deterministic backoff "
                                  "between attempts: attempt i waits "
                                  "S * 2**i seconds (default 0)")
            cmd.add_argument("--shards", type=int, default=None,
                             metavar="N",
                             help="partition the grid into N fingerprint-"
                                  "keyed shards with work stealing "
                                  "(docs/FABRIC.md; mutually exclusive "
                                  "with --workers)")
            cmd.add_argument("--store", default=None, metavar="DIR",
                             help="persistent cross-campaign result "
                                  "store: cells cached there are re-"
                                  "emitted without executing, fresh "
                                  "cells are recorded for next time")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    # Commands return an exit code or None; ``lint`` is the one that
    # meaningfully fails.
    return COMMANDS[args.command][0](args) or 0


if __name__ == "__main__":
    sys.exit(main())
