"""Markdown report generation for measurement runs.

Assembles experiment output (layered RTT stats, overhead boxes, CDFs)
into a self-contained markdown document — the shape of EXPERIMENTS.md,
but regenerated from *your* runs.  Used by downstream pipelines that
archive nightly measurement campaigns next to their raw JSON.
"""

from repro.analysis.boxstats import BoxStats
from repro.analysis.cdf import Cdf
from repro.analysis.stats import SummaryStats


class MarkdownReport:
    """An append-only markdown document builder."""

    def __init__(self, title):
        self.title = title
        self._blocks = []

    # -- structure ---------------------------------------------------------

    def add_section(self, heading, text=""):
        self._blocks.append(f"## {heading}")
        if text:
            self._blocks.append(text)
        return self

    def add_paragraph(self, text):
        self._blocks.append(text)
        return self

    def add_table(self, headers, rows):
        lines = [
            "| " + " | ".join(str(cell) for cell in headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells, expected {len(headers)}")
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        self._blocks.append("\n".join(lines))
        return self

    def add_code(self, text, language=""):
        self._blocks.append(f"```{language}\n{text}\n```")
        return self

    # -- measurement-aware helpers ------------------------------------------

    def add_rtt_summary(self, label, rtts, true_rtt=None):
        """One row-style paragraph summarising an RTT sample (seconds)."""
        stats = SummaryStats(rtts)
        text = (f"**{label}**: n={stats.n}, "
                f"median {stats.median * 1e3:.2f} ms, "
                f"mean {stats.mean * 1e3:.2f} ± {stats.ci95 * 1e3:.2f} ms, "
                f"range [{stats.minimum * 1e3:.2f}, "
                f"{stats.maximum * 1e3:.2f}] ms")
        if true_rtt is not None:
            text += (f", median error "
                     f"{abs(stats.median - true_rtt) * 1e3:+.2f} ms "
                     f"vs {true_rtt * 1e3:.0f} ms")
        self._blocks.append(text)
        return self

    def add_overhead_table(self, cells):
        """``cells`` maps label -> overhead series (seconds)."""
        rows = []
        for label, series in cells.items():
            box = BoxStats(series)
            rows.append((
                label,
                f"{box.median * 1e3:.2f}",
                f"{box.q1 * 1e3:.2f} / {box.q3 * 1e3:.2f}",
                f"{box.whisker_low * 1e3:.2f} / {box.whisker_high * 1e3:.2f}",
                len(box.outliers),
            ))
        return self.add_table(
            ("cell", "median (ms)", "quartiles (ms)", "whiskers (ms)",
             "outliers"),
            rows,
        )

    def add_cdf_table(self, cells, probabilities=(0.1, 0.5, 0.9)):
        """``cells`` maps label -> RTT samples (seconds)."""
        headers = ["series"] + [f"p{int(p * 100)} (ms)"
                                for p in probabilities]
        rows = []
        for label, series in cells.items():
            cdf = Cdf(series)
            rows.append([label] + [f"{cdf.quantile(p) * 1e3:.2f}"
                                   for p in probabilities])
        return self.add_table(headers, rows)

    # -- output -------------------------------------------------------------------

    def render(self):
        return "\n\n".join([f"# {self.title}"] + self._blocks) + "\n"

    def save(self, path):
        text = self.render()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    def __str__(self):
        return self.render()


def campaign_report(campaign, title="Measurement campaign"):
    """Build a :class:`MarkdownReport` from a completed
    :class:`~repro.testbed.campaign.Campaign`."""
    report = MarkdownReport(title)
    report.add_section(
        "Cells",
        f"{len(campaign)} cells, {campaign.count} probes each, "
        f"base seed {campaign.base_seed}.",
    )
    rows = []
    for result in campaign.results:
        stats = result.summary()
        rows.append((
            result.env, result.phone, f"{result.rtt * 1e3:.0f}",
            result.tool,
            "yes" if result.cross_traffic else "no",
            f"{stats.median * 1e3:.2f}",
            f"{result.error() * 1e3:.2f}",
        ))
    report.add_table(
        ("env", "phone", "RTT (ms)", "tool", "cross traffic",
         "median (ms)", "error (ms)"),
        rows,
    )
    worst, error = campaign.worst_error()
    if worst is not None:
        report.add_section(
            "Worst cell",
            f"{worst.phone} at {worst.rtt * 1e3:.0f} ms with {worst.tool} "
            f"over {worst.env}: median error {error * 1e3:.2f} ms.",
        )
    return report
