"""Per-probe timelines: *where did the milliseconds go?*

Turns one :class:`~repro.core.measurement.ProbeRecord` (plus, optionally,
the sniffer capture) into an annotated event sequence across the layers
of the paper's Figure 1 — the layer-by-layer story behind a single
inflated (or clean) RTT.  Used by the diagnosis examples and handy when
developing new mitigation strategies.
"""

from repro.analysis.render import fmt_ms


class TimelineEvent:
    __slots__ = ("time", "layer", "label")

    def __init__(self, time, layer, label):
        self.time = time
        self.layer = layer
        self.label = label

    def __repr__(self):
        return f"<{self.time * 1e3:.3f}ms {self.layer}: {self.label}>"


#: (stamp key, direction, layer, label) in stack order.
_REQUEST_POINTS = (
    ("kernel", "kernel", "dev_queue_xmit / bpf tap (tok)"),
    ("driver", "driver", "dhd_start_xmit (tov)"),
    ("driver_done", "driver", "dhdsdio_txpkt: written to the bus"),
    ("phy", "air", "frame on the air (ton)"),
)
_RESPONSE_POINTS = (
    ("phy", "air", "response on the air (tin)"),
    ("driver", "driver", "dhdsdio_isr (tiv)"),
    ("driver_done", "driver", "dhd_rxf_enqueue"),
    ("kernel", "kernel", "netif_rx_ni / bpf tap (tik)"),
    ("user", "user", "app receives response (tiu)"),
)


class ProbeTimeline:
    """The ordered event list for one probe transaction."""

    def __init__(self, record, capture=None):
        self.record = record
        self.events = []
        self._build(capture)

    def _build(self, capture):
        record = self.record
        if record.user_send is not None:
            self._add(record.user_send, "user", "app sends probe (tou)")
        if record.request is not None:
            for key, layer, label in _REQUEST_POINTS:
                stamp = record.request.stamps.get(key)
                if stamp is not None:
                    self._add(stamp, layer, label)
        if record.response is not None:
            for key, layer, label in _RESPONSE_POINTS:
                stamp = record.response.stamps.get(key)
                if stamp is not None:
                    self._add(stamp, layer, label)
        if record.user_recv is not None:
            self._add(record.user_recv, "user",
                      "app records RTT (tiu, as reported)")
        if capture is not None:
            self._add_capture_events(capture)
        self.events.sort(key=lambda event: event.time)

    def _add_capture_events(self, capture):
        probe_id = self.record.probe_id
        for frame_record in capture:
            if frame_record.probe_id != probe_id:
                continue
            status = ("retransmission/collision"
                      if frame_record.status != "ok" else "transmission")
            self._add(frame_record.time, "air",
                      f"sniffer: {status} {frame_record.frame!r}")

    def _add(self, time, layer, label):
        self.events.append(TimelineEvent(time, layer, label))

    @property
    def origin(self):
        return self.events[0].time if self.events else 0.0

    def span(self):
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time

    def gaps(self):
        """(duration, from_event, to_event) between consecutive events,
        largest first — the quickest way to spot where a probe stalled."""
        out = []
        for first, second in zip(self.events, self.events[1:]):
            out.append((second.time - first.time, first, second))
        out.sort(key=lambda item: item[0], reverse=True)
        return out

    def render(self):
        """Multi-line text rendering with relative timestamps."""
        record = self.record
        header = [f"probe {record.probe_id} ({record.kind})"]
        metrics = []
        for name in ("du", "dk", "dv", "dn"):
            value = getattr(record, name)
            if value is not None:
                metrics.append(f"{name}={fmt_ms(value)}ms")
        if metrics:
            header.append("  " + "  ".join(metrics))
        lines = ["".join(header)]
        origin = self.origin
        previous = origin
        for event in self.events:
            delta = event.time - previous
            lines.append(
                f"  {(event.time - origin) * 1e3:9.3f} ms "
                f"(+{delta * 1e3:7.3f})  {event.layer:6s} {event.label}"
            )
            previous = event.time
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def probe_timeline(record, capture=None):
    """Build a :class:`ProbeTimeline` for one record."""
    return ProbeTimeline(record, capture=capture)
