"""Plain-text rendering of tables, box rows and CDFs.

The benchmark harness prints the same *rows* and *series* as the paper's
tables and figures; these helpers keep that output aligned and readable
in a terminal (and in captured bench logs).
"""


class Table:
    """A fixed-column text table."""

    def __init__(self, headers, title=""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows = []

    def add_row(self, *cells):
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self):
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells):
            return " | ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append("-+-".join("-" * width for width in widths))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def __str__(self):
        return self.render()


def fmt_ms(seconds, digits=2):
    """Format a duration in seconds as milliseconds text."""
    return f"{seconds * 1e3:.{digits}f}"


def fmt_mean_ci(stats, digits=2):
    """'mean±ci' in milliseconds, the format of Tables 2 and 5."""
    return f"{stats.mean * 1e3:.{digits}f}±{stats.ci95 * 1e3:.{digits}f}"


def render_boxplot_row(label, box, unit_scale=1e3, digits=2):
    """One line summarising a box plot (values scaled to ms by default)."""
    s = unit_scale
    return (
        f"{label:24s} median={box.median * s:6.{digits}f} "
        f"box=[{box.q1 * s:6.{digits}f}, {box.q3 * s:6.{digits}f}] "
        f"whiskers=[{box.whisker_low * s:6.{digits}f}, "
        f"{box.whisker_high * s:6.{digits}f}] outliers={len(box.outliers)}"
    )


def render_cdf(cdf, unit_scale=1e3, probabilities=(0.1, 0.25, 0.5, 0.75, 0.9),
               label=""):
    """One line of CDF quantiles (values scaled to ms by default)."""
    parts = [
        f"p{int(p * 100):02d}={cdf.quantile(p) * unit_scale:.2f}"
        for p in probabilities
    ]
    prefix = f"{label:16s} " if label else ""
    return prefix + " ".join(parts)
