"""Empirical cumulative distribution functions (Figures 8 and 9)."""

import bisect


class Cdf:
    """An empirical CDF over a finite sample."""

    def __init__(self, values):
        self.values = sorted(values)
        if not self.values:
            raise ValueError("Cdf requires at least one sample")
        self.n = len(self.values)

    def probability(self, x):
        """P(X <= x)."""
        return bisect.bisect_right(self.values, x) / self.n

    def quantile(self, p):
        """Smallest sample value v with P(X <= v) >= p."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"quantile requires p in (0, 1], got {p!r}")
        index = max(0, min(self.n - 1, int(p * self.n + 0.999999) - 1))
        return self.values[index]

    @property
    def median(self):
        return self.quantile(0.5)

    def points(self):
        """The step-function vertices as ``[(value, probability), ...]``."""
        return [
            (value, (index + 1) / self.n)
            for index, value in enumerate(self.values)
        ]

    def fraction_below(self, x):
        """Alias of :meth:`probability`, reads better in reports."""
        return self.probability(x)

    def shift_versus(self, other, probabilities=(0.25, 0.5, 0.75, 0.9)):
        """Horizontal gap (self - other) at several quantiles.

        Positive values mean ``self`` sits to the right (is slower).
        Used to quantify "the differences between AcuteMon and the other
        three are almost larger than 10ms" style statements.
        """
        return {
            p: self.quantile(p) - other.quantile(p)
            for p in probabilities
        }

    def __repr__(self):
        return f"<Cdf n={self.n} median={self.median:.4g}>"
