"""Summary statistics: mean, spread, confidence intervals.

The paper reports "mean with 95% confidence interval" for its RTT tables
(Tables 2 and 5) and min/mean/max for the driver delays (Table 3).
"""

import math

try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is an install-time dependency
    _scipy_stats = None

# Two-sided 95% z quantile (fallback when scipy is unavailable or n is large).
_Z95 = 1.959963984540054


def _t_quantile(df):
    """Two-sided 95% Student-t quantile for ``df`` degrees of freedom."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.975, df))
    # Cornish-Fisher style approximation, adequate for df >= 2.
    z = _Z95
    g1 = (z ** 3 + z) / 4.0
    g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
    return z + g1 / df + g2 / df ** 2


def mean_ci(values, confidence=0.95):
    """Mean and half-width of the (default 95%) confidence interval.

    Uses the Student-t quantile, matching how measurement papers report
    small-sample CIs.  Returns ``(mean, half_width)``; the half-width is
    0.0 for fewer than two samples.
    """
    values = list(values)
    if not values:
        raise ValueError("mean_ci requires at least one sample")
    if confidence != 0.95 and _scipy_stats is None:
        raise ValueError("non-default confidence levels require scipy")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    if _scipy_stats is not None and confidence != 0.95:
        quantile = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, n - 1))
    else:
        quantile = _t_quantile(n - 1)
    return mean, quantile * sem


def percentile(values, q):
    """Linear-interpolation percentile (q in [0, 100])."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q!r}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile requires at least one sample")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1 - weight) + ordered[high] * weight
    # Interpolation can underflow outside its bracket for subnormal
    # inputs; clamp so percentile() always returns an attainable value.
    return min(max(value, ordered[low]), ordered[high])


class SummaryStats:
    """min / mean / max / median / stdev / CI for one sample set."""

    def __init__(self, values):
        self.values = sorted(values)
        if not self.values:
            raise ValueError("SummaryStats requires at least one sample")
        self.n = len(self.values)
        self.minimum = self.values[0]
        self.maximum = self.values[-1]
        self.mean, self.ci95 = mean_ci(self.values)
        self.median = percentile(self.values, 50)
        if self.n > 1:
            variance = sum((v - self.mean) ** 2 for v in self.values) / (self.n - 1)
            self.stdev = math.sqrt(variance)
        else:
            self.stdev = 0.0

    def scaled(self, factor):
        """SummaryStats over values multiplied by ``factor`` (unit change)."""
        return SummaryStats([v * factor for v in self.values])

    def __repr__(self):
        return (
            f"<SummaryStats n={self.n} mean={self.mean:.4g}"
            f"±{self.ci95:.4g} median={self.median:.4g} "
            f"range=[{self.minimum:.4g}, {self.maximum:.4g}]>"
        )
