"""Closed-form delay and throughput predictors for the power-save stack.

Everything else in :mod:`repro.analysis` summarises what the simulator
*did*; this module predicts what it *should* do.  The models are the
analytical successors of the paper's measured mechanisms:

* **Adaptive PSM** (Agrawal et al.'s M/G/1-with-vacations treatment of
  802.11 power save, specialised to the paper's testbed): a station
  whose inter-arrival gap exceeds the PSM timeout ``Tip`` dozes, and a
  downlink probe that finds it dozing waits for the next beacon whose
  TIM it listens to.  With listen interval ``L`` the station hears
  every ``(L+1)``-th beacon, so a probe arriving at a uniformly random
  phase waits ``(L+1) * BI / 2`` on average.
* **TWT with clock drift** (Bankov et al.'s 802.11ax target-wake-time
  analysis): a station waking on a negotiated service-period schedule
  accumulates clock error at the drift rate between beacon resyncs;
  the wake-window error is linear in the time since the last resync.
* **Predictive sleep** (EAPS-style edge-assisted wake prediction): the
  station wakes at the predicted next downlink arrival, capped by a
  fallback timeout — the timeout is a hard upper bound on how stale a
  buffered frame can get.

``tests/test_analytic_validation.py`` holds the simulator to these
predictions within declared error envelopes; the per-metric envelopes
and their rationale live in ``docs/ANALYTIC.md``, alongside the mapping
from every symbol here to its :class:`~repro.testbed.scenario.ScenarioSpec`
field.
"""

import math

#: Inter-arrival process assumptions for the doze-probability term.
ARRIVALS_POISSON = "poisson"
ARRIVALS_PERIODIC = "periodic"

#: Fraction of the guard interval at which the TWT machine proactively
#: resyncs its clock (see :class:`repro.wifi.twt.TwtConfig`).
TWT_RESYNC_FRACTION = 0.5


class AnalyticError(ValueError):
    """A model was evaluated outside its domain (degenerate input)."""


def _require_positive(name, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value <= 0:
        raise AnalyticError(f"{name} must be a positive finite number, "
                            f"got {value!r}")
    return value


def _require_non_negative(name, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value < 0:
        raise AnalyticError(f"{name} must be a non-negative finite "
                            f"number, got {value!r}")
    return value


def _require_listen_interval(value):
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise AnalyticError(f"listen_interval must be an integer >= 0, "
                            f"got {value!r}")
    return value


# -- adaptive PSM ----------------------------------------------------------


def psm_listen_period(beacon_interval, listen_interval=0):
    """Seconds between the beacons a dozing station actually hears.

    With listen interval ``L`` the station wakes for every
    ``(L + 1)``-th beacon (§3.2.2; every phone in Table 4 honours
    ``L = 0``, i.e. every beacon).
    """
    _require_positive("beacon_interval", beacon_interval)
    _require_listen_interval(listen_interval)
    return (listen_interval + 1) * beacon_interval


def psm_mean_beacon_wait(beacon_interval, listen_interval=0):
    """Mean TIM wait of a downlink frame reaching a dozing station.

    The frame arrives at a uniformly random phase of the listen period,
    so it waits half of it: ``(L + 1) * BI / 2``.
    """
    return psm_listen_period(beacon_interval, listen_interval) / 2.0


def psm_doze_probability(offered_load, timeout, arrivals=ARRIVALS_POISSON):
    """Probability a probe finds the station past an idle timeout.

    ``offered_load`` is the probe rate in arrivals/second; ``timeout``
    is the idle window that triggers the sleep transition (``Tip`` for
    PSM doze, ``Tis`` for SDIO bus sleep).  Poisson arrivals give
    ``P(gap > timeout) = exp(-load * timeout)``; periodic arrivals are
    the deterministic step function.  Zero load means the station is
    always idle long enough: probability 1.
    """
    _require_non_negative("offered_load", offered_load)
    _require_positive("timeout", timeout)
    if arrivals == ARRIVALS_POISSON:
        return math.exp(-offered_load * timeout)
    if arrivals == ARRIVALS_PERIODIC:
        if offered_load == 0:
            return 1.0
        return 1.0 if 1.0 / offered_load > timeout else 0.0
    raise AnalyticError(f"unknown arrival process {arrivals!r}")


def psm_mean_delay(offered_load, beacon_interval, tip, listen_interval=0,
                   base_rtt=0.0, tis=None, tprom=0.0,
                   arrivals=ARRIVALS_POISSON):
    """Mean user-level RTT of a downlink probe under adaptive PSM.

    The paper's §3 decomposition, in expectation::

        E[du] = base_rtt
              + P(dozing)    * (L + 1) * BI / 2     (TIM beacon wait)
              + P(bus asleep) * Tprom               (SDIO promotion)

    ``base_rtt`` is the wired path plus the awake-path processing
    costs; ``tis``/``tprom`` default to no bus-sleep term.  Delay is
    non-decreasing in ``listen_interval`` and ``beacon_interval`` and
    non-increasing in ``offered_load`` — properties pinned by
    hypothesis in the validation harness.
    """
    _require_non_negative("base_rtt", base_rtt)
    _require_non_negative("tprom", tprom)
    wait = psm_mean_beacon_wait(beacon_interval, listen_interval)
    p_doze = psm_doze_probability(offered_load, tip, arrivals)
    p_bus = 0.0
    if tis is not None and tprom > 0.0:
        p_bus = psm_doze_probability(offered_load, tis, arrivals)
    return base_rtt + p_doze * wait + p_bus * tprom


def saturation_throughput(payload_bytes, data_rate_bps, per_frame_overhead):
    """Single-STA saturation throughput in bits/second.

    Under saturation an adaptive-PSM station never dozes (activity
    keeps resetting ``Tip``), so the PSM saturation throughput equals
    the plain DCF exchange rate: payload bits over the per-frame
    exchange time (DIFS + mean backoff + preamble + SIFS + ACK,
    collapsed into ``per_frame_overhead``) plus the payload airtime.
    """
    _require_positive("payload_bytes", payload_bytes)
    _require_positive("data_rate_bps", data_rate_bps)
    _require_positive("per_frame_overhead", per_frame_overhead)
    payload_bits = payload_bytes * 8.0
    return payload_bits / (payload_bits / data_rate_bps + per_frame_overhead)


def duty_cycled_throughput(saturation, awake_fraction):
    """Throughput of a station awake only a fraction of the time.

    The sleep-aggressiveness knob: ``awake_fraction`` in ``[0, 1]``.
    Non-increasing as the station sleeps more — the second monotonicity
    property the harness pins.
    """
    _require_non_negative("saturation", saturation)
    _require_non_negative("awake_fraction", awake_fraction)
    return saturation * min(1.0, awake_fraction)


# -- TWT with bounded clock drift -----------------------------------------


def twt_mean_delay(sp_interval, base_rtt=0.0):
    """Mean downlink delay of a TWT station: half a service-period gap.

    Frames arriving at a uniformly random phase of the SP schedule are
    buffered until the next service period, ``sp_interval / 2`` away on
    average.
    """
    _require_positive("sp_interval", sp_interval)
    _require_non_negative("base_rtt", base_rtt)
    return base_rtt + sp_interval / 2.0


def twt_effective_throughput(saturation, sp_duration, sp_interval):
    """Throughput of a TWT station confined to its service periods."""
    _require_positive("sp_duration", sp_duration)
    _require_positive("sp_interval", sp_interval)
    return duty_cycled_throughput(saturation,
                                  sp_duration / sp_interval)


def twt_drift_bound(drift_rate, elapsed):
    """Worst-case clock error after ``elapsed`` seconds without resync.

    Bankov et al.'s linear drift model: a local clock running at
    ``(1 + drift_rate)`` times true rate is off by
    ``|drift_rate| * elapsed`` when the schedule next fires.
    """
    _require_non_negative("elapsed", elapsed)
    if isinstance(drift_rate, bool) or \
            not isinstance(drift_rate, (int, float)) \
            or not math.isfinite(drift_rate):
        raise AnalyticError(f"drift_rate must be a finite number, "
                            f"got {drift_rate!r}")
    return abs(drift_rate) * elapsed


def twt_resync_interval(drift_rate, guard):
    """Longest the clock may free-run before the error fills the guard."""
    _require_positive("guard", guard)
    if drift_rate == 0:
        return math.inf
    return guard / abs(drift_rate)


def twt_wake_error_bound(drift_rate, guard, sp_interval, beacon_interval,
                         resync_fraction=TWT_RESYNC_FRACTION):
    """Declared bound on |actual - planned| wake time under the resync
    policy of :class:`repro.wifi.twt.TwtStation`.

    The machine resyncs on a beacon once the projected error exceeds
    ``resync_fraction * guard``; after a resync the clock free-runs at
    most one service-period gap plus one beacon interval before the
    next wake, so every non-missed wake satisfies::

        |error| <= resync_fraction * guard
                   + |drift_rate| * (sp_interval + beacon_interval)
    """
    _require_positive("sp_interval", sp_interval)
    _require_positive("beacon_interval", beacon_interval)
    _require_positive("guard", guard)
    _require_non_negative("resync_fraction", resync_fraction)
    return (resync_fraction * guard
            + twt_drift_bound(drift_rate, sp_interval + beacon_interval))


# -- predictive sleep ------------------------------------------------------


def predictive_wake_bound(fallback_timeout):
    """Hard cap on doze length: the machine never sleeps past this."""
    return _require_positive("fallback_timeout", fallback_timeout)


def predictive_delay_bound(mispredict_rate, fallback_timeout,
                           base_rtt=0.0):
    """Upper bound on mean downlink delay under predictive sleep.

    A correct prediction wakes the station just before the frame (no
    buffering wait); a mispredict is bounded by the fallback timeout.
    """
    _require_non_negative("base_rtt", base_rtt)
    _require_positive("fallback_timeout", fallback_timeout)
    if isinstance(mispredict_rate, bool) \
            or not isinstance(mispredict_rate, (int, float)) \
            or not 0.0 <= mispredict_rate <= 1.0:
        raise AnalyticError(f"mispredict_rate must be in [0, 1], "
                            f"got {mispredict_rate!r}")
    return base_rtt + mispredict_rate * fallback_timeout


# -- spec-level convenience ------------------------------------------------


def predict_for_profile(profile, beacon_interval=0.1024, offered_load=0.0,
                        base_rtt=0.0, listen_interval=None,
                        arrivals=ARRIVALS_POISSON):
    """All PSM predictions for one phone profile, as a flat dict.

    ``profile`` is a :class:`~repro.phone.profiles.PhoneProfile` (or a
    registry key); ``Tip``/``Tis``/``Tprom``/``L`` come straight from
    it, so the numbers line up with what ``ScenarioSpec(phone=...)``
    would simulate.  The dict is what ``repro analytic`` prints.
    """
    from repro.phone.profiles import coerce_profile

    profile = coerce_profile(profile)
    if listen_interval is None:
        listen_interval = profile.listen_interval_actual
    tip = profile.psm_timeout
    tis = profile.sdio_idle_window
    tprom = profile.chipset.wake_delay.mean
    return {
        "phone": profile.key,
        "beacon_interval": beacon_interval,
        "listen_interval": listen_interval,
        "offered_load": offered_load,
        "tip": tip,
        "tis": tis,
        "tprom": tprom,
        "psm_listen_period":
            psm_listen_period(beacon_interval, listen_interval),
        "psm_mean_beacon_wait":
            psm_mean_beacon_wait(beacon_interval, listen_interval),
        "psm_doze_probability":
            psm_doze_probability(offered_load, tip, arrivals),
        "bus_sleep_probability":
            psm_doze_probability(offered_load, tis, arrivals),
        "psm_mean_delay":
            psm_mean_delay(offered_load, beacon_interval, tip,
                           listen_interval=listen_interval,
                           base_rtt=base_rtt, tis=tis, tprom=tprom,
                           arrivals=arrivals),
    }
