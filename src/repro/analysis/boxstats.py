"""Box-and-whisker statistics.

Figures 3 and 7 of the paper use box plots where "the mark inside the
box is the median and the top and bottom are the 75th and 25th
percentile.  The upper and lower whiskers are the maximum and minimum,
respectively, after excluding the outliers."  Outliers follow the
conventional 1.5 IQR rule.
"""

from repro.analysis.stats import percentile


class BoxStats:
    """Median, quartiles, whiskers and outliers for one sample set."""

    def __init__(self, values, whisker_factor=1.5):
        values = sorted(values)
        if not values:
            raise ValueError("BoxStats requires at least one sample")
        self.n = len(values)
        self.median = percentile(values, 50)
        self.q1 = percentile(values, 25)
        self.q3 = percentile(values, 75)
        self.iqr = self.q3 - self.q1
        low_fence = self.q1 - whisker_factor * self.iqr
        high_fence = self.q3 + whisker_factor * self.iqr
        in_fence = [v for v in values if low_fence <= v <= high_fence]
        # Degenerate distributions (IQR 0) keep at least the quartile range.
        if not in_fence:
            in_fence = [self.q1, self.q3]
        # Whiskers extend *from the box*: interpolated quartiles can fall
        # beyond every in-fence sample on tiny data sets, so clamp.
        self.whisker_low = min(in_fence[0], self.q1)
        self.whisker_high = max(in_fence[-1], self.q3)
        self.outliers = [v for v in values if v < low_fence or v > high_fence]

    @property
    def outlier_fraction(self):
        return len(self.outliers) / self.n

    def scaled(self, factor):
        """Does not recompute; convenience for unit conversion in reports."""
        copy = BoxStats.__new__(BoxStats)
        copy.n = self.n
        for attr in ("median", "q1", "q3", "iqr", "whisker_low", "whisker_high"):
            setattr(copy, attr, getattr(self, attr) * factor)
        copy.outliers = [v * factor for v in self.outliers]
        return copy

    def __repr__(self):
        return (
            f"<BoxStats n={self.n} median={self.median:.4g} "
            f"box=[{self.q1:.4g}, {self.q3:.4g}] "
            f"whiskers=[{self.whisker_low:.4g}, {self.whisker_high:.4g}] "
            f"outliers={len(self.outliers)}>"
        )
