"""Comparing measured RTT distributions.

The paper's Figures 8 and 9 argue visually ("the difference ... is very
small", "outperforms ... significantly"); these helpers put numbers on
such statements:

* :func:`ks_statistic` / :func:`ks_test` — the two-sample
  Kolmogorov-Smirnov distance (and p-value, via scipy when available),
* :func:`median_shift` — the horizontal gap at the median,
* :func:`dominates` — stochastic dominance check (one CDF entirely left
  of another).
"""

try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def ks_statistic(sample_a, sample_b):
    """Two-sample KS distance: sup |F_a(x) - F_b(x)|, in [0, 1]."""
    a = sorted(sample_a)
    b = sorted(sample_b)
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    n_a, n_b = len(a), len(b)
    i = j = 0
    distance = 0.0
    while i < n_a and j < n_b:
        # Consume every element equal to the current value from both
        # sides before comparing the CDFs (tie handling).
        value = min(a[i], b[j])
        while i < n_a and a[i] == value:
            i += 1
        while j < n_b and b[j] == value:
            j += 1
        distance = max(distance, abs(i / n_a - j / n_b))
    return distance


def ks_test(sample_a, sample_b):
    """(statistic, p_value).  p_value needs scipy; ``None`` without it."""
    statistic = ks_statistic(sample_a, sample_b)
    if _scipy_stats is None:
        return statistic, None
    result = _scipy_stats.ks_2samp(sample_a, sample_b)
    return float(result.statistic), float(result.pvalue)


def median_shift(sample_a, sample_b):
    """median(a) - median(b): positive when a is slower."""
    from repro.analysis.stats import percentile

    return percentile(sample_a, 50) - percentile(sample_b, 50)


def dominates(fast, slow, margin=0.0):
    """True when ``fast``'s CDF sits entirely left of ``slow``'s.

    Checked at every decile; ``margin`` requires a minimum gap.  This is
    the strong version of "tool A outperforms tool B" — AcuteMon vs the
    1-second tools in Figure 8 passes it.
    """
    from repro.analysis.cdf import Cdf

    cdf_fast = Cdf(fast)
    cdf_slow = Cdf(slow)
    for decile in range(1, 10):
        p = decile / 10
        if cdf_fast.quantile(p) + margin > cdf_slow.quantile(p):
            return False
    return True
