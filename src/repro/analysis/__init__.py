"""Statistics and report rendering for the reproduced experiments.

* :mod:`repro.analysis.analytic` — closed-form PSM/TWT/predictive-sleep
  delay and throughput predictors the simulator is cross-validated
  against (``docs/ANALYTIC.md``),
* :mod:`repro.analysis.stats` — means with 95% confidence intervals
  (the format of the paper's Tables 2 and 5) and summary statistics,
* :mod:`repro.analysis.boxstats` — box-and-whisker statistics exactly as
  the paper's Figures 3 and 7 define them (median, quartiles, whiskers
  at the extrema after excluding 1.5 IQR outliers),
* :mod:`repro.analysis.cdf` — empirical CDFs for Figures 8 and 9,
* :mod:`repro.analysis.decompose` — campaign-scale delay-decomposition
  reports ("which inflation mechanism dominates, per grid slice"),
* :mod:`repro.analysis.render` — plain-text tables and CDF sketches so
  every benchmark prints the same rows/series the paper reports.
"""

from repro.analysis.analytic import (
    AnalyticError,
    predict_for_profile,
    predictive_delay_bound,
    predictive_wake_bound,
    psm_mean_beacon_wait,
    psm_mean_delay,
    saturation_throughput,
    twt_drift_bound,
    twt_mean_delay,
    twt_wake_error_bound,
)
from repro.analysis.boxstats import BoxStats
from repro.analysis.cdf import Cdf
from repro.analysis.compare import dominates, ks_statistic, ks_test, median_shift
from repro.analysis.decompose import (
    DecompositionReport,
    SliceDecomposition,
    decompose_campaign,
    decompose_snapshot,
    render_report,
    write_report,
)
from repro.analysis.render import Table, render_boxplot_row, render_cdf
from repro.analysis.report import MarkdownReport, campaign_report
from repro.analysis.stats import SummaryStats, mean_ci
from repro.analysis.timeline import ProbeTimeline, probe_timeline

__all__ = [
    "AnalyticError",
    "BoxStats",
    "Cdf",
    "DecompositionReport",
    "MarkdownReport",
    "ProbeTimeline",
    "SliceDecomposition",
    "campaign_report",
    "decompose_campaign",
    "decompose_snapshot",
    "render_report",
    "write_report",
    "dominates",
    "ks_statistic",
    "ks_test",
    "median_shift",
    "SummaryStats",
    "Table",
    "mean_ci",
    "probe_timeline",
    "predict_for_profile",
    "predictive_delay_bound",
    "predictive_wake_bound",
    "psm_mean_beacon_wait",
    "psm_mean_delay",
    "render_boxplot_row",
    "render_cdf",
    "saturation_throughput",
    "twt_drift_bound",
    "twt_mean_delay",
    "twt_wake_error_bound",
]
