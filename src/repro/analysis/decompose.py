"""Campaign-scale delay-decomposition reports.

Observed cells aggregate each probe's causal RTT attribution
(:mod:`repro.obs.attribution`) into the ``probe_component_seconds``
histogram — one labelled series per component, sketch-backed, exactly
mergeable.  This module turns those per-cell snapshots into the "which
inflation mechanism dominates, per grid slice" breakdown the paper
builds its argument on:

* :func:`decompose_snapshot` — component statistics from one metrics
  snapshot (a cell, or a merged campaign view),
* :func:`decompose_campaign` — a :class:`DecompositionReport` with one
  :class:`SliceDecomposition` per campaign cell plus the merged
  campaign-wide view,
* renderers — text table, JSON, and Prometheus gauges
  (:func:`render_text` / :func:`to_json` / :func:`to_prometheus_text`),
  surfaced by ``repro report`` and ``repro campaign --report-out``.

Everything here is plain arithmetic over snapshot dicts: snapshots are
deterministic and merge exactly, so a report built from a serial run, a
parallel run, and a crash+resume run of the same campaign is
bit-identical.
"""

import json

from repro.analysis.render import Table
from repro.obs.export import to_prometheus
from repro.obs.names import PROBE_COMPONENT_SECONDS
from repro.obs.attribution import COMPONENTS


class ComponentStats:
    """One component's aggregate over a slice."""

    __slots__ = ("name", "count", "total", "mean", "p50", "p95", "p99",
                 "share")

    def __init__(self, name, count, total, p50, p95, p99, share):
        self.name = name
        self.count = count
        self.total = total
        self.mean = total / count if count else None
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99
        self.share = share

    def as_dict(self):
        return {
            "component": self.name,
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "share": self.share,
        }

    def __repr__(self):
        share = f"{self.share * 100.0:.1f}%" if self.share is not None else "?"
        return f"<ComponentStats {self.name} {share} n={self.count}>"


class SliceDecomposition:
    """The component breakdown of one grid slice (or a whole campaign)."""

    __slots__ = ("key", "components", "total_seconds", "probes")

    def __init__(self, key, components, total_seconds, probes):
        #: ``{"env": ..., "phone": ..., "rtt": ..., "tool": ...,
        #: "cross_traffic": ...}`` — empty for the merged overall view.
        self.key = key
        #: :class:`ComponentStats` in declared component order.
        self.components = components
        self.total_seconds = total_seconds
        self.probes = probes

    @property
    def dominant(self):
        """The component claiming the largest share of the attributed
        time (declaration order breaks exact ties)."""
        best = None
        for stats in self.components:
            if best is None or stats.total > best.total:
                best = stats
        return best.name if best is not None else None

    def component(self, name):
        for stats in self.components:
            if stats.name == name:
                return stats
        return None

    def as_dict(self):
        return {
            "key": dict(self.key),
            "probes": self.probes,
            "total_seconds": self.total_seconds,
            "dominant": self.dominant,
            "components": [stats.as_dict() for stats in self.components],
        }

    def __repr__(self):
        return (f"<SliceDecomposition {self.key or 'overall'} "
                f"dominant={self.dominant}>")


def _component_entries(snapshot):
    """``{component: histogram entry}`` for the decomposition series."""
    out = {}
    for entry in snapshot.get("metrics", ()):
        if entry["name"] != PROBE_COMPONENT_SECONDS:
            continue
        if entry["labels"].get("kind") != "probe":
            continue
        component = entry["labels"].get("component")
        if component is not None:
            out[component] = entry
    return out


def decompose_snapshot(snapshot, key=None):
    """Component statistics from one metrics snapshot.

    Returns a :class:`SliceDecomposition`, or ``None`` when the
    snapshot carries no decomposition series (the cell ran without
    observability, or no probe completed).
    """
    entries = _component_entries(snapshot)
    if not entries:
        return None
    grand_total = sum(entry["sum"] for entry in entries.values())
    components = []
    probes = 0
    for name in COMPONENTS:
        entry = entries.get(name)
        if entry is None:
            components.append(ComponentStats(name, 0, 0.0, None, None,
                                             None, None))
            continue
        probes = max(probes, entry["count"])
        share = entry["sum"] / grand_total if grand_total > 0 else None
        components.append(ComponentStats(
            name, entry["count"], entry["sum"],
            entry["p50"], entry["p95"], entry["p99"], share))
    return SliceDecomposition(key or {}, components, grand_total, probes)


class DecompositionReport:
    """Per-slice breakdowns plus the merged campaign-wide view."""

    __slots__ = ("slices", "overall")

    def __init__(self, slices, overall):
        self.slices = slices
        self.overall = overall

    def __len__(self):
        return len(self.slices)


def _cell_key(result):
    return {
        "env": result.env,
        "phone": result.phone,
        "rtt": result.rtt,
        "tool": result.tool,
        "cross_traffic": result.cross_traffic,
    }


def decompose_campaign(campaign):
    """Build the decomposition report for a campaign run (or loaded)
    with ``collect_metrics``.

    Returns a :class:`DecompositionReport`, or ``None`` when no cell
    carries a decomposition (campaign ran without metrics).
    """
    slices = []
    for result in campaign.results:
        if result.metrics is None:
            continue
        slice_ = decompose_snapshot(result.metrics, key=_cell_key(result))
        if slice_ is not None:
            slices.append(slice_)
    if not slices:
        return None
    merged = campaign.merged_metrics()
    overall = decompose_snapshot(merged) if merged is not None else None
    return DecompositionReport(slices, overall)


# -- renderers ------------------------------------------------------------

def _ms(value):
    return "-" if value is None else f"{value * 1e3:.3f}"


def _pct(value):
    return "-" if value is None else f"{value * 100.0:.1f}%"


def _slice_label(key):
    if not key:
        return "overall"
    cross = "+cross" if key.get("cross_traffic") else ""
    return (f"{key['env']}:{key['phone']} {key['rtt'] * 1e3:g}ms "
            f"{key['tool']}{cross}")


def render_text(report):
    """The breakdown tables as plain text (the CLI's output)."""
    blocks = []
    table = Table(["Slice", "Probes"]
                  + [name for name in COMPONENTS] + ["Dominant"],
                  title="Delay decomposition: share of attributed RTT "
                        "per mechanism, per grid slice")
    rows = list(report.slices)
    if report.overall is not None:
        rows.append(report.overall)
    for slice_ in rows:
        table.add_row(
            _slice_label(slice_.key), slice_.probes,
            *[_pct(slice_.component(name).share) for name in COMPONENTS],
            slice_.dominant)
    blocks.append(table.render())
    detail = Table(["Slice", "Component", "mean (ms)", "p50 (ms)",
                    "p95 (ms)", "p99 (ms)", "total (s)"],
                   title="Component latency detail")
    for slice_ in rows:
        for stats in slice_.components:
            if not stats.count:
                continue
            detail.add_row(_slice_label(slice_.key), stats.name,
                           _ms(stats.mean), _ms(stats.p50), _ms(stats.p95),
                           _ms(stats.p99), f"{stats.total:.6f}")
    blocks.append(detail.render())
    return "\n\n".join(blocks) + "\n"


def to_json(report):
    """JSON-ready dict (deterministic ordering)."""
    return {
        "slices": [slice_.as_dict() for slice_ in report.slices],
        "overall": (report.overall.as_dict()
                    if report.overall is not None else None),
    }


def to_prometheus_text(report):
    """The breakdown as Prometheus gauges (label-escaped exposition
    text), one series per (slice, component)."""
    metrics = []
    rows = list(report.slices)
    if report.overall is not None:
        rows.append(report.overall)
    for slice_ in rows:
        key = slice_.key
        labels = {
            "env": key.get("env", "all"),
            "phone": key.get("phone", "all"),
            "rtt_ms": (f"{key['rtt'] * 1e3:g}" if "rtt" in key else "all"),
            "tool": key.get("tool", "all"),
            "cross_traffic": str(key.get("cross_traffic", "all")).lower(),
        }
        for stats in slice_.components:
            series = dict(labels, component=stats.name)
            metrics.append({
                "name": "decomposition_component_seconds_total",
                "kind": "gauge", "labels": series, "value": stats.total,
            })
            if stats.share is not None:
                metrics.append({
                    "name": "decomposition_component_share",
                    "kind": "gauge", "labels": series, "value": stats.share,
                })
    return to_prometheus({"metrics": metrics})


def render_report(report, fmt="text"):
    """Render in one of ``text`` / ``json`` / ``prom``."""
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return json.dumps(to_json(report), indent=2, sort_keys=True) + "\n"
    if fmt == "prom":
        return to_prometheus_text(report)
    raise ValueError(f"unknown report format {fmt!r}")


def write_report(path, report):
    """Write the report, picking the format from the suffix
    (``.json`` / ``.prom``, else text).  Returns the format."""
    path = str(path)
    if path.endswith(".json"):
        fmt = "json"
    elif path.endswith(".prom"):
        fmt = "prom"
    else:
        fmt = "text"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report(report, fmt))
    return fmt
