"""The fully automatic pipeline: calibrate, plan, measure, correct.

Stitches together the pieces the paper describes separately —

1. timer training (:class:`~repro.core.calibration.TimerCalibrator`,
   the §4.1 future work),
2. warm-up planning (:class:`~repro.core.warmup.WarmupPolicy`, §4.1),
3. the AcuteMon measurement itself (§4.1-§4.2), and
4. overhead calibration for corrected nRTT estimates (§4.2.2)

— into one call: :meth:`AutoAcuteMon.measure`.  This is what a deployed
app would run on a phone model it has never seen.
"""

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.calibrated import OverheadCalibrator
from repro.core.calibration import TimerCalibrator
from repro.core.warmup import WarmupPolicy


class AutoMeasurementResult:
    """Everything one automatic measurement produced."""

    __slots__ = ("calibration", "plan", "raw_rtts", "corrected_rtts",
                 "overhead")

    def __init__(self, calibration, plan, raw_rtts, corrected_rtts,
                 overhead):
        self.calibration = calibration
        self.plan = plan
        self.raw_rtts = raw_rtts
        self.corrected_rtts = corrected_rtts
        self.overhead = overhead

    def __repr__(self):
        return (f"<AutoMeasurementResult n={len(self.raw_rtts)} "
                f"overhead={self.overhead * 1e3:.2f}ms>")


class AutoAcuteMon:
    """Calibrating AcuteMon front end.

    Parameters
    ----------
    phone / collector / server_ip:
        As for :class:`~repro.core.acutemon.AcuteMon`.  The server must
        run the UDP echo service (for timer training) in addition to the
        probe target.
    """

    def __init__(self, phone, collector, server_ip, udp_echo_port=7007):
        self.phone = phone
        self.sim = phone.sim
        self.collector = collector
        self.server_ip = server_ip
        self.udp_echo_port = udp_echo_port
        self.calibration = None
        self.plan = None
        self._overhead_calibrator = OverheadCalibrator()

    # -- step 1+2: timers and plan ----------------------------------------

    #: Timer training needs a *nearby* reference: once the path RTT
    #: approaches the demotion timers, probe responses themselves trip
    #: bus wakes and PSM buffering and the inference conflates effects
    #: (the same failure mode the paper ascribes to ping2 on long paths).
    MAX_REFERENCE_RTT = 0.035

    def calibrate(self, sniffer_records=None):
        """Infer the phone's timers and derive a warm-up plan.

        Raises if the reference path is too long to calibrate against —
        point ``server_ip`` at a close echo server (first hop or LAN).
        """
        calibrator = TimerCalibrator(self.phone, self.collector,
                                     self.server_ip,
                                     udp_echo_port=self.udp_echo_port)
        try:
            baseline = [
                rtt for rtt in (calibrator._echo_probe() for _ in range(3))
                if rtt is not None
            ]
            if not baseline:
                raise RuntimeError("reference server does not answer echoes")
            if min(baseline) > self.MAX_REFERENCE_RTT:
                raise RuntimeError(
                    f"reference path RTT ~{min(baseline) * 1e3:.0f}ms is too "
                    "long for timer training (responses themselves trip the "
                    "energy savers); calibrate against a nearby echo server"
                )
            result = calibrator.infer_sdio()
            result = result.merged_with(calibrator.infer_psm())
            if sniffer_records is not None:
                result = result.merged_with(
                    calibrator.infer_psm_from_sniffer(sniffer_records))
        finally:
            calibrator.close()
        self.calibration = result
        if result.t_is is None or result.t_ip is None:
            raise RuntimeError(
                f"calibration incomplete: {result!r}; cannot derive a plan")
        policy = WarmupPolicy.from_calibration(result)
        self.plan = policy.recommend()
        return self.plan

    # -- step 3+4: measure and correct ----------------------------------------

    def measure(self, probe_count=100, probe_method="tcp_syn",
                train_overhead=True, **config_kwargs):
        """Run one AcuteMon measurement with the derived plan.

        With ``train_overhead`` the first run also trains the overhead
        calibrator from the sniffer ground truth in the probe records
        (when available), so ``corrected_rtts`` are unbiased.
        """
        if self.plan is None:
            self.calibrate()
        config = AcuteMonConfig(
            dpre=self.plan.dpre, db=self.plan.db,
            probe_count=probe_count, probe_method=probe_method,
            **config_kwargs,
        )
        monitor = AcuteMon(self.phone, self.collector, self.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda results: done.append(results))
        while not done:
            if not self.sim.step():
                raise RuntimeError("AutoAcuteMon stalled: event heap empty")
        raw = monitor.rtts()
        records = [self.collector.get(outcome.probe_id)
                   for outcome in monitor.results]
        completed = [r for r in records if r is not None and r.complete]
        if train_overhead:
            self._overhead_calibrator.train_from_records(completed)
        if self._overhead_calibrator.trained:
            overhead = self._overhead_calibrator.overhead()
            corrected = self._overhead_calibrator.correct_all(raw)
        else:
            overhead = 0.0
            corrected = list(raw)
        return AutoMeasurementResult(self.calibration, self.plan, raw,
                                     corrected, overhead)
