"""Inferring a phone's energy-saving timers (the paper's future work).

§4.1 notes that the prototype's empirical ``dpre = db = 20 ms`` "could be
inappropriate for some smartphone models, because both Tis and Tip are
tunable.  ...  A simple solution is training the program to obtain
suitable values."  This module implements that training:

* :meth:`TimerCalibrator.infer_sdio` ramps the idle gap between probe
  pairs and finds the change point where the user-level RTT jumps by the
  bus promotion delay — yielding both ``Tis`` and ``Tprom``.
* :meth:`TimerCalibrator.infer_psm` asks the echo server to delay its
  responses (an in-band stand-in for a long path) and finds the delay at
  which responses start hitting power-save buffering — yielding ``Tip``.
* :meth:`TimerCalibrator.infer_psm_from_sniffer` and
  :meth:`TimerCalibrator.infer_listen_interval` read the same values
  directly from a monitor-mode capture (PM-bit null frames and TIM
  beacons), the way a testbed operator would.

The result feeds :meth:`repro.core.warmup.WarmupPolicy.from_calibration`.
"""

from repro.analysis.stats import percentile


class CalibrationResult:
    """Inferred timer values for one phone."""

    def __init__(self, t_is=None, t_prom=None, t_ip=None,
                 listen_interval=None, details=None):
        self.t_is = t_is
        self.t_prom = t_prom
        self.t_ip = t_ip
        self.listen_interval = listen_interval
        self.details = details if details is not None else {}

    def merged_with(self, other):
        """Combine two partial results (later values win when both set)."""
        merged = CalibrationResult(
            t_is=other.t_is if other.t_is is not None else self.t_is,
            t_prom=other.t_prom if other.t_prom is not None else self.t_prom,
            t_ip=other.t_ip if other.t_ip is not None else self.t_ip,
            listen_interval=(
                other.listen_interval
                if other.listen_interval is not None
                else self.listen_interval
            ),
        )
        merged.details = {**self.details, **other.details}
        return merged

    def __repr__(self):
        def fmt(value):
            return f"{value * 1e3:.1f}ms" if value is not None else "?"

        return (
            f"<CalibrationResult Tis={fmt(self.t_is)} "
            f"Tprom={fmt(self.t_prom)} Tip={fmt(self.t_ip)} "
            f"L={self.listen_interval}>"
        )


class TimerCalibrator:
    """Active/passive inference of Tis, Tprom, Tip and the listen interval.

    Runs the simulation inline (it owns the event loop while measuring),
    so create it, call the ``infer_*`` methods, and read the results.
    """

    def __init__(self, phone, collector, server_ip, udp_echo_port=7007,
                 probe_timeout=2.0):
        self.phone = phone
        self.sim = phone.sim
        self.collector = collector
        self.server_ip = server_ip
        self.udp_echo_port = udp_echo_port
        self.probe_timeout = probe_timeout
        self._port = phone.stack.allocate_port()
        self._reply_box = {}
        self._binding = phone.stack.udp_bind(
            self._port, phone.user_wrap(self._on_reply))

    def close(self):
        self._binding.close()

    # -- probe plumbing ------------------------------------------------------

    def _on_reply(self, packet):
        probe_id = packet.probe_id
        if probe_id in self._reply_box:
            self._reply_box[probe_id] = self.sim.now

    def _echo_probe(self, echo_delay=0.0):
        """Send one UDP echo probe; returns its user-level RTT or None."""
        record = self.collector.new_probe(kind="probe")
        meta = self.collector.meta_for(record)
        if echo_delay > 0:
            meta["echo_delay"] = echo_delay
        self._reply_box[record.probe_id] = None
        t0 = self.phone.user_send(lambda: self.phone.stack.send_udp(
            self.server_ip, self.udp_echo_port, src_port=self._port,
            payload_size=32, meta=meta,
        ))
        self.collector.record_user_send(record.probe_id, t0)
        deadline = self.sim.now + echo_delay + self.probe_timeout
        while self._reply_box[record.probe_id] is None and self.sim.now < deadline:
            if not self.sim.step():
                break
        t_reply = self._reply_box.pop(record.probe_id)
        if t_reply is None:
            self.collector.record_timeout(record.probe_id)
            return None
        self.collector.record_user_recv(record.probe_id, t_reply)
        return t_reply - t0

    def _idle(self, duration):
        """Let the phone sit idle for ``duration``."""
        self.sim.run(until=self.sim.now + duration)

    # -- SDIO: Tis and Tprom ---------------------------------------------------

    def infer_sdio(self, gaps=None, repeats=7, jump_threshold=1e-3):
        """Ramp the idle gap before a probe; find the bus-wake change point.

        For each candidate gap the phone idles that long after the
        previous response, then probes; once the gap exceeds ``Tis`` the
        bus has demoted and the RTT jumps by roughly ``Tprom``.

        The change-point statistic is the per-gap *minimum* RTT: the
        driver's receive-path cost is heavy-tailed (Table 3), so medians
        wobble by a millisecond, while the minimum pins the distribution
        floor and shifts only when the wake delay appears.
        """
        if gaps is None:
            gaps = [g * 1e-3 for g in range(5, 105, 5)]
        minima = {}
        for gap in gaps:
            samples = []
            for _ in range(repeats):
                # Ensure a known-awake starting point, then idle precisely.
                warm = self._echo_probe()
                if warm is None:
                    continue
                self._idle(gap)
                rtt = self._echo_probe()
                if rtt is not None:
                    samples.append(rtt)
            if samples:
                minima[gap] = min(samples)
        if len(minima) < 2:
            return CalibrationResult(details={"sdio_minima": minima})
        ordered = sorted(minima)
        base = minima[ordered[0]]
        t_is = None
        for gap in ordered:
            if minima[gap] - base > jump_threshold:
                t_is = gap
                break
        t_prom = None
        if t_is is not None:
            high = [minima[g] for g in ordered if g >= t_is]
            low = [minima[g] for g in ordered if g < t_is]
            if high and low:
                t_prom = percentile(high, 50) - percentile(low, 50)
        return CalibrationResult(t_is=t_is, t_prom=t_prom,
                                 details={"sdio_minima": minima})

    # -- PSM: Tip -------------------------------------------------------------

    def infer_psm(self, delays=None, repeats=3, inflation_threshold=15e-3):
        """Ramp server-side response delays to find the PSM timeout.

        A response delayed by more than ``Tip`` (minus the path RTT)
        finds the station dozing and waits for a beacon; the measured
        RTT then exceeds ``delay + baseline`` by tens of milliseconds.
        """
        if delays is None:
            delays = [d * 1e-3 for d in range(20, 520, 20)]
        baseline_samples = [
            rtt for rtt in (self._echo_probe() for _ in range(repeats))
            if rtt is not None
        ]
        if not baseline_samples:
            return CalibrationResult()
        baseline = percentile(baseline_samples, 50)
        inflations = {}
        t_ip = None
        for delay in delays:
            hits = 0
            samples = 0
            for _ in range(repeats):
                rtt = self._echo_probe(echo_delay=delay)
                if rtt is None:
                    continue
                samples += 1
                if rtt - delay - baseline > inflation_threshold:
                    hits += 1
            if samples:
                inflations[delay] = hits / samples
            if samples and hits * 2 > samples:
                t_ip = delay + baseline
                break
        return CalibrationResult(
            t_ip=t_ip,
            details={"psm_baseline": baseline, "psm_hits": inflations},
        )

    # -- passive (sniffer-based) inference ------------------------------------

    def infer_psm_from_sniffer(self, records):
        """Read ``Tip`` straight from the capture.

        Each null frame with PM=1 marks a doze; its gap from the phone's
        previous data activity is one Tip sample.
        """
        mac = self.phone.sta.mac
        last_activity = None
        samples = []
        for record in records:
            frame = record.frame
            if record.is_data and (frame.src_mac == mac or frame.dst_mac == mac):
                last_activity = record.end_time
            elif record.is_null and frame.src_mac == mac:
                if frame.pm and last_activity is not None:
                    samples.append(record.time - last_activity)
                last_activity = record.end_time
        if not samples:
            return CalibrationResult()
        return CalibrationResult(
            t_ip=percentile(samples, 50),
            details={"psm_sniffer_samples": samples},
        )

    def infer_listen_interval(self, records):
        """Count beacons between a buffered-traffic TIM and the fetch.

        With the actual listen interval L the station reacts to every
        (L+1)-th beacon; every phone in Table 4 turned out to honour
        L = 0 (react at the first TIM'd beacon).
        """
        mac = self.phone.sta.mac
        aid = self.phone.sta.aid
        skipped = None
        samples = []
        for record in records:
            frame = record.frame
            if record.is_beacon:
                if aid in frame.tim_aids:
                    if skipped is None:
                        skipped = 0
                    else:
                        skipped += 1
            elif record.is_null and frame.src_mac == mac and not frame.pm:
                if skipped is not None:
                    samples.append(skipped)
                skipped = None
            elif record.is_data and frame.src_mac == mac:
                skipped = None
        if not samples:
            return CalibrationResult()
        return CalibrationResult(
            listen_interval=int(percentile(samples, 50)),
            details={"listen_samples": samples},
        )

    def full_calibration(self, sniffer_records=None):
        """Run the active inferences (and passive, given a capture)."""
        result = self.infer_sdio()
        result = result.merged_with(self.infer_psm())
        if sniffer_records is not None:
            result = result.merged_with(
                self.infer_psm_from_sniffer(sniffer_records))
            result = result.merged_with(
                self.infer_listen_interval(sniffer_records))
        return result
