"""AcuteMon: accurate nRTT measurement on an (un)modified phone.

Two concurrent activities, exactly as §4.1 describes:

* the **background-traffic thread (BT)** sends one warm-up packet, waits
  ``dpre``, then keeps sending lightweight background packets every
  ``db`` while the measurement runs.  Warm-up and background packets are
  UDP with TTL=1: the first-hop router drops them (and AcuteMon ignores
  the ICMP time-exceeded responses), so they never burden the path under
  measurement.  Their only job is to keep the SDIO bus awake and the
  station in CAM.
* the **measurement thread (MT)** starts ``dpre`` after the warm-up and
  sends K probes.  The prototype measures nRTT with TCP control messages
  (SYN -> SYN|ACK) or TCP data (HTTP request/response); ICMP and UDP
  probes are also provided, as the paper notes the extension is easy.

The MT runs as a native binary in the paper (to avoid Dalvik overhead);
here that corresponds to ``phone.runtime = 'native'``, which is asserted
at start unless explicitly overridden.
"""

from repro.core.warmup import DEFAULT_DB, DEFAULT_DPRE
from repro.obs.names import (
    ACUTEMON_BACKGROUND_PACKETS_TOTAL,
    ACUTEMON_PROBES_TOTAL,
    ACUTEMON_WARMUP_PACKETS_TOTAL,
    SPAN_MEASUREMENT_PROBE,
)

PROBE_METHODS = ("tcp_syn", "http", "icmp", "udp")


class AcuteMonConfig:
    """Tunable parameters of one AcuteMon run."""

    def __init__(self, dpre=DEFAULT_DPRE, db=DEFAULT_DB, probe_count=100,
                 probe_method="tcp_syn", probe_gap=0.0, probe_timeout=1.0,
                 warmup_enabled=True, background_enabled=True,
                 warmup_ttl=1, background_payload=8, http_port=80,
                 udp_echo_port=7007, warmup_port=33434,
                 enforce_native_runtime=True):
        if probe_method not in PROBE_METHODS:
            raise ValueError(
                f"unknown probe method {probe_method!r}; known: {PROBE_METHODS}"
            )
        if probe_count < 1:
            raise ValueError("probe_count must be >= 1")
        if dpre <= 0 or db <= 0:
            raise ValueError("dpre and db must be positive")
        self.dpre = dpre
        self.db = db
        self.probe_count = probe_count
        self.probe_method = probe_method
        self.probe_gap = probe_gap
        self.probe_timeout = probe_timeout
        self.warmup_enabled = warmup_enabled
        self.background_enabled = background_enabled
        self.warmup_ttl = warmup_ttl
        self.background_payload = background_payload
        self.http_port = http_port
        self.udp_echo_port = udp_echo_port
        self.warmup_port = warmup_port
        self.enforce_native_runtime = enforce_native_runtime


class ProbeOutcome:
    """One probe's user-level result."""

    __slots__ = ("probe_id", "sent_at", "rtt")

    def __init__(self, probe_id, sent_at, rtt):
        self.probe_id = probe_id
        self.sent_at = sent_at
        self.rtt = rtt  # None on timeout

    @property
    def lost(self):
        return self.rtt is None

    def __repr__(self):
        rtt = "lost" if self.lost else f"{self.rtt * 1e3:.2f}ms"
        return f"<ProbeOutcome {self.probe_id} {rtt}>"


class AcuteMon:
    """The AcuteMon measurement app."""

    def __init__(self, phone, collector, target_ip, config=None,
                 name="acutemon"):
        self.phone = phone
        self.sim = phone.sim
        self.collector = collector
        self.target_ip = target_ip
        self.config = config if config is not None else AcuteMonConfig()
        self.name = name
        self.results = []
        self.background_sent = 0
        self.warmups_sent = 0
        self.running = False
        self._on_complete = None
        self._bg_event = None
        self._probe_timer = None
        self._udp_binding = None
        self._ping_handle = None
        self._http_conn = None
        self._pending = None  # (record, user_t0) of the in-flight probe

    # -- lifecycle ---------------------------------------------------------

    def run_sync(self, count=None, deadline=None):
        """Start and drive the simulator until the run completes.

        Same contract as
        :meth:`~repro.tools.base.MeasurementTool.run_sync`, which is
        what lets the tool registry treat AcuteMon as just another
        registered tool.  ``count`` is accepted for signature
        compatibility but the probe count always comes from the config
        (:class:`AcuteMonConfig.probe_count`).  Returns the results.
        """
        done = []
        self.start(on_complete=lambda results: done.append(results))
        while not done:
            if deadline is not None and self.sim.now > deadline:
                raise RuntimeError(
                    f"{self.name} did not finish by {deadline}s")
            if not self.sim.step():
                raise RuntimeError(
                    f"{self.name} stalled: event heap empty")
        return self.results

    def start(self, on_complete=None):
        """Kick off the warm-up phase, then the measurement phase."""
        if self.running:
            raise RuntimeError("AcuteMon already running")
        if self.config.enforce_native_runtime and self.phone.runtime != "native":
            # The MT is a pre-compiled C binary in the paper; measuring
            # from Dalvik would re-introduce the user-level overhead.
            self.phone.runtime = "native"
        self.running = True
        self._on_complete = on_complete
        self.results = []
        if self.config.warmup_enabled:
            self._send_warmup()
            if self.config.background_enabled:
                self._start_background_train()
            self.sim.schedule(self.config.dpre, self._begin_measurement,
                              label=f"{self.name}-mt-start")
        else:
            if self.config.background_enabled:
                self._start_background_train()
            self._begin_measurement()

    def _finish(self):
        self.running = False
        if self._bg_event is not None:
            self._bg_event.cancel()
            self._bg_event = None
        if self._udp_binding is not None:
            self._udp_binding.close()
            self._udp_binding = None
        if self._ping_handle is not None:
            self._ping_handle.close()
            self._ping_handle = None
        if self._http_conn is not None:
            self._http_conn.close()
            self._http_conn = None
        if self._on_complete is not None:
            self._on_complete(self.results)

    # -- background thread -----------------------------------------------------

    def _send_warmup(self):
        record = self.collector.new_probe(kind="warmup")
        meta = self.collector.meta_for(record)
        self.warmups_sent += 1
        if self.sim.metrics.enabled:
            self.sim.metrics.inc(ACUTEMON_WARMUP_PACKETS_TOTAL)
        self.phone.user_send(lambda: self.phone.stack.send_udp(
            self.target_ip, self.config.warmup_port,
            payload_size=self.config.background_payload,
            ttl=self.config.warmup_ttl, meta=meta,
        ))

    def _start_background_train(self):
        # Chained re-arm (``rearm_after``): each successor is scheduled
        # ``db`` after the tick that fired, exactly like the former
        # self-rescheduling callback; _finish() cancels the train.
        self._bg_event = self.sim.schedule_periodic(
            self.config.db, self._background_tick, rearm_after=True,
            label=f"{self.name}-bg",
        )

    def _background_tick(self):
        if not self.running:
            return
        record = self.collector.new_probe(kind="background")
        meta = self.collector.meta_for(record)
        self.background_sent += 1
        if self.sim.metrics.enabled:
            self.sim.metrics.inc(ACUTEMON_BACKGROUND_PACKETS_TOTAL)
        self.phone.user_send(lambda: self.phone.stack.send_udp(
            self.target_ip, self.config.warmup_port,
            payload_size=self.config.background_payload,
            ttl=self.config.warmup_ttl, meta=meta,
        ))

    # -- measurement thread ---------------------------------------------------

    def _begin_measurement(self):
        method = self.config.probe_method
        if method == "icmp":
            self._ping_handle = self.phone.stack.register_ping(
                0xACE, self.phone.user_wrap(self._icmp_reply))
        elif method == "udp":
            port = self.phone.stack.allocate_port()
            self._udp_binding = self.phone.stack.udp_bind(
                port, self.phone.user_wrap(self._udp_reply))
            self._udp_src_port = port
        if method == "http":
            self._open_http_connection()
        else:
            self._next_probe()

    def _open_http_connection(self):
        conn = self.phone.stack.tcp.connect(self.target_ip,
                                            self.config.http_port)
        self._http_conn = conn
        conn.on_connected = lambda _conn: self._next_probe()
        conn.on_data = self.phone.user_wrap(self._http_response)
        conn.on_reset = lambda _conn: self._abort_run()

    def _abort_run(self):
        """Target unreachable/reset mid-run: report what we have."""
        if self._probe_timer is not None:
            self._probe_timer.cancel()
            self._probe_timer = None
        self._finish()

    def _next_probe(self):
        if len(self.results) >= self.config.probe_count:
            self._finish()
            return
        record = self.collector.new_probe(kind="probe")
        meta = self.collector.meta_for(record)
        method = self.config.probe_method
        if method == "tcp_syn":
            t0 = self.phone.user_send(lambda: self._connect_probe(record, meta))
        elif method == "http":
            t0 = self.phone.user_send(lambda: self._http_conn.send(
                120, meta=meta))
        elif method == "icmp":
            t0 = self.phone.user_send(lambda: self.phone.stack.send_echo_request(
                self.target_ip, 0xACE, record.probe_id & 0xFFFF, meta=meta))
        else:  # udp
            t0 = self.phone.user_send(lambda: self.phone.stack.send_udp(
                self.target_ip, self.config.udp_echo_port,
                src_port=self._udp_src_port, payload_size=32, meta=meta))
        self.collector.record_user_send(record.probe_id, t0)
        self._pending = (record, t0)
        self._probe_timer = self.sim.schedule(
            self.config.probe_timeout, self._probe_timed_out, record.probe_id,
            label=f"{self.name}-timeout",
        )

    def _connect_probe(self, record, meta):
        conn = self.phone.stack.tcp.connect(
            self.target_ip, self.config.http_port, meta=meta)
        conn.on_connected = self.phone.user_wrap(
            lambda _conn: self._tcp_connected(record.probe_id, conn))
        conn.on_reset = lambda _conn: None  # timeout path handles it

    # -- probe completions -------------------------------------------------------

    def _tcp_connected(self, probe_id, conn):
        conn.abort()  # one RST; the probe only needed the SYN|ACK
        self._complete_probe(probe_id)

    def _http_response(self, _conn, _nbytes, meta):
        probe_id = meta.get("probe_id")
        if probe_id is not None:
            self._complete_probe(probe_id)

    def _icmp_reply(self, packet):
        self._complete_probe(packet.probe_id)

    def _udp_reply(self, packet):
        self._complete_probe(packet.probe_id)

    def _complete_probe(self, probe_id):
        if self._pending is None or self._pending[0].probe_id != probe_id:
            return  # late response after timeout: ignore
        record, t0 = self._pending
        self._pending = None
        if self._probe_timer is not None:
            self._probe_timer.cancel()
            self._probe_timer = None
        now = self.sim.now
        self.collector.record_user_recv(probe_id, now)
        self.results.append(ProbeOutcome(probe_id, t0, now - t0))
        if self.sim.spans.enabled:
            self.sim.spans.record(SPAN_MEASUREMENT_PROBE, t0, now,
                                  probe_id=probe_id,
                                  method=self.config.probe_method,
                                  outcome="ok")
        if self.sim.metrics.enabled:
            self.sim.metrics.inc(ACUTEMON_PROBES_TOTAL,
                                 labels={"outcome": "ok"})
        if self.config.probe_gap > 0:
            self.sim.schedule(self.config.probe_gap, self._next_probe,
                              label=f"{self.name}-gap")
        else:
            self.sim.call_soon(self._next_probe, label=f"{self.name}-next")

    def _probe_timed_out(self, probe_id):
        self._probe_timer = None
        if self._pending is None or self._pending[0].probe_id != probe_id:
            return
        record, t0 = self._pending
        self._pending = None
        self.collector.record_timeout(probe_id)
        self.results.append(ProbeOutcome(probe_id, t0, None))
        if self.sim.spans.enabled:
            self.sim.spans.record(SPAN_MEASUREMENT_PROBE, t0, self.sim.now,
                                  probe_id=probe_id,
                                  method=self.config.probe_method,
                                  outcome="timeout")
        if self.sim.metrics.enabled:
            self.sim.metrics.inc(ACUTEMON_PROBES_TOTAL,
                                 labels={"outcome": "timeout"})
        self._next_probe()

    # -- reporting ------------------------------------------------------------

    def rtts(self):
        """Measured RTTs in seconds (lost probes excluded)."""
        return [outcome.rtt for outcome in self.results if not outcome.lost]

    def loss_count(self):
        return sum(1 for outcome in self.results if outcome.lost)

    def __repr__(self):
        return (
            f"<AcuteMon {self.name} method={self.config.probe_method} "
            f"probes={len(self.results)}/{self.config.probe_count}>"
        )
