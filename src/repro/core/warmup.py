"""The warm-up / background timing policy (paper §4.1).

After a warm-up packet, the phone is in the wake-up state once the
promotion delay ``Tprom`` has passed; it demotes again after ``Tis``
(SDIO) or ``Tip`` (PSM) of idleness.  Hence:

* the warm-up lead time must satisfy ``Tprom < dpre < min(Tis, Tip)``,
  so the first probe finds everything awake and nothing has demoted yet;
* the background inter-packet interval must satisfy
  ``db < min(Tis, Tip)`` so the demotion timers keep being reset.

The prototype uses 20 ms for both; :class:`WarmupPolicy` validates or
derives values for any phone profile (or for calibrated timer values —
see :mod:`repro.core.calibration`).
"""

DEFAULT_DPRE = 20e-3
DEFAULT_DB = 20e-3


class WarmupPlan:
    """A concrete (dpre, db) choice plus the constraints it satisfies."""

    __slots__ = ("dpre", "db", "t_prom", "t_is", "t_ip")

    def __init__(self, dpre, db, t_prom, t_is, t_ip):
        self.dpre = dpre
        self.db = db
        self.t_prom = t_prom
        self.t_is = t_is
        self.t_ip = t_ip

    @property
    def demotion_floor(self):
        """min(Tis, Tip): the budget both dpre and db must stay under."""
        return min(self.t_is, self.t_ip)

    @property
    def valid(self):
        return (
            self.t_prom < self.dpre < self.demotion_floor
            and 0 < self.db < self.demotion_floor
        )

    def violations(self):
        """Human-readable list of constraint violations (empty if valid)."""
        problems = []
        if self.dpre <= self.t_prom:
            problems.append(
                f"dpre ({self.dpre * 1e3:.1f}ms) <= Tprom "
                f"({self.t_prom * 1e3:.1f}ms): probes may start before the "
                "bus is awake"
            )
        if self.dpre >= self.demotion_floor:
            problems.append(
                f"dpre ({self.dpre * 1e3:.1f}ms) >= min(Tis, Tip) "
                f"({self.demotion_floor * 1e3:.1f}ms): the phone demotes "
                "again before measurement starts"
            )
        if self.db >= self.demotion_floor:
            problems.append(
                f"db ({self.db * 1e3:.1f}ms) >= min(Tis, Tip) "
                f"({self.demotion_floor * 1e3:.1f}ms): background traffic "
                "cannot hold the wake-up state"
            )
        if self.db <= 0:
            problems.append("db must be positive")
        return problems

    def __repr__(self):
        state = "valid" if self.valid else "INVALID"
        return (
            f"<WarmupPlan dpre={self.dpre * 1e3:.1f}ms db={self.db * 1e3:.1f}ms "
            f"[{state}]>"
        )


class WarmupPolicy:
    """Derives and validates warm-up plans for a phone.

    Timer values come either from a :class:`~repro.phone.profiles.PhoneProfile`
    (what the paper's empirical 20 ms choice assumes) or from explicit
    calibrated values.
    """

    def __init__(self, t_prom, t_is, t_ip):
        if min(t_prom, t_is, t_ip) < 0:
            raise ValueError("timer values must be non-negative")
        self.t_prom = t_prom
        self.t_is = t_is
        self.t_ip = t_ip

    @classmethod
    def for_profile(cls, profile):
        """Policy from a phone profile's nominal timers.

        ``Tprom`` is taken at the chipset's worst-case wake delay, and
        ``Tip`` at its jitter floor — conservative on both ends.
        """
        return cls(
            t_prom=profile.chipset.wake_delay.high,
            t_is=profile.sdio_idle_window,
            t_ip=profile.psm_timeout - profile.psm_timeout_jitter,
        )

    @classmethod
    def from_calibration(cls, calibration):
        """Policy from a :class:`~repro.core.calibration.CalibrationResult`."""
        return cls(t_prom=calibration.t_prom, t_is=calibration.t_is,
                   t_ip=calibration.t_ip)

    def plan(self, dpre=DEFAULT_DPRE, db=DEFAULT_DB):
        """Build a plan with explicit values (defaults: the paper's 20 ms)."""
        return WarmupPlan(dpre, db, self.t_prom, self.t_is, self.t_ip)

    def recommend(self, safety=0.25):
        """Derive a plan automatically.

        Both knobs target the midpoint between the constraint edges,
        clamped by a safety margin: dpre sits ``safety`` of the way above
        Tprom toward min(Tis, Tip); db at half the demotion floor.
        """
        floor = min(self.t_is, self.t_ip)
        if self.t_prom >= floor:
            raise ValueError(
                f"no feasible dpre: Tprom ({self.t_prom * 1e3:.1f}ms) >= "
                f"min(Tis, Tip) ({floor * 1e3:.1f}ms)"
            )
        dpre = self.t_prom + (floor - self.t_prom) * safety
        db = floor * 0.5
        return WarmupPlan(dpre, db, self.t_prom, self.t_is, self.t_ip)

    def __repr__(self):
        return (
            f"<WarmupPolicy Tprom={self.t_prom * 1e3:.1f}ms "
            f"Tis={self.t_is * 1e3:.1f}ms Tip={self.t_ip * 1e3:.1f}ms>"
        )
