"""Overhead calibration: from accurate to *corrected* measurements.

§4.2.2 closes with: "the delay overheads for AcuteMon are independent of
nRTTs, and the values of the overheads are much more stable.  Therefore,
the true value can be obtained by performing calibration."

:class:`OverheadCalibrator` implements that last step.  Train it once on
a path whose nRTT is known (in the testbed: the emulated RTT; in the
field: a reference server on a measured link) and it learns the phone's
stable per-probe overhead distribution; afterwards,
:meth:`correct` maps raw user-level RTTs to unbiased nRTT estimates.
"""

from repro.analysis.stats import SummaryStats, percentile


class OverheadCalibrator:
    """Learns and subtracts a phone's stable measurement overhead."""

    def __init__(self):
        self._samples = []

    @property
    def trained(self):
        return len(self._samples) >= 3

    @property
    def sample_count(self):
        return len(self._samples)

    # -- training -----------------------------------------------------------

    def train_from_records(self, records):
        """Train on completed probe records (uses du - dn per probe)."""
        added = 0
        for record in records:
            if record.du is not None and record.dn is not None:
                self._samples.append(record.du - record.dn)
                added += 1
        return added

    def train_from_known_rtt(self, measured_rtts, true_rtt):
        """Train without a sniffer: a reference path of known nRTT."""
        for rtt in measured_rtts:
            self._samples.append(rtt - true_rtt)
        return len(measured_rtts)

    # -- the learned overhead ------------------------------------------------

    def overhead(self, quantile=0.5):
        """The learned overhead at a quantile (median by default)."""
        if not self.trained:
            raise RuntimeError(
                f"calibrator needs >= 3 samples, has {len(self._samples)}"
            )
        return percentile(self._samples, quantile * 100)

    def overhead_stats(self):
        return SummaryStats(self._samples)

    # -- applying it -----------------------------------------------------------

    def correct(self, measured_rtt):
        """One corrected nRTT estimate (never negative)."""
        return max(0.0, measured_rtt - self.overhead())

    def correct_all(self, measured_rtts):
        offset = self.overhead()
        return [max(0.0, rtt - offset) for rtt in measured_rtts]

    def residual_error(self, measured_rtts, true_rtt):
        """Median |corrected - true| over a validation set."""
        corrected = self.correct_all(measured_rtts)
        return percentile([abs(c - true_rtt) for c in corrected], 50)

    def __repr__(self):
        if not self.trained:
            return f"<OverheadCalibrator untrained ({len(self._samples)})>"
        return (f"<OverheadCalibrator n={len(self._samples)} "
                f"overhead={self.overhead() * 1e3:.2f}ms>")
