"""The paper's core contribution.

* :mod:`repro.core.measurement` — the multi-layer timestamp ledger of
  Figure 1: every probe transaction is tracked at the user, kernel,
  driver and PHY vantage points.
* :mod:`repro.core.overhead` — the delay-overhead decomposition
  (Δdu−k, Δdk−v, Δdv−n, Δdk−n) of §2.1.
* :mod:`repro.core.warmup` — the warm-up/background timing policy
  ``Tprom < dpre < min(Tis, Tip)`` and ``db < min(Tis, Tip)`` of §4.1.
* :mod:`repro.core.acutemon` — **AcuteMon** itself: a background-traffic
  thread that keeps the SDIO bus and the 802.11 MAC awake, plus a
  measurement thread sending K probes.
* :mod:`repro.core.calibration` — inference of a phone's ``Tis``/``Tip``
  and listen interval from probing or sniffing (the paper's stated
  future work, §4.1).
"""

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.auto import AutoAcuteMon
from repro.core.calibrated import OverheadCalibrator
from repro.core.calibration import TimerCalibrator
from repro.core.measurement import ProbeCollector, ProbeRecord
from repro.core.overhead import OverheadSet, decompose
from repro.core.warmup import WarmupPlan, WarmupPolicy

__all__ = [
    "AcuteMon",
    "AcuteMonConfig",
    "AutoAcuteMon",
    "OverheadCalibrator",
    "OverheadSet",
    "ProbeCollector",
    "ProbeRecord",
    "TimerCalibrator",
    "WarmupPlan",
    "WarmupPolicy",
    "decompose",
]
