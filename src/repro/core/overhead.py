"""Delay-overhead decomposition (paper §2.1).

Given the layered RTTs of a probe the overheads are defined as:

* ``Δd      = du - dn`` — total delay overhead,
* ``Δdu−k  = du - dk`` — user/kernel overhead (runtime + socket path),
* ``Δdk−v  = dk - dv`` — kernel/driver overhead,
* ``Δdv−n  = dv - dn`` — driver/PHY overhead (where SDIO wake lands),
* ``Δdk−n  = dk - dn`` — kernel/PHY overhead (= Δdk−v + Δdv−n), the
  quantity plotted in Figures 3 and 7.
"""

from repro.analysis.boxstats import BoxStats
from repro.analysis.stats import SummaryStats

OVERHEAD_NAMES = ("total", "du_k", "dk_v", "dv_n", "dk_n")


class OverheadSet:
    """Per-probe overhead series for one experiment cell."""

    def __init__(self):
        self.total = []
        self.du_k = []
        self.dk_v = []
        self.dv_n = []
        self.dk_n = []

    def add_record(self, record):
        """Accumulate one completed :class:`ProbeRecord`'s overheads."""
        du, dk, dv, dn = record.du, record.dk, record.dv, record.dn
        if du is not None and dn is not None:
            self.total.append(du - dn)
        if du is not None and dk is not None:
            self.du_k.append(du - dk)
        if dk is not None and dv is not None:
            self.dk_v.append(dk - dv)
        if dv is not None and dn is not None:
            self.dv_n.append(dv - dn)
        if dk is not None and dn is not None:
            self.dk_n.append(dk - dn)

    def series(self, name):
        if name not in OVERHEAD_NAMES:
            raise ValueError(f"unknown overhead {name!r}; known: {OVERHEAD_NAMES}")
        return getattr(self, name)

    def box(self, name):
        """Box-plot statistics for one overhead (Figures 3 and 7)."""
        return BoxStats(self.series(name))

    def summary(self, name):
        return SummaryStats(self.series(name))

    def __len__(self):
        return len(self.total)

    def __repr__(self):
        return f"<OverheadSet n={len(self.total)}>"


def decompose(records):
    """Build an :class:`OverheadSet` from completed probe records."""
    overheads = OverheadSet()
    for record in records:
        overheads.add_record(record)
    return overheads
