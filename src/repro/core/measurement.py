"""The multi-layer timestamp ledger (paper Figure 1).

A *probe transaction* is one request/response pair identified by a
``probe_id`` carried in packet metadata (servers copy it onto their
responses).  The :class:`ProbeCollector` assembles, per probe:

* user-level timestamps ``tou``/``tiu`` reported by the measuring tool,
* the request and response :class:`~repro.net.packet.Packet` objects,
  captured at the phone's kernel tap — each packet accumulates its
  ``kernel`` (tok/tik), ``driver``/``driver_done`` (tov, dvsend/dvrecv)
  and ``phy`` (ton/tin) stamps as it traverses the stack,

from which the layered RTTs fall out as plain arithmetic:

* ``du = tiu - tou`` (user/app level),
* ``dk = tik - tok`` (kernel level, what tcpdump reports),
* ``dv = tiv - tov`` (driver level, the rebuilt-kernel instrumentation),
* ``dn = tin - ton`` (network level, what the sniffers see).
"""

from repro.net.packet import TCP_ACK, TcpSegment
from repro.obs.names import (
    PROBE_DN_SECONDS,
    PROBE_DU_SECONDS,
    PROBE_INFLATION_SECONDS,
    PROBE_TIMEOUTS_TOTAL,
)

PROBE_KINDS = ("probe", "warmup", "background")


def _is_pure_tcp_ack(packet):
    payload = packet.payload
    return (
        isinstance(payload, TcpSegment)
        and payload.payload_size == 0
        and payload.flags == TCP_ACK
    )


class ProbeRecord:
    """Everything known about one probe transaction."""

    __slots__ = ("probe_id", "kind", "user_send", "user_recv",
                 "request", "response", "timed_out")

    def __init__(self, probe_id, kind="probe"):
        if kind not in PROBE_KINDS:
            raise ValueError(f"unknown probe kind {kind!r}")
        self.probe_id = probe_id
        self.kind = kind
        self.user_send = None
        self.user_recv = None
        self.request = None
        self.response = None
        self.timed_out = False

    # -- layered RTTs -----------------------------------------------------

    def _span(self, stamp):
        if self.request is None or self.response is None:
            return None
        t_out = self.request.stamps.get(stamp)
        t_in = self.response.stamps.get(stamp)
        if t_out is None or t_in is None:
            return None
        return t_in - t_out

    @property
    def du(self):
        """User-level RTT (what the app reports)."""
        if self.user_send is None or self.user_recv is None:
            return None
        return self.user_recv - self.user_send

    @property
    def dk(self):
        """Kernel-level RTT (tcpdump vantage point)."""
        return self._span("kernel")

    @property
    def dv(self):
        """Driver-level RTT (dhd_start_xmit out, dhdsdio_isr in)."""
        return self._span("driver")

    @property
    def dn(self):
        """Network-level RTT (on-air, the sniffers' ground truth)."""
        return self._span("phy")

    @property
    def dvsend(self):
        """Driver TX path delay (dhd_start_xmit -> dhdsdio_txpkt)."""
        if self.request is None:
            return None
        entry = self.request.stamps.get("driver")
        done = self.request.stamps.get("driver_done")
        if entry is None or done is None:
            return None
        return done - entry

    @property
    def dvrecv(self):
        """Driver RX path delay (dhdsdio_isr -> dhd_rxf_enqueue)."""
        if self.response is None:
            return None
        entry = self.response.stamps.get("driver")
        done = self.response.stamps.get("driver_done")
        if entry is None or done is None:
            return None
        return done - entry

    @property
    def complete(self):
        """Whether the full user-to-user transaction is observable."""
        return self.du is not None

    def __repr__(self):
        du = f"{self.du * 1e3:.2f}ms" if self.du is not None else "?"
        return f"<ProbeRecord {self.probe_id} ({self.kind}) du={du}>"


class ProbeCollector:
    """Allocates probe ids and assembles :class:`ProbeRecord` ledgers.

    Attach one collector per phone; it taps the phone's kernel layer,
    exactly where the paper ran ``tcpdump``.
    """

    def __init__(self, phone):
        self.phone = phone
        self.sim = phone.sim
        self._records = {}
        self._next_id = 1
        phone.kernel.add_tap(self._kernel_tap)

    # -- probe lifecycle -------------------------------------------------

    def new_probe(self, kind="probe"):
        """Allocate a probe id and its record.  Embed the id in packet
        metadata as ``{'probe_id': record.probe_id}``."""
        record = ProbeRecord(self._next_id, kind=kind)
        self._next_id += 1
        self._records[record.probe_id] = record
        return record

    def meta_for(self, record):
        """Packet metadata announcing this probe."""
        return {"probe_id": record.probe_id, "probe_kind": record.kind}

    def get(self, probe_id):
        return self._records.get(probe_id)

    # -- user-level timestamps ------------------------------------------

    def record_user_send(self, probe_id, time):
        self._records[probe_id].user_send = time
        # The probe transaction is now in flight: spans recorded until
        # the reply (bus wakes, beacon waits, ...) belong to it.
        if self.sim.spans.enabled:
            self.sim.spans.set_probe(probe_id)

    def record_user_recv(self, probe_id, time):
        record = self._records[probe_id]
        record.user_recv = time
        if self.sim.spans.enabled:
            self.sim.spans.clear_probe(probe_id)
        if self.sim.metrics.enabled:
            self._observe_record(record)

    def record_timeout(self, probe_id):
        self._records[probe_id].timed_out = True
        if self.sim.spans.enabled:
            self.sim.spans.clear_probe(probe_id)
        if self.sim.metrics.enabled:
            self.sim.metrics.inc(PROBE_TIMEOUTS_TOTAL,
                                 labels={"kind": self._records[probe_id].kind})

    def _observe_record(self, record):
        """Feed one completed probe's layered RTTs into the registry.

        The headline number is the *inflation* ``du - dn`` — how much the
        user-level RTT exceeds what was actually on the air, i.e. the
        delay the paper attributes to the phone.
        """
        metrics = self.sim.metrics
        labels = {"kind": record.kind}
        du = record.du
        if du is not None:
            metrics.observe(PROBE_DU_SECONDS,  # obs: caller-guarded
                            du, labels=labels)
        dn = record.dn
        if dn is not None:
            metrics.observe(PROBE_DN_SECONDS,  # obs: caller-guarded
                            dn, labels=labels)
        if du is not None and dn is not None:
            metrics.observe(PROBE_INFLATION_SECONDS,  # obs: caller-guarded
                            du - dn, labels=labels)

    # -- kernel tap ---------------------------------------------------------

    def _kernel_tap(self, packet, direction):
        probe_id = packet.probe_id
        if probe_id is None:
            return
        record = self._records.get(probe_id)
        if record is None:
            return
        if direction == "tx":
            if record.request is None:
                record.request = packet
        else:
            if record.response is None:
                record.response = packet
            elif _is_pure_tcp_ack(record.response) and not _is_pure_tcp_ack(packet):
                # A bare ACK preceded the substantive response (HTTP data,
                # SYN|ACK ...); the tool times against the latter.
                record.response = packet

    # -- result access -----------------------------------------------------------

    def records(self, kind="probe"):
        """All records of a kind, in probe-id order."""
        return [
            record for record in self._records.values() if record.kind == kind
        ]

    def completed(self, kind="probe"):
        return [record for record in self.records(kind) if record.complete]

    def layered_rtts(self, kind="probe"):
        """``{'du': [...], 'dk': [...], 'dv': [...], 'dn': [...]}`` over
        completed probes (seconds)."""
        out = {"du": [], "dk": [], "dv": [], "dn": []}
        for record in self.completed(kind):
            for layer in out:
                value = getattr(record, layer)
                if value is not None:
                    out[layer].append(value)
        return out

    def loss_count(self, kind="probe"):
        return sum(1 for r in self.records(kind) if r.timed_out)

    def __repr__(self):
        return f"<ProbeCollector phone={self.phone.name} probes={len(self._records)}>"
