"""The Radio Resource Control (RRC) state machine.

A 3G/UMTS-style three-state machine (the well-studied shape from the
RRC literature the paper's reference [34] builds on):

* **CELL_DCH** — dedicated channel: full rate, lowest latency.
* **CELL_FACH** — shared channel: tiny rate, high latency; carrying more
  than a few hundred bytes forces a promotion to DCH.
* **IDLE** — no radio connection: any transfer first pays a promotion
  delay of seconds; downlink additionally waits for paging.

Inactivity demotes DCH -> FACH after ``t1`` and FACH -> IDLE after
``t2``.  These demotions are to cellular measurements what SDIO sleep
and PSM are to WiFi ones: a probe that arrives after the tail timers
have fired reports the promotion delay, not the network RTT.
"""

from repro.phone.latency import DelayDistribution
from repro.sim.timers import Timer


class RrcState:
    IDLE = "IDLE"
    FACH = "CELL_FACH"
    DCH = "CELL_DCH"


class RrcConfig:
    """Timers, promotion delays, and per-state channel characteristics."""

    def __init__(self,
                 promo_idle_dch=None, promo_fach_dch=None,
                 t1=5.0, t2=12.0,
                 fach_threshold=400,
                 dch_latency=None, fach_latency=None,
                 dch_rate_bps=4e6, fach_rate_bps=32e3,
                 paging_delay=None):
        self.promo_idle_dch = promo_idle_dch or DelayDistribution(1.6, 2.0, 2.6)
        self.promo_fach_dch = promo_fach_dch or DelayDistribution(0.9, 1.2, 1.6)
        self.t1 = t1
        self.t2 = t2
        #: FACH can only carry small transfers; larger ones promote.
        self.fach_threshold = fach_threshold
        self.dch_latency = dch_latency or DelayDistribution.from_ms(18, 25, 40)
        self.fach_latency = fach_latency or DelayDistribution.from_ms(90, 150, 250)
        self.dch_rate_bps = dch_rate_bps
        self.fach_rate_bps = fach_rate_bps
        self.paging_delay = paging_delay or DelayDistribution.from_ms(200, 600, 1200)

    @classmethod
    def umts_3g(cls):
        """The classic 3G/UMTS profile (the defaults)."""
        return cls()

    @classmethod
    def lte(cls):
        """An LTE-flavoured profile.

        LTE collapses FACH into short-DRX behaviour and promotes in
        ~100 ms rather than seconds, with a ~10 s connected tail — the
        RRC *mechanism* is the same, only an order of magnitude gentler,
        which is why RRC-aware probing still matters there.
        """
        return cls(
            promo_idle_dch=DelayDistribution.from_ms(80, 120, 260),
            promo_fach_dch=DelayDistribution.from_ms(15, 25, 50),
            t1=10.0,  # connected -> short DRX
            t2=2.0,  # short DRX -> idle
            fach_threshold=1200,
            dch_latency=DelayDistribution.from_ms(8, 15, 30),
            fach_latency=DelayDistribution.from_ms(25, 40, 80),
            dch_rate_bps=50e6, fach_rate_bps=1e6,
            paging_delay=DelayDistribution.from_ms(40, 130, 640),
        )


class RrcMachine:
    """Network-controlled RRC state shared by the phone and the tower."""

    def __init__(self, sim, config=None, rng=None, name="rrc"):
        self.sim = sim
        self.config = config if config is not None else RrcConfig()
        self.rng = rng if rng is not None else sim.rng.stream(f"rrc:{name}")
        self.name = name
        self.state = RrcState.IDLE
        self.on_state_change = None
        self.promotions = 0
        self.demotions = 0
        self.pagings = 0
        self.state_transitions = []  # (time, old, new, reason)
        self._promoting = False
        self._promotion_waiters = []
        self._demotion_timer = Timer(sim, self._demote, label=f"rrc:{name}")

    # -- state plumbing ----------------------------------------------------

    def _set_state(self, new_state, reason):
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        self.state_transitions.append((self.sim.now, old, new_state, reason))
        if self.on_state_change is not None:
            self.on_state_change(old, new_state, reason)

    def _arm_demotion(self):
        if self.state == RrcState.DCH:
            self._demotion_timer.restart(self.config.t1)
        elif self.state == RrcState.FACH:
            self._demotion_timer.restart(self.config.t2)
        else:
            self._demotion_timer.cancel()

    def _demote(self):
        if self._promoting:
            return
        self.demotions += 1
        if self.state == RrcState.DCH:
            self._set_state(RrcState.FACH, "t1-expired")
        elif self.state == RrcState.FACH:
            self._set_state(RrcState.IDLE, "t2-expired")
        self._arm_demotion()

    def touch(self):
        """Data activity in the current state: reset the tail timer."""
        self._arm_demotion()

    # -- channel access -----------------------------------------------------

    def latency(self):
        """One-way air-interface latency draw for the current state."""
        if self.state == RrcState.DCH:
            return self.config.dch_latency.draw(self.rng)
        return self.config.fach_latency.draw(self.rng)

    def rate_bps(self):
        if self.state == RrcState.DCH:
            return self.config.dch_rate_bps
        return self.config.fach_rate_bps

    def request_channel(self, nbytes, ready, paging=False):
        """Ask for a channel able to carry ``nbytes``; ``ready()`` fires
        once the state allows transmission.

        ``paging`` marks a network-initiated (downlink) request from
        IDLE, which additionally pays the paging delay.
        """
        if self.state == RrcState.DCH:
            self.touch()
            ready()
            return
        if self.state == RrcState.FACH and nbytes <= self.config.fach_threshold:
            self.touch()
            ready()
            return
        self._promotion_waiters.append(ready)
        if not self._promoting:
            self._begin_promotion(paging)

    def _begin_promotion(self, paging):
        self._promoting = True
        self._demotion_timer.cancel()
        delay = 0.0
        if self.state == RrcState.IDLE and paging:
            self.pagings += 1
            delay += self.config.paging_delay.draw(self.rng)
        if self.state == RrcState.IDLE:
            delay += self.config.promo_idle_dch.draw(self.rng)
        else:
            delay += self.config.promo_fach_dch.draw(self.rng)
        self.sim.schedule(delay, self._finish_promotion,
                          label=f"rrc-promo:{self.name}")

    def _finish_promotion(self):
        self._promoting = False
        self.promotions += 1
        self._set_state(RrcState.DCH, "promotion")
        self._arm_demotion()
        waiters, self._promotion_waiters = self._promotion_waiters, []
        for ready in waiters:
            ready()

    def __repr__(self):
        return f"<RrcMachine {self.name} {self.state}>"
