"""A phone on the cellular interface.

Same layer pipeline as the WiFi :class:`~repro.phone.phone.Phone` — user
runtime, kernel tap, stack — but the radio below the kernel is the
cellular interface, whose RRC machine (not SDIO/PSM) is the inflation
source.  Measurement tools and AcuteMon run on it unchanged, because
they only use ``user_send``/``user_wrap``/``stack``/``kernel``.
"""

from repro.net.packet import Packet
from repro.net.stack import IpStack
from repro.cellular.interface import CellularInterface
from repro.phone.kernel import KernelLayer


class CellularPhone:
    """A simulated phone attached to a cell tower."""

    def __init__(self, sim, profile, tower, rrc, ip_addr, rng=None,
                 name=None, runtime="native"):
        self.sim = sim
        self.profile = profile
        self.ip_addr = ip_addr
        self.name = name or f"{profile.key}-cell"
        self.rng = rng if rng is not None else sim.rng.stream(
            f"cellphone:{self.name}")
        self.runtime = runtime
        self.rrc = rrc

        kernel_tx, kernel_rx = profile.kernel_costs()
        self.kernel = KernelLayer(sim, self.rng, kernel_tx, kernel_rx,
                                  name=f"{self.name}.kernel")
        self.interface = CellularInterface(sim, rrc, rng=self.rng,
                                           name=f"{self.name}.cell0")
        self.interface.attach(tower, ip_addr)
        self.interface.deliver_up = self.kernel.receive

        # The kernel "driver" below is the modem interface itself.
        self.kernel.driver = _ModemShim(self.interface)
        self.kernel.deliver_up = self._deliver_up

        self.stack = IpStack(sim, ip_addr, transmit=self.kernel.transmit,
                             rng=self.rng, name=self.name,
                             proc_delay=200e-6, proc_jitter=100e-6)

    # -- user space (same contract as the WiFi phone) --------------------

    def app_cost(self):
        return self.profile.runtime_cost(self.runtime).draw(self.rng)

    def user_send(self, fn):
        t_user = self.sim.now
        self.sim.schedule(self.app_cost(), fn, label=f"app-send:{self.name}")
        return t_user

    def user_wrap(self, callback):
        def wrapped(*args):
            def fire():
                for arg in args:
                    if isinstance(arg, Packet):
                        arg.stamp("user", self.sim.now)
                callback(*args)

            self.sim.schedule(self.app_cost(), fire,
                              label=f"app-recv:{self.name}")

        return wrapped

    def _deliver_up(self, packet):
        if packet.dst == self.ip_addr:
            self.stack.deliver(packet)

    def __repr__(self):
        return f"<CellularPhone {self.name} rrc={self.rrc.state}>"


class _ModemShim:
    """Adapts the cellular interface to the kernel's driver contract.

    The modem stamps the driver vantage points so the overhead
    decomposition still works; its host-side cost is folded into the
    RRC/air-interface model, so the stamps are contiguous.
    """

    def __init__(self, interface):
        self._interface = interface

    def start_xmit(self, packet):
        now = self._interface.sim.now
        packet.stamp("driver", now)
        packet.stamp("driver_done", now)
        self._interface.send_packet(packet)
