"""The cellular air interface: phone radio and cell tower.

The phone's :class:`CellularInterface` plays the role the WiFi station
plays on WLAN: packets wait for the RRC machine to grant a channel, then
pay the state's latency and serialisation.  The :class:`CellTower`
bridges the air interface onto a wired segment through an embedded
first-hop :class:`~repro.net.router.Router` — which is what makes
AcuteMon's TTL=1 warm-up/background packets behave identically here
(dropped at the first hop, ICMP time-exceeded back to the phone).
"""

from repro.net.router import Router, RouterPort
from repro.sim.units import bytes_to_bits


class CellularInterface:
    """The phone-side radio.

    ``deliver_up(packet)`` is wired by the phone (toward its driver or
    kernel); ``send_packet`` is called from below the kernel on TX.
    """

    def __init__(self, sim, rrc, rng=None, name="cell0"):
        self.sim = sim
        self.rrc = rrc
        self.rng = rng if rng is not None else sim.rng.stream(f"cell:{name}")
        self.name = name
        self.tower = None
        self.deliver_up = None
        self.packets_tx = 0
        self.packets_rx = 0

    def attach(self, tower, ip_addr):
        self.tower = tower
        tower.register_phone(ip_addr, self)

    def send_packet(self, packet):
        """Uplink entry point (from the phone's kernel/driver)."""
        if self.tower is None:
            raise RuntimeError(f"{self.name}: not attached to a tower")
        self.rrc.request_channel(packet.wire_size,
                                 lambda: self._transmit(packet))

    def _transmit(self, packet):
        self.packets_tx += 1
        packet.stamp("phy", self.sim.now)
        airtime = (bytes_to_bits(packet.wire_size) / self.rrc.rate_bps()
                   + self.rrc.latency())
        self.rrc.touch()
        self.sim.schedule(airtime, self.tower.receive_uplink, packet,
                          label=f"cell-ul:{self.name}")

    def receive_downlink(self, packet):
        """Tower delivery toward the phone stack."""
        self.packets_rx += 1
        self.rrc.touch()
        if self.deliver_up is not None:
            self.deliver_up(packet)


class CellTower:
    """Base station + first-hop router.

    The wired side is attached with :meth:`add_wired_port` (same API as
    the WiFi AP); the cellular side is a router port whose transmit goes
    over the air interface, honouring the phone's RRC state — downlink
    to an IDLE phone pays paging + promotion, exactly the effect the
    paper's ping2 discussion worries about.
    """

    def __init__(self, sim, cell_ip, cell_network, rng=None, name="tower",
                 send_time_exceeded=True):
        self.sim = sim
        self.name = name
        self.router = Router(sim, name=f"{name}.router", rng=rng,
                             send_time_exceeded=send_time_exceeded)
        self._phones = {}  # ip -> CellularInterface
        self.cell_port = RouterPort("cell", cell_ip, cell_network,
                                    transmit=self._downlink_transmit)
        self.router.add_port(self.cell_port)
        self.packets_paged = 0

    def add_wired_port(self, name, ip_addr, network, arp_table, link=None):
        return self.router.add_ethernet_port(name, ip_addr, network,
                                             arp_table, link=link)

    def register_phone(self, ip_addr, interface):
        self._phones[ip_addr] = interface

    # -- uplink -----------------------------------------------------------

    def receive_uplink(self, packet):
        self.router.route_packet(packet, ingress=self.cell_port)

    # -- downlink ---------------------------------------------------------

    def _downlink_transmit(self, packet, next_hop):
        interface = self._phones.get(next_hop)
        if interface is None:
            return  # unknown subscriber: drop
        rrc = interface.rrc
        from repro.cellular.rrc import RrcState

        paging = rrc.state == RrcState.IDLE
        if paging:
            self.packets_paged += 1
        rrc.request_channel(
            packet.wire_size,
            lambda: self._deliver(interface, packet),
            paging=paging,
        )

    def _deliver(self, interface, packet):
        rrc = interface.rrc
        packet.stamp("phy", self.sim.now)
        airtime = (bytes_to_bits(packet.wire_size) / rrc.rate_bps()
                   + rrc.latency())
        self.sim.schedule(airtime, interface.receive_downlink, packet,
                          label=f"cell-dl:{self.name}")

    def __repr__(self):
        return f"<CellTower {self.name} phones={len(self._phones)}>"
