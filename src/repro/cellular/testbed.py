"""Cellular testbed: phone — tower — wired server."""

from repro.net.addresses import ip
from repro.cellular.interface import CellTower
from repro.cellular.phone import CellularPhone
from repro.cellular.rrc import RrcConfig, RrcMachine
from repro.phone.profiles import coerce_profile
from repro.sim.scheduler import Simulator
from repro.testbed.environment import (
    CELLULAR_CAPABILITIES,
    SERVER_IP,
    WIRED_NET,
    Environment,
    WiredCore,
)

CELL_NET = "10.64.0.0/16"
TOWER_CELL_IP = ip("10.64.0.1")
PHONE_CELL_IP = ip("10.64.0.2")
TOWER_WIRED_IP = ip("10.0.0.1")


class CellularTestbed(Environment):
    """A minimal cellular measurement environment.

    Implements the same :class:`~repro.testbed.environment.Environment`
    protocol as the WiFi :class:`~repro.testbed.topology.Testbed` —
    shared wired core, ``server_ip``, ``attach_phone()`` — so
    experiments, scenarios and campaigns read identically; it is
    registered under ``cellular-3g`` and ``cellular-lte``.

    For backward compatibility the constructor attaches one default
    phone (exposed as ``self.phone``); environment builders pass
    ``attach_default_phone=False`` and attach per-scenario phones
    instead.
    """

    key = "cellular-3g"
    capabilities = CELLULAR_CAPABILITIES

    def __init__(self, seed=0, emulated_rtt=0.0, rrc_config=None,
                 phone_profile_key="nexus5", attach_default_phone=True):
        self.sim = Simulator(seed=seed)
        self.rrc = RrcMachine(
            self.sim, config=rrc_config or RrcConfig(),
            rng=self.sim.rng.stream("rrc"),
        )
        self.tower = CellTower(self.sim, TOWER_CELL_IP, CELL_NET,
                               rng=self.sim.rng.stream("tower"))
        self.wired_core = WiredCore(self.sim, gateway_ip=TOWER_WIRED_IP,
                                    network=WIRED_NET)
        self.wired_core.connect_gateway(self.tower, link_name="tower-switch")
        self.server_host, self.server, self.netem = \
            self.wired_core.add_measurement_server(SERVER_IP,
                                                   delay=emulated_rtt)

        self.phones = []
        self.phone = None
        if attach_default_phone:
            self.phone = self.attach_phone(phone_profile_key)

    # -- wired-core conveniences ----------------------------------------------

    @property
    def switch(self):
        return self.wired_core.switch

    @property
    def wired_arp(self):
        return self.wired_core.arp

    # -- phones ---------------------------------------------------------------

    def attach_phone(self, profile="nexus5", phone_ip=None, **phone_kwargs):
        """Attach a phone to the cell.

        ``profile`` is a profile key or a :class:`PhoneProfile`; extra
        keyword arguments go to
        :class:`~repro.cellular.phone.CellularPhone` (e.g.
        ``runtime='dalvik'``).  Phones share the tower's RRC machine,
        as in a single-UE cell.
        """
        profile = coerce_profile(profile)
        if phone_ip is None:
            phone_ip = ip(int(PHONE_CELL_IP) + len(self.phones))
        stream = ("cellphone" if not self.phones
                  else f"cellphone:{len(self.phones)}")
        phone = CellularPhone(self.sim, profile, self.tower, self.rrc,
                              phone_ip, rng=self.sim.rng.stream(stream),
                              **phone_kwargs)
        self.phones.append(phone)
        if self.phone is None:
            self.phone = phone
        return phone

    def __repr__(self):
        return f"<CellularTestbed t={self.sim.now:.2f}s rrc={self.rrc.state}>"
