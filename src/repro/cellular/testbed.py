"""Cellular testbed: phone — tower — wired server."""

from repro.net.addresses import MacAddress, ip
from repro.net.arp import ArpTable
from repro.net.host import Host
from repro.net.link import Link
from repro.net.netem import NetemQdisc
from repro.net.servers import MeasurementServer
from repro.net.switch import Switch
from repro.cellular.interface import CellTower
from repro.cellular.phone import CellularPhone
from repro.cellular.rrc import RrcConfig, RrcMachine
from repro.phone.profiles import PhoneProfile, phone_profile
from repro.sim.scheduler import Simulator

CELL_NET = "10.64.0.0/16"
TOWER_CELL_IP = ip("10.64.0.1")
PHONE_CELL_IP = ip("10.64.0.2")
WIRED_NET = "10.0.0.0/24"
TOWER_WIRED_IP = ip("10.0.0.1")
SERVER_IP = ip("10.0.0.2")


class CellularTestbed:
    """A minimal cellular measurement environment.

    Mirrors the WiFi :class:`~repro.testbed.topology.Testbed` so
    experiments read the same: a measurement server behind the tower's
    wired port, with ``tc netem``-style emulated RTT on its egress.
    """

    __test__ = False

    def __init__(self, seed=0, emulated_rtt=0.0, rrc_config=None,
                 phone_profile_key="nexus5"):
        self.sim = Simulator(seed=seed)
        self.rrc = RrcMachine(
            self.sim, config=rrc_config or RrcConfig(),
            rng=self.sim.rng.stream("rrc"),
        )
        self.tower = CellTower(self.sim, TOWER_CELL_IP, CELL_NET,
                               rng=self.sim.rng.stream("tower"))
        self.wired_arp = ArpTable()
        self.switch = Switch(self.sim)

        tower_link = Link(self.sim, name="tower-switch")
        self.tower.add_wired_port("eth0", TOWER_WIRED_IP, WIRED_NET,
                                  self.wired_arp, link=tower_link)
        self.switch.new_port(tower_link)

        self.server_host = Host(
            self.sim, "server", SERVER_IP,
            MacAddress.from_index(2, oui=0x02CD00), self.wired_arp,
            gateway=TOWER_WIRED_IP, rng=self.sim.rng.stream("server"),
        )
        server_link = Link(self.sim, name="server-switch")
        self.server_host.nic.attach_link(server_link)
        self.switch.new_port(server_link)
        self.server = MeasurementServer(self.server_host)
        self.netem = NetemQdisc(self.sim, delay=emulated_rtt,
                                rng=self.sim.rng.stream("netem"),
                                name="server-egress")
        self.server_host.netem = self.netem

        profile = phone_profile(phone_profile_key) \
            if not isinstance(phone_profile_key, PhoneProfile) \
            else phone_profile_key
        self.phone = CellularPhone(self.sim, profile, self.tower, self.rrc,
                                   PHONE_CELL_IP,
                                   rng=self.sim.rng.stream("cellphone"))

    @property
    def server_ip(self):
        return self.server_host.ip_addr

    def run(self, duration):
        return self.sim.run(until=self.sim.now + duration)

    def settle(self, duration=0.5):
        return self.run(duration)

    def __repr__(self):
        return f"<CellularTestbed t={self.sim.now:.2f}s rrc={self.rrc.state}>"
