"""The cellular (RRC) extension of AcuteMon.

Paper §4: "Although AcuteMon is designed mainly for WiFi networks, it
can be easily extended to cellular environment, mitigating the effect of
RRC (Radio Resource Control) state transition."  This package builds
that environment:

* :mod:`repro.cellular.rrc` — the 3G-style RRC state machine
  (IDLE / CELL_FACH / CELL_DCH) with promotion delays and the T1/T2
  inactivity demotion timers that inflate cellular RTT measurements the
  same way SDIO sleep and PSM inflate WiFi ones,
* :mod:`repro.cellular.interface` — the phone's radio interface and the
  cell tower (with an embedded first-hop router, so TTL=1
  warm-up/background traffic behaves exactly as on WiFi),
* :mod:`repro.cellular.phone` — a phone whose stack sits on the cellular
  interface; the measurement tools and AcuteMon run on it unchanged,
* :mod:`repro.cellular.testbed` — tower + wired server topology.

The warm-up policy maps directly: ``Tprom`` becomes the IDLE->DCH
promotion delay, ``Tis``/``Tip`` become the DCH inactivity timer ``T1``
— so a valid plan needs ``promotion < dpre`` and ``db < T1``.
"""

from repro.cellular.interface import CellTower, CellularInterface
from repro.cellular.phone import CellularPhone
from repro.cellular.rrc import RrcConfig, RrcMachine, RrcState
from repro.cellular.testbed import CellularTestbed

__all__ = [
    "CellTower",
    "CellularInterface",
    "CellularPhone",
    "CellularTestbed",
    "RrcConfig",
    "RrcMachine",
    "RrcState",
]
