"""Fault-tolerant, resumable campaign execution.

The paper's results are all large parameter sweeps (Tables 2-5 span
phone models x PSM timeouts x nRTT x congestion); at production scale a
crashed worker or one hung cell must not discard an hour of completed
cells.  This module provides the three pieces the campaign runners wire
together:

* **Checkpoint journal** — :class:`CheckpointJournal`, an append-only
  JSONL file of completed cell results keyed by the content-addressed
  :meth:`~repro.testbed.scenario.ScenarioSpec.fingerprint` of each
  spec.  Every record is written through :func:`append_journal_record`
  (one ``write`` + ``flush`` per record), so a crash can only tear the
  final line — which the tolerant loader discards.  Lint rule ``RL104``
  flags journal writes that bypass the helper.
* **Content-addressed cell cache** — :meth:`CheckpointJournal.load`
  returns ``{fingerprint: result payload}``; a resumed campaign skips
  journaled cells and re-emits their cached results byte-for-byte, so
  an interrupted sweep restarts in O(remaining cells) and the final
  result list (merged metrics included) is bit-identical to an
  uninterrupted run.
* **Per-cell fault policy** — :class:`FaultPolicy` bounds each cell
  with a wall-clock timeout, deterministic retry backoff, and a retry
  budget; :func:`run_cell_with_policy` applies it and converts a cell
  that still fails into a quarantined :class:`CellFailure` carrying the
  captured exception and traceback.  One pathological cell fails the
  cell, never the sweep.

``run_cell`` is resolved late through :mod:`repro.testbed.campaign`
(module attribute, not a bound import) so the chaos test layer
(``tests/chaos.py``) can inject worker kills, transient exceptions, and
hung cells at a single choke point.  See ``docs/RESILIENCE.md``.
"""

import json
import os
import pathlib
import threading
import time
import traceback

from repro.testbed import campaign as _campaign

#: Journal record schema version; bumped if the record shape changes.
JOURNAL_VERSION = 1


class CellTimeout(Exception):
    """A cell exceeded its :class:`FaultPolicy` wall-clock budget."""


class FaultPolicy:
    """Per-cell fault handling: timeout, bounded retries, backoff.

    Parameters
    ----------
    cell_timeout:
        Wall-clock seconds one attempt of one cell may take; ``None``
        (default) disables the timeout and the cell runs inline with no
        thread overhead.  Simulated time is unaffected — the budget is
        host time, for catching genuinely hung cells.
    retries:
        How many times a failing (raising or timed-out) cell is re-run
        before it is quarantined.  ``retries=N`` means at most ``N + 1``
        attempts.  A retried cell is deterministic, so a transient
        failure that clears produces the exact result an untroubled run
        would have.
    backoff:
        Base of the deterministic backoff slept between attempts, in
        wall-clock seconds: attempt ``i`` (0-based) waits
        ``backoff * 2**i``.  The schedule is a pure function of the
        policy — no jitter — so fault handling never introduces
        nondeterminism.
    """

    __slots__ = ("cell_timeout", "retries", "backoff")

    def __init__(self, cell_timeout=None, retries=0, backoff=0.0):
        if cell_timeout is not None:
            if (isinstance(cell_timeout, bool)
                    or not isinstance(cell_timeout, (int, float))
                    or cell_timeout <= 0):
                raise ValueError(
                    f"cell_timeout must be a positive number or None, "
                    f"got {cell_timeout!r}")
        if isinstance(retries, bool) or not isinstance(retries, int) \
                or retries < 0:
            raise ValueError(f"retries must be an int >= 0, got {retries!r}")
        if isinstance(backoff, bool) \
                or not isinstance(backoff, (int, float)) or backoff < 0:
            raise ValueError(
                f"backoff must be a number >= 0, got {backoff!r}")
        self.cell_timeout = cell_timeout
        self.retries = retries
        self.backoff = backoff

    def delays(self):
        """The deterministic sleep before each retry: ``backoff * 2**i``."""
        return tuple(self.backoff * (2 ** attempt)
                     for attempt in range(self.retries))

    def to_dict(self):
        """JSON-ready payload (crosses the worker process boundary)."""
        return {"cell_timeout": self.cell_timeout, "retries": self.retries,
                "backoff": self.backoff}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def __repr__(self):
        return (f"<FaultPolicy timeout={self.cell_timeout} "
                f"retries={self.retries} backoff={self.backoff}>")


class CellFailure:
    """A quarantined campaign cell: grid identity plus the captured error.

    Mirrors :class:`~repro.testbed.campaign.CellResult`'s identity
    fields (same :meth:`key`) but carries no samples; ``failure`` is
    ``True`` so runners and reports can split result lists cheaply.
    ``kind`` is ``"timeout"`` when the final attempt hit the policy's
    wall-clock budget, ``"error"`` otherwise.
    """

    failure = True

    __slots__ = ("env", "phone", "rtt", "tool", "cross_traffic", "seed",
                 "error", "traceback", "attempts", "timeouts", "kind")

    def __init__(self, phone, rtt, tool, cross_traffic, seed, error="",
                 traceback="", attempts=1, timeouts=0, kind="error",
                 env="wifi"):
        self.phone = phone
        self.rtt = rtt
        self.tool = tool
        self.cross_traffic = cross_traffic
        self.seed = seed
        self.error = error
        self.traceback = traceback
        self.attempts = attempts
        self.timeouts = timeouts
        self.kind = kind
        self.env = env

    @classmethod
    def from_spec(cls, spec, error, traceback_text="", attempts=1,
                  timeouts=0):
        kind = "timeout" if isinstance(error, CellTimeout) else "error"
        return cls(spec.phone, spec.emulated_rtt, spec.tool,
                   spec.cross_traffic, spec.seed,
                   error=f"{type(error).__name__}: {error}",
                   traceback=traceback_text, attempts=attempts,
                   timeouts=timeouts, kind=kind, env=spec.env)

    def key(self):
        return (self.env, self.phone, self.rtt, self.tool,
                self.cross_traffic)

    def to_dict(self):
        return {
            "failure": True, "env": self.env, "phone": self.phone,
            "rtt": self.rtt, "tool": self.tool,
            "cross_traffic": self.cross_traffic, "seed": self.seed,
            "error": self.error, "traceback": self.traceback,
            "attempts": self.attempts, "timeouts": self.timeouts,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["phone"], data["rtt"], data["tool"],
                   data["cross_traffic"], data["seed"],
                   error=data.get("error", ""),
                   traceback=data.get("traceback", ""),
                   attempts=data.get("attempts", 1),
                   timeouts=data.get("timeouts", 0),
                   kind=data.get("kind", "error"),
                   env=data.get("env", "wifi"))

    def __repr__(self):
        return (f"<CellFailure {self.env}:{self.phone} "
                f"{self.rtt * 1e3:.0f}ms {self.tool} kind={self.kind} "
                f"attempts={self.attempts}>")


def result_from_dict(payload):
    """Revive a journal/shard payload: ``CellResult`` or ``CellFailure``."""
    if payload.get("failure"):
        return CellFailure.from_dict(payload)
    return _campaign.CellResult.from_dict(payload)


# -- the checkpoint journal ---------------------------------------------------


def append_journal_record(handle, record):
    """The atomic-append helper every checkpoint write goes through.

    One record becomes exactly one ``write()`` of a complete JSONL line
    followed by a ``flush()``, so the journal can only ever be torn at
    its final line — once data reaches the OS it survives a process
    crash, and the tolerant loader discards a torn tail.  Lint rule
    ``RL104`` flags journal/checkpoint writes that bypass this helper.

    Key order is preserved verbatim (no ``sort_keys``): a resumed cell
    must re-emit the exact payload the original run produced, byte for
    byte, through ``Campaign.save()`` — canonicalisation belongs to the
    fingerprint (``ScenarioSpec.canonical_json()``), not the record.
    """
    line = json.dumps(record, separators=(",", ":")) + "\n"
    handle.write(line)
    handle.flush()


class CheckpointJournal:
    """Append-only JSONL journal of completed campaign cells.

    Each line is one record::

        {"v": 1, "fingerprint": "<sha256 of the spec>", "result": {...}}

    where ``result`` is the ``CellResult.to_dict()`` payload — the same
    JSON that round-trips :meth:`Campaign.save`/``load`` and the worker
    protocol, so a cached cell re-emits byte-identically.  Only
    successful cells are journaled: a quarantined cell re-runs on
    resume (its failure may have been transient).

    ``durable=True`` adds an ``fsync`` per record — survives power loss
    at the cost of a disk round-trip per cell; the default (``flush``
    only) survives process crashes, which is the fault model the chaos
    suite exercises.
    """

    __slots__ = ("path", "durable", "_handle")

    def __init__(self, path, durable=False):
        self.path = pathlib.Path(path)
        self.durable = durable
        self._handle = None

    # -- reading --------------------------------------------------------------

    def records(self):
        """Every intact record, in journal order; torn tails dropped.

        Reading stops at the first line that is not a complete,
        well-formed record: after a crash only the final line can be
        torn, and anything unparseable past it is not trusted.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return []
        records = []
        for line in text.split("\n"):
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break
            if (not isinstance(record, dict)
                    or record.get("v") != JOURNAL_VERSION
                    or not isinstance(record.get("fingerprint"), str)
                    or not isinstance(record.get("result"), dict)):
                break
            records.append(record)
        return records

    def load(self):
        """The content-addressed cell cache: ``{fingerprint: payload}``.

        Later records win on duplicate fingerprints (a journal reused
        without ``resume`` appends fresh results after the old ones).
        """
        return {record["fingerprint"]: record["result"]
                for record in self.records()}

    # -- writing --------------------------------------------------------------

    def open(self):
        """Open for appending (creating parent directories); returns self."""
        if self._handle is None:
            if self.path.parent != pathlib.Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def append(self, fingerprint, result):
        """Journal one completed cell (must be :meth:`open`)."""
        if self._handle is None:
            raise RuntimeError("journal is not open for appending")
        append_journal_record(self._handle, {
            "v": JOURNAL_VERSION, "fingerprint": fingerprint,
            "result": result.to_dict(),
        })
        if self.durable:
            os.fsync(self._handle.fileno())

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self.open()

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def __repr__(self):
        state = "open" if self._handle is not None else "closed"
        return f"<CheckpointJournal {self.path} {state}>"


# -- fault-policy execution ---------------------------------------------------


def _call_with_timeout(fn, timeout):
    """Run ``fn()`` with a wall-clock budget; raises :class:`CellTimeout`.

    ``timeout=None`` calls inline (zero overhead).  Otherwise the call
    runs on a daemon thread and the caller waits ``join(timeout)`` — a
    cell that never returns is abandoned (the thread dies with the
    process), which is the only portable way to survive a wedged cell
    without killing the whole worker.
    """
    if timeout is None:
        return fn()
    outcome = {}

    def target():
        try:
            outcome["result"] = fn()
        except BaseException as exc:  # re-raised in the waiting caller
            outcome["error"] = exc

    worker = threading.Thread(target=target, daemon=True,
                              name="repro-cell-attempt")
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise CellTimeout(
            f"cell exceeded its {timeout:g}s wall-clock budget")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def run_cell_with_policy(spec, policy=None, collect_metrics=False):
    """Execute one cell under a :class:`FaultPolicy`.

    Returns ``(result, stats)`` where ``result`` is a
    :class:`~repro.testbed.campaign.CellResult` on success or a
    :class:`CellFailure` after the retry budget is exhausted, and
    ``stats`` is ``{"attempts": n, "timeouts": m}`` for the runner's
    metrics.  ``run_cell`` is looked up on the campaign module at call
    time so chaos injectors (and only chaos injectors) can replace it.
    """
    policy = FaultPolicy() if policy is None else policy
    delays = policy.delays()
    timeouts = 0
    last_error = None
    last_traceback = ""
    for attempt in range(policy.retries + 1):
        try:
            result = _call_with_timeout(
                lambda: _campaign.run_cell(
                    spec, collect_metrics=collect_metrics),
                policy.cell_timeout)
        except CellTimeout as exc:
            timeouts += 1
            last_error = exc
            last_traceback = ""
        except Exception as exc:
            last_error = exc
            last_traceback = "".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__))
        else:
            return result, {"attempts": attempt + 1, "timeouts": timeouts}
        if attempt < policy.retries:
            time.sleep(delays[attempt])
    failure = CellFailure.from_spec(
        spec, last_error, traceback_text=last_traceback,
        attempts=policy.retries + 1, timeouts=timeouts)
    return failure, {"attempts": policy.retries + 1, "timeouts": timeouts}
