"""The declarative scenario layer.

A :class:`ScenarioSpec` describes one experiment cell as plain data —
environment key, phone profile, tool, netem/cross-traffic/bus-sleep
knobs, probe count/interval, seed — with strict validation and an exact
JSON round-trip.  Everything above the testbeds runs on specs:

* :func:`run_scenario` executes one spec and returns an
  :class:`~repro.testbed.experiments.ExperimentResult`,
* :class:`~repro.testbed.campaign.Campaign` grids *are* spec streams,
* :class:`~repro.testbed.parallel.ParallelCampaignRunner` workers
  receive serialized specs instead of closures,
* the CLI's ``repro scenario run/list`` maps flags onto a spec.

The module also hosts the unified tool registry: every measurement tool
— AcuteMon included, no special cases — registers a builder keyed by
name, and every registered tool drives through the same
``run_sync(count)`` contract.  See ``docs/ARCHITECTURE.md``.
"""

import hashlib
import json

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.phone.profiles import PHONES, PhoneProfile
from repro.testbed.environment import (
    CAP_BUS_SLEEP,
    CAP_CROSS_TRAFFIC,
    build_environment,
    environment_entry,
)
from repro.tools.httping import HttpingTool
from repro.tools.javaping import JavaPingTool
from repro.tools.mobiperf import MobiPerfTool
from repro.tools.ping import PingTool
from repro.tools.ping2 import Ping2Tool


class ScenarioError(ValueError):
    """A scenario spec failed validation."""


# -- the unified tool registry ------------------------------------------------


class ToolEntry:
    """One registered measurement tool.

    ``builder(spec, env, phone, collector)`` returns a tool object with
    the ``run_sync(count) -> samples`` contract of
    :class:`~repro.tools.base.MeasurementTool` (AcuteMon implements the
    same contract).  ``side`` records where the tool's user space runs:
    ``"phone"`` for on-device tools, ``"server"`` for server-side ones
    like ping2.
    """

    __slots__ = ("key", "builder", "side", "description")

    def __init__(self, key, builder, side, description):
        self.key = key
        self.builder = builder
        self.side = side
        self.description = description

    def build(self, spec, env, phone, collector):
        return self.builder(spec, env, phone, collector)

    def __repr__(self):
        return f"<ToolEntry {self.key!r} side={self.side}>"


#: Registry keyed by tool name; populated below and via :func:`register_tool`.
TOOLS = {}


def register_tool(key, builder, side="phone", description=""):
    """Register a tool builder; re-registering a key replaces it."""
    TOOLS[key] = ToolEntry(key, builder, side, description)
    return builder


def tool_entry(key):
    """Look up a tool entry; raises with the known keys on a miss."""
    try:
        return TOOLS[key]
    except KeyError:
        raise KeyError(
            f"unknown tool {key!r}; known: {sorted(TOOLS)}"
        ) from None


def tool_keys():
    """The registered tool names, sorted."""
    return sorted(TOOLS)


def _phone_tool(tool_cls):
    def build(spec, env, phone, collector):
        return tool_cls(phone, collector, env.server_ip,
                        interval=spec.interval, **spec.tool_params)

    return build


def _build_acutemon(spec, env, phone, collector):
    config = AcuteMonConfig(probe_count=spec.count, **spec.tool_params)
    return AcuteMon(phone, collector, env.server_ip, config=config)


def _build_ping2(spec, env, phone, collector):
    return Ping2Tool(env.server_host, phone.ip_addr,
                     interval=spec.interval, **spec.tool_params)


register_tool(
    "acutemon", _build_acutemon,
    description="the paper's mitigation: warm-up + TTL=1 background "
                "traffic + probe train (§4.2); tool_params map onto "
                "AcuteMonConfig (dpre, db, probe_gap, probe_method, ...)")
register_tool(
    "ping", _phone_tool(PingTool),
    description="ICMP echo from the phone (§3.1 root-cause tool); "
                "tool_params: timeout")
register_tool(
    "httping", _phone_tool(HttpingTool),
    description="HTTP GET timing over TCP (Figure 8 baseline)")
register_tool(
    "javaping", _phone_tool(JavaPingTool),
    description="ping forked from a Dalvik runtime (Figure 8 baseline)")
register_tool(
    "mobiperf", _phone_tool(MobiPerfTool),
    description="MobiPerf-style UDP probing (Figure 8 baseline)")
register_tool(
    "ping2", _build_ping2, side="server",
    description="Sui et al.'s server-side double ping against an idle "
                "phone; tool_params: timeout")


# -- the scenario spec --------------------------------------------------------

#: Spec fields in serialization order, with their defaults.
_FIELDS = (
    ("env", "wifi"),
    ("phone", "nexus5"),
    ("tool", "acutemon"),
    ("emulated_rtt", 0.030),
    ("count", 100),
    ("interval", 1.0),
    ("seed", 0),
    ("cross_traffic", False),
    ("bus_sleep", True),
    ("settle", 1.0),
    ("observe", False),
    ("env_params", None),
    ("tool_params", None),
)


class ScenarioSpec:
    """A declarative description of one experiment cell.

    Everything is plain data: strings, numbers, booleans, and two
    JSON-object escape hatches (``env_params`` forwarded to the
    environment builder, ``tool_params`` to the tool builder).
    Validation is strict and happens at construction — an invalid spec
    never exists.
    """

    __test__ = False
    __slots__ = tuple(name for name, _default in _FIELDS)

    def __init__(self, env="wifi", phone="nexus5", tool="acutemon",
                 emulated_rtt=0.030, count=100, interval=1.0, seed=0,
                 cross_traffic=False, bus_sleep=True, settle=1.0,
                 observe=False, env_params=None, tool_params=None):
        self.env = env
        self.phone = phone
        self.tool = tool
        self.emulated_rtt = emulated_rtt
        self.count = count
        self.interval = interval
        self.seed = seed
        self.cross_traffic = cross_traffic
        self.bus_sleep = bus_sleep
        self.settle = settle
        self.observe = observe
        self.env_params = dict(env_params) if env_params else {}
        self.tool_params = dict(tool_params) if tool_params else {}
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self):
        """Check every field; raises :class:`ScenarioError`. Returns self."""
        entry = self._env_entry()
        if self.phone not in PHONES:
            raise ScenarioError(
                f"unknown phone {self.phone!r}; known: {sorted(PHONES)}")
        if self.tool not in TOOLS:
            raise ScenarioError(
                f"unknown tool {self.tool!r}; known: {sorted(TOOLS)}")
        self._require_number("emulated_rtt", self.emulated_rtt, minimum=0.0)
        self._require_int("count", self.count, minimum=1)
        self._require_number("interval", self.interval, minimum=0.0,
                             exclusive=True)
        self._require_int("seed", self.seed)
        self._require_number("settle", self.settle, minimum=0.0)
        for name in ("cross_traffic", "bus_sleep", "observe"):
            if not isinstance(getattr(self, name), bool):
                raise ScenarioError(f"{name} must be a bool")
        if self.cross_traffic and CAP_CROSS_TRAFFIC not in entry.capabilities:
            raise ScenarioError(
                f"environment {self.env!r} does not support cross traffic "
                f"(capabilities: {sorted(entry.capabilities)})")
        if not self.bus_sleep and CAP_BUS_SLEEP not in entry.capabilities:
            raise ScenarioError(
                f"environment {self.env!r} has no SDIO bus to keep awake "
                f"(capabilities: {sorted(entry.capabilities)})")
        for name in ("env_params", "tool_params"):
            params = getattr(self, name)
            if not all(isinstance(key, str) for key in params):
                raise ScenarioError(f"{name} keys must be strings")
            try:
                json.dumps(params, sort_keys=True)
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    f"{name} must be JSON-serializable: {exc}") from None
        return self

    def _env_entry(self):
        try:
            return environment_entry(self.env)
        except KeyError as exc:
            raise ScenarioError(str(exc).strip('"')) from None

    @staticmethod
    def _require_number(name, value, minimum=None, exclusive=False):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(f"{name} must be a number, got {value!r}")
        if minimum is not None:
            if exclusive and not value > minimum:
                raise ScenarioError(f"{name} must be > {minimum}")
            if not exclusive and not value >= minimum:
                raise ScenarioError(f"{name} must be >= {minimum}")

    @staticmethod
    def _require_int(name, value, minimum=None):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(f"{name} must be an integer, got {value!r}")
        if minimum is not None and value < minimum:
            raise ScenarioError(f"{name} must be >= {minimum}")

    # -- serialization --------------------------------------------------------

    def to_dict(self):
        """JSON-ready dict; exact round-trip through :meth:`from_dict`."""
        return {
            "env": self.env, "phone": self.phone, "tool": self.tool,
            "emulated_rtt": self.emulated_rtt, "count": self.count,
            "interval": self.interval, "seed": self.seed,
            "cross_traffic": self.cross_traffic,
            "bus_sleep": self.bus_sleep, "settle": self.settle,
            "observe": self.observe, "env_params": dict(self.env_params),
            "tool_params": dict(self.tool_params),
        }

    @classmethod
    def from_dict(cls, data):
        """Strict inverse of :meth:`to_dict`: unknown keys are errors."""
        known = {name for name, _default in _FIELDS}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown scenario field(s): {sorted(unknown)}; "
                f"known: {sorted(known)}")
        return cls(**data)

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def replace(self, **overrides):
        """A copy with the given fields replaced (re-validated)."""
        data = self.to_dict()
        data.update(overrides)
        return type(self).from_dict(data)

    # -- identity -------------------------------------------------------------

    def canonical_json(self):
        """The canonical serialization: sorted keys, no whitespace.

        Two specs that compare equal produce byte-identical canonical
        JSON regardless of construction order (``env_params`` /
        ``tool_params`` insertion order included), which is what makes
        :meth:`fingerprint` a content address.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self):
        """Content address of this cell: SHA-256 of :meth:`canonical_json`.

        Stable across JSON round-trips and process boundaries; any
        single-field change produces a different fingerprint.  The
        checkpoint journal (:mod:`repro.testbed.resilience`) keys cached
        cell results by this value, so resumed campaigns re-emit a
        cached result only for an exactly-identical spec.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()

    def key(self):
        """The campaign grid identity of this cell."""
        return (self.env, self.phone, self.emulated_rtt, self.tool,
                self.cross_traffic)

    def describe(self):
        """One-line human summary (CLI progress lines)."""
        extras = []
        if self.cross_traffic:
            extras.append("cross-traffic")
        if not self.bus_sleep:
            extras.append("bus-sleep off")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return (f"{self.tool} on {self.phone} @ "
                f"{self.emulated_rtt * 1e3:.0f}ms over {self.env}{suffix}")

    def __eq__(self, other):
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.to_json())

    def __repr__(self):
        return f"<ScenarioSpec {self.describe()} seed={self.seed}>"

    # -- execution ------------------------------------------------------------

    def build(self):
        """Construct the cell: environment + phone + collector, settled.

        Returns ``(env, phone, collector)``; the caller can inspect or
        instrument them before :meth:`execute` drives the tool.
        """
        env = build_environment(self.env, seed=self.seed,
                                emulated_rtt=self.emulated_rtt,
                                **self.env_params)
        if self.observe:
            env.observe()
        phone_kwargs = {}
        if CAP_BUS_SLEEP in environment_entry(self.env).capabilities:
            phone_kwargs["bus_sleep"] = self.bus_sleep
        phone = env.attach_phone(self.phone, **phone_kwargs)
        collector = ProbeCollector(phone)
        if self.cross_traffic:
            env.start_cross_traffic()
        env.settle(self.settle)
        return env, phone, collector

    def execute(self, env, phone, collector):
        """Build and drive the tool on an already-built cell."""
        from repro.testbed.experiments import ExperimentResult

        entry = tool_entry(self.tool)
        tool = entry.build(self, env, phone, collector)
        samples = tool.run_sync(self.count)
        result = ExperimentResult(env, phone, collector, samples)
        result.tool = tool
        result.spec = self
        if isinstance(tool, AcuteMon):
            result.acutemon = tool
        return result


def run_scenario(spec):
    """Execute one scenario; returns an
    :class:`~repro.testbed.experiments.ExperimentResult`."""
    env, phone, collector = spec.build()
    return spec.execute(env, phone, collector)
