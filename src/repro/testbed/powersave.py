"""WiFi testbeds running the experimental power-save machines.

Two :class:`~repro.testbed.topology.Testbed` variants that swap the
phone's MAC state machine via the :class:`~repro.phone.phone.Phone`
``sta_factory`` hook while keeping everything else — AP, wired core,
sniffers, cross traffic — identical to the ``"wifi"`` environment, so
a campaign grid can sweep power-save *strategies* the way it sweeps
phones and RTTs:

* :class:`TwtTestbed` (``"wifi-twt"``): phones wake on a negotiated
  TWT service-period schedule with bounded clock drift
  (:class:`~repro.wifi.twt.TwtStation`),
* :class:`PredictiveSleepTestbed` (``"wifi-predictive-sleep"``):
  phones wake on EAPS-style predicted downlink arrivals with a
  fallback-timeout safety rail
  (:class:`~repro.wifi.predictive.PredictiveSleepStation`).

Machine parameters are testbed-level knobs (plain JSON scalars) so
``ScenarioSpec(env_params={...})`` can sweep them; a per-phone override
is available through ``attach_phone(twt=...)`` / ``attach_phone(
predictor=...)``.
"""

from repro.testbed.environment import (
    PREDICTIVE_SLEEP_CAPABILITIES,
    TWT_CAPABILITIES,
)
from repro.testbed.topology import PHONE_IP, Testbed
from repro.wifi.predictive import PredictiveSleepConfig, PredictiveSleepStation
from repro.wifi.twt import TwtConfig, TwtStation


class TwtTestbed(Testbed):
    """The WiFi testbed with TWT-scheduled phones (``"wifi-twt"``)."""

    key = "wifi-twt"
    capabilities = TWT_CAPABILITIES

    def __init__(self, seed=0, emulated_rtt=0.0, sp_interval=0.5,
                 sp_duration=0.02, twt_guard=2e-3, drift_rate=20e-6,
                 resync_fraction=0.5, **kwargs):
        self.twt = TwtConfig(
            sp_interval=sp_interval, sp_duration=sp_duration,
            guard=twt_guard, drift_rate=drift_rate,
            resync_fraction=resync_fraction,
        )
        super().__init__(seed=seed, emulated_rtt=emulated_rtt, **kwargs)

    def add_phone(self, profile="nexus5", phone_ip=PHONE_IP, twt=None,
                  **phone_kwargs):
        agreement = twt if twt is not None else self.twt

        def factory(sim, channel, mac, psm=None, rng=None, name="twt-sta"):
            return TwtStation(sim, channel, mac, psm=psm, rng=rng,
                              twt=agreement, name=name)

        phone_kwargs.setdefault("sta_factory", factory)
        return super().add_phone(profile=profile, phone_ip=phone_ip,
                                 **phone_kwargs)

    attach_phone = add_phone

    def __repr__(self):
        return (f"<TwtTestbed t={self.sim.now:.3f}s "
                f"phones={len(self.phones)} "
                f"sp={self.twt.sp_interval * 1e3:.0f}ms "
                f"drift={self.twt.drift_rate * 1e6:+.0f}ppm>")


class PredictiveSleepTestbed(Testbed):
    """The WiFi testbed with predictive-sleep phones
    (``"wifi-predictive-sleep"``)."""

    key = "wifi-predictive-sleep"
    capabilities = PREDICTIVE_SLEEP_CAPABILITIES

    def __init__(self, seed=0, emulated_rtt=0.0, ewma_alpha=0.3,
                 wake_guard=5e-3, fallback_timeout=0.4,
                 listen_window=0.02, initial_interval=0.2,
                 penalty_backoff=1.5, **kwargs):
        self.predictor = PredictiveSleepConfig(
            ewma_alpha=ewma_alpha, guard=wake_guard,
            fallback_timeout=fallback_timeout,
            listen_window=listen_window,
            initial_interval=initial_interval,
            penalty_backoff=penalty_backoff,
        )
        super().__init__(seed=seed, emulated_rtt=emulated_rtt, **kwargs)

    def add_phone(self, profile="nexus5", phone_ip=PHONE_IP,
                  predictor=None, **phone_kwargs):
        config = predictor if predictor is not None else self.predictor

        def factory(sim, channel, mac, psm=None, rng=None,
                    name="pred-sta"):
            return PredictiveSleepStation(sim, channel, mac, psm=psm,
                                          rng=rng, predictor=config,
                                          name=name)

        phone_kwargs.setdefault("sta_factory", factory)
        return super().add_phone(profile=profile, phone_ip=phone_ip,
                                 **phone_kwargs)

    attach_phone = add_phone

    def __repr__(self):
        return (f"<PredictiveSleepTestbed t={self.sim.now:.3f}s "
                f"phones={len(self.phones)} "
                f"fallback={self.predictor.fallback_timeout * 1e3:.0f}ms>")
