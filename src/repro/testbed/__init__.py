"""The measurement environments and experiment layers.

:class:`~repro.testbed.topology.Testbed` assembles the paper's Figure 2
WiFi environment: measurement server and load server behind a switch,
the AP bridging to the WLAN, three wireless sniffers, an optional
iPerf-style load generator, and instrumented phones.  The
:mod:`~repro.testbed.environment` registry adds the cellular
environments behind the same protocol, and
:mod:`~repro.testbed.scenario` describes experiment cells declaratively;
:mod:`repro.testbed.experiments` provides the experiment runners the
benchmarks are built on.
"""

from repro.testbed.campaign import Campaign, CellResult
from repro.testbed.environment import (
    ENVIRONMENTS,
    Environment,
    build_environment,
    environment_keys,
    register_environment,
)
from repro.testbed.experiments import (
    acutemon_experiment,
    ping_experiment,
    tool_comparison,
)
from repro.testbed.fabric import (
    FabricRunner,
    InProcessTransport,
    MultiprocessTransport,
    ShardPlan,
    ShardTransport,
    plan_shards,
    replan,
    shard_index,
)
from repro.testbed.parallel import ParallelCampaignRunner
from repro.testbed.resilience import (
    CellFailure,
    CellTimeout,
    CheckpointJournal,
    FaultPolicy,
)
from repro.testbed.store import ResultStore
from repro.testbed.scenario import (
    TOOLS,
    ScenarioError,
    ScenarioSpec,
    register_tool,
    run_scenario,
    tool_keys,
)
from repro.testbed.topology import Testbed

__all__ = [
    "Campaign",
    "CellFailure",
    "CellResult",
    "CellTimeout",
    "CheckpointJournal",
    "ENVIRONMENTS",
    "Environment",
    "FabricRunner",
    "FaultPolicy",
    "InProcessTransport",
    "MultiprocessTransport",
    "ParallelCampaignRunner",
    "ResultStore",
    "ScenarioError",
    "ScenarioSpec",
    "ShardPlan",
    "ShardTransport",
    "TOOLS",
    "Testbed",
    "acutemon_experiment",
    "build_environment",
    "environment_keys",
    "ping_experiment",
    "plan_shards",
    "register_environment",
    "register_tool",
    "replan",
    "run_scenario",
    "shard_index",
    "tool_comparison",
    "tool_keys",
]
