"""The multiple-sniffer WiFi testbed of the paper's Figure 2.

:class:`~repro.testbed.topology.Testbed` assembles the full environment:
measurement server and load server behind a switch, the AP bridging to
the WLAN, three wireless sniffers, an optional iPerf-style load
generator, and instrumented phones.  :mod:`repro.testbed.experiments`
provides the experiment runners the benchmarks are built on.
"""

from repro.testbed.campaign import Campaign, CellResult
from repro.testbed.experiments import (
    acutemon_experiment,
    ping_experiment,
    tool_comparison,
)
from repro.testbed.parallel import ParallelCampaignRunner
from repro.testbed.topology import Testbed

__all__ = [
    "Campaign",
    "CellResult",
    "ParallelCampaignRunner",
    "Testbed",
    "acutemon_experiment",
    "ping_experiment",
    "tool_comparison",
]
