"""Sharded campaign fabric: deterministic planning plus work stealing.

:class:`~repro.testbed.parallel.ParallelCampaignRunner` shards a grid
into *contiguous* chunks — fine inside one process pool, but fleet-scale
sweeps (ROADMAP item 5) need shard membership that is stable across
machines, restarts, and grid growth.  This module keys sharding on the
cell's content address instead:

* **Planner** — :func:`plan_shards` assigns every cell to
  ``shard_index(spec.fingerprint(), n)``; the assignment is a pure
  function of (spec, shard count), so two hosts planning the same grid
  agree without talking to each other.  :func:`replan` handles dead
  workers: cells on surviving shards never move, and a dead shard's
  cells re-hash deterministically over the survivors.
* **Transport seam** — a shard travels as one JSON-ready task payload
  (``{"shard": n, "collect_metrics": ..., "policy": ..., "specs":
  [...]}``) and comes back as a list of JSON-ready cell records, the
  same wire shape the process-pool protocol uses.
  :class:`InProcessTransport` and :class:`MultiprocessTransport`
  implement the seam today; a socket transport for remote hosts only
  has to move the same two payloads.
* **Work stealing** — :class:`FabricRunner` dispatches the planned
  shards through the transport and *steals* any shard that comes back
  failed (worker killed, pool broken), re-running its cells in-process
  under the same fault policy.  A stolen shard's cells produce the
  same results they would have produced remotely, so stealing never
  perturbs the output.

The runner composes with the rest of the resilience stack unchanged:
checkpoint journal resume first, then the persistent
:class:`~repro.testbed.store.ResultStore` cache, and only the remaining
cells are planned into shards.  The campaign invariant stays absolute —
serial == parallel == sharded == resumed == cache-warm runs emit
bit-identical results, merged metrics, and reports (pinned by
``tests/test_fabric.py``).  See ``docs/FABRIC.md``.
"""

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

from repro.obs import names as _names
from repro.obs.metrics import MetricsRegistry
from repro.testbed import parallel as _parallel
from repro.testbed import resilience as _resilience

#: Hex digits of the fingerprint used as the shard key.  64 bits of a
#: SHA-256 is plenty for balance and keeps the arithmetic exact in
#: every JSON-adjacent runtime a future socket transport might talk to.
_KEY_HEX_DIGITS = 16


def shard_index(fingerprint, shard_count):
    """The home shard for a content address: stable, uniform, portable."""
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count!r}")
    return int(fingerprint[:_KEY_HEX_DIGITS], 16) % shard_count


class ShardPlan:
    """A deterministic partition of grid cells into shards.

    ``shards`` is a tuple of per-shard cell tuples (each cell a
    ``(grid_index, spec)`` pair, in grid order within the shard);
    ``assignments`` maps each cell's fingerprint to its shard id.
    """

    __slots__ = ("shard_count", "shards", "assignments")

    def __init__(self, shard_count, shards, assignments):
        self.shard_count = shard_count
        self.shards = tuple(tuple(shard) for shard in shards)
        self.assignments = dict(assignments)

    def cells(self):
        """Every planned cell, shard-major (shard 0 first)."""
        for shard in self.shards:
            yield from shard

    def __repr__(self):
        sizes = [len(shard) for shard in self.shards]
        return f"<ShardPlan shards={sizes}>"


def plan_shards(cells, shard_count, fingerprints=None):
    """Partition ``cells`` (``(index, spec)`` pairs) by content address.

    ``fingerprints`` optionally supplies each cell's precomputed
    fingerprint (same order as ``cells``) so callers that already paid
    for the hashes do not pay twice.  Every cell lands in exactly one
    shard — the union of the planned shards is an exact partition of
    the input (a Hypothesis property pins this for all grids and shard
    counts).
    """
    if fingerprints is None:
        fingerprints = [spec.fingerprint() for _, spec in cells]
    shards = [[] for _ in range(shard_count)]
    assignments = {}
    for (index, spec), fingerprint in zip(cells, fingerprints):
        home = shard_index(fingerprint, shard_count)
        shards[home].append((index, spec))
        assignments[fingerprint] = home
    return ShardPlan(shard_count, shards, assignments)


def replan(plan, dead, fingerprints=None):
    """Reassign the cells of ``dead`` shard ids over the survivors.

    Cells on surviving shards keep their assignment untouched; each
    dead shard's cells re-hash over the sorted list of surviving shard
    ids (``alive[shard_index(fp, len(alive))]``), so any two hosts that
    agree on who died agree on the new plan without coordination.
    ``fingerprints`` optionally maps grid index -> fingerprint to skip
    re-hashing specs.
    """
    dead = set(dead)
    alive = [sid for sid in range(plan.shard_count) if sid not in dead]
    if not alive:
        raise ValueError("replan requires at least one surviving shard")
    shards = [[] for _ in range(plan.shard_count)]
    assignments = {}
    by_fingerprint = {}
    for sid, shard in enumerate(plan.shards):
        for index, spec in shard:
            if fingerprints is not None and index in fingerprints:
                fingerprint = fingerprints[index]
            else:
                fingerprint = spec.fingerprint()
            by_fingerprint[fingerprint] = (sid, index, spec)
    for fingerprint, (sid, index, spec) in by_fingerprint.items():
        if sid in dead:
            sid = alive[shard_index(fingerprint, len(alive))]
        shards[sid].append((index, spec))
        assignments[fingerprint] = sid
    # Keep grid order inside each shard regardless of donor shard.
    shards = [sorted(shard) for shard in shards]
    return ShardPlan(plan.shard_count, shards, assignments)


# -- the transport seam -------------------------------------------------------


def run_shard_payload(task):
    """Execute one shard task payload; returns its cell record list.

    The executable half of the wire protocol: ``task`` is the JSON-ready
    dict a transport moves to a worker, the return value the JSON-ready
    record list it moves back.  Delegates to the process-pool shard
    body so every transport shares one execution path (including the
    chaos choke point on ``campaign.run_cell``).
    """
    return _parallel._run_shard((task["collect_metrics"], task["policy"],
                                 task["specs"]))


class ShardTransport:
    """Where shard tasks execute: the host/process seam.

    ``dispatch(tasks)`` consumes a list of shard task payloads and
    yields one ``(shard_id, records, error)`` triple per task, *in task
    order* (deterministic merging is the runner's job, ordered delivery
    is the transport's).  ``records`` is the shard's cell record list
    on success; on failure it is ``None`` and ``error`` carries the
    exception, which tells the runner to steal the shard.  Implementing
    these semantics over a socket — ship the task dict, read back the
    record list — is all a remote-host transport needs.
    """

    def dispatch(self, tasks):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}>"


class InProcessTransport(ShardTransport):
    """Run every shard in the calling process (no pool, no pickling)."""

    def dispatch(self, tasks):
        for task in tasks:
            try:
                yield task["shard"], run_shard_payload(task), None
            except Exception as exc:
                yield task["shard"], None, exc


class MultiprocessTransport(ShardTransport):
    """One process-pool future per shard; a broken pool fails per-shard.

    Worker processes are long-lived and reused across shards.  A shard
    whose worker dies (or whose pool cannot deliver) is reported as a
    per-shard failure rather than failing the dispatch, so the runner
    can steal exactly the affected shards; if the pool cannot be
    created at all, every task falls back to in-process execution.
    """

    def __init__(self, workers=None, start_method=None):
        self.workers = workers
        self.start_method = start_method

    def dispatch(self, tasks):
        if not tasks:
            return
        context = _parallel.pool_context(self.start_method)
        workers = self.workers or _parallel.default_worker_count()
        workers = max(1, min(workers, len(tasks)))
        if context is None:
            yield from InProcessTransport().dispatch(tasks)
            return
        try:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=context)
        except (OSError, ValueError):  # pragma: no cover - exotic platforms
            yield from InProcessTransport().dispatch(tasks)
            return
        with executor:
            futures = [executor.submit(run_shard_payload, task)
                       for task in tasks]
            for task, future in zip(tasks, futures):
                try:
                    yield task["shard"], future.result(), None
                except (BrokenProcessPool, OSError) as exc:
                    yield task["shard"], None, exc
                except Exception as exc:
                    yield task["shard"], None, exc


# -- the sharded runner -------------------------------------------------------


class FabricRunner(_parallel.ParallelCampaignRunner):
    """Execute a campaign as fingerprint-keyed shards over a transport.

    Extends the parallel runner with content-addressed shard planning
    and work stealing; the cache pre-pass (journal resume, then result
    store), per-cell fault policy, counters, and finalisation are all
    inherited, so every execution mode shares one merge path.

    Parameters
    ----------
    campaign:
        The campaign whose grid should be executed.
    shard_count:
        How many shards to plan.  Balance follows the fingerprint hash,
        so shards are near-equal for any real grid.
    transport:
        A :class:`ShardTransport`; default
        :class:`MultiprocessTransport` (one future per shard).
    workers:
        Worker hint forwarded to the default transport.
    """

    def __init__(self, campaign, shard_count, transport=None, workers=None):
        super().__init__(campaign, workers=workers)
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {shard_count!r}")
        self.shard_count = shard_count
        self.transport = (MultiprocessTransport(workers=workers)
                          if transport is None else transport)
        #: The :class:`ShardPlan` of the most recent run (pending cells
        #: only — cached cells are never planned).
        self.plan = None

    def _steal_shard(self, state, shard, progress, policy,
                     collect_metrics):
        """Re-run a failed shard's cells in-process (work stealing).

        A stolen cell is deterministic, so the steal reproduces exactly
        what the lost worker would have returned; without a fault
        policy a genuinely raising cell still fails the sweep, the
        historical contract.
        """
        for index, spec in shard:
            result, stats = self._run_cell(spec, policy, collect_metrics)
            self._merge_cell(state, index, spec, result, stats,
                             progress=progress)

    def run(self, progress=None, collect_metrics=False, checkpoint=None,
            resume=False, fault_policy=None, store=None):
        """Plan, dispatch, steal, merge; returns the result list.

        Same contract as the parallel runner (``progress`` exactly once
        per cell; bit-identical results, merged metrics, and reports),
        except that ``progress`` fires in shard order rather than grid
        order while the grid is in flight — the installed results are
        in grid order regardless.  ``self.mode`` ends as ``"sharded"``,
        and ``campaign.shards_stolen`` counts shards whose transport
        execution failed and were re-run in-process.
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        campaign = self.campaign
        cells = list(campaign.cells())
        self.metrics = MetricsRegistry(enabled=True)
        state = {
            "slots": [None] * len(cells),
            # Sharding keys on content addresses, so pay for the
            # fingerprints up front even without checkpoint or store.
            "fingerprints": [spec.fingerprint() for spec in cells],
            "journal": None,
            "store": None,
            "merged": 0,
        }
        journal, store, pending = self._prepare(
            cells, state, checkpoint, resume, store, progress)
        plan = plan_shards(
            pending, self.shard_count,
            fingerprints=[state["fingerprints"][index]
                          for index, _ in pending])
        self.plan = plan
        shards = [(sid, shard) for sid, shard in enumerate(plan.shards)
                  if shard]
        self._count(_names.CAMPAIGN_SHARDS_PLANNED, len(shards))
        policy_payload = (None if fault_policy is None
                          else fault_policy.to_dict())
        tasks = [{"shard": sid,
                  "collect_metrics": collect_metrics,
                  "policy": policy_payload,
                  "specs": [spec.to_dict() for _, spec in shard]}
                 for sid, shard in shards]
        try:
            if journal is not None:
                state["journal"] = journal.open()
            # Lazily opened on first put; a warm run writes nothing.
            state["store"] = store
            self.mode = "sharded"
            for sid, records, error in self.transport.dispatch(tasks):
                shard = plan.shards[sid]
                if error is not None:
                    self._count(_names.CAMPAIGN_SHARDS_STOLEN)
                    self._steal_shard(state, shard, progress,
                                      fault_policy, collect_metrics)
                    continue
                for (index, spec), record in zip(shard, records):
                    result = _resilience.result_from_dict(record["cell"])
                    self._merge_cell(state, index, spec, result, record,
                                     progress=progress)
        finally:
            if journal is not None:
                journal.close()
            if store is not None:
                store.close()
        return self._finalize(state)
