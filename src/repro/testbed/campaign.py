"""Batch experiment campaigns.

A *campaign* is a grid of experiment cells (environment x phone x
emulated RTT x tool x cross-traffic) run deterministically and collected
into a serialisable result set — the structure behind "we run the full
Table 5 sweep nightly" workflows.  The grid enumerates
:class:`~repro.testbed.scenario.ScenarioSpec` objects, so one campaign
can sweep WiFi and cellular cells side by side.  Results round-trip
through JSON so separate processes (or machines) can split the grid and
merge; per-cell seeds make every cell independent, which is what lets
:class:`~repro.testbed.parallel.ParallelCampaignRunner` shard the grid
across worker processes with bit-identical output.
"""

import itertools
import json

from repro.analysis.stats import SummaryStats
from repro.obs.metrics import merge_snapshots
from repro.testbed.scenario import ScenarioSpec, run_scenario


class CellResult:
    """The outcome of one campaign cell."""

    #: Successful cells are not failures; quarantined
    #: :class:`~repro.testbed.resilience.CellFailure` entries override
    #: this, so ``result.failure`` splits any mixed list cheaply.
    failure = False

    __slots__ = ("phone", "rtt", "tool", "cross_traffic", "seed",
                 "rtts", "layers", "metrics", "env")

    def __init__(self, phone, rtt, tool, cross_traffic, seed, rtts,
                 layers=None, metrics=None, env="wifi"):
        self.phone = phone
        self.rtt = rtt
        self.tool = tool
        self.cross_traffic = cross_traffic
        self.seed = seed
        self.rtts = rtts
        self.layers = layers or {}
        self.metrics = metrics  # snapshot dict when run with collect_metrics
        self.env = env

    def summary(self):
        return SummaryStats(self.rtts)

    def error(self):
        """Median |measured - emulated| (seconds)."""
        stats = self.summary()
        return abs(stats.median - self.rtt)

    def to_dict(self):
        payload = {
            "env": self.env,
            "phone": self.phone, "rtt": self.rtt, "tool": self.tool,
            "cross_traffic": self.cross_traffic, "seed": self.seed,
            "rtts": self.rtts, "layers": self.layers,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    @classmethod
    def from_dict(cls, data):
        return cls(data["phone"], data["rtt"], data["tool"],
                   data["cross_traffic"], data["seed"], data["rtts"],
                   data.get("layers"), data.get("metrics"),
                   env=data.get("env", "wifi"))

    def key(self):
        return (self.env, self.phone, self.rtt, self.tool,
                self.cross_traffic)

    def __repr__(self):
        return (f"<CellResult {self.env}:{self.phone} {self.rtt * 1e3:.0f}ms "
                f"{self.tool} n={len(self.rtts)}>")


def run_cell(spec, collect_metrics=False):
    """Execute one campaign cell and return its :class:`CellResult`.

    Module-level (rather than a Campaign method) so worker processes can
    import and run cells from a serialized
    :class:`~repro.testbed.scenario.ScenarioSpec` without materialising
    a campaign object.  With ``collect_metrics`` the cell's simulator
    runs with observability enabled and the result carries a
    deterministic metrics snapshot (instrumentation never touches RNG
    streams or the event schedule, so the measured RTTs are identical
    either way).
    """
    if collect_metrics and not spec.observe:
        spec = spec.replace(observe=True)
    result = run_scenario(spec)
    rtts = result.user_rtts
    layers = dict(result.layers) if spec.tool == "acutemon" else {}
    metrics = result.metrics_snapshot() if collect_metrics else None
    return CellResult(spec.phone, spec.emulated_rtt, spec.tool,
                      spec.cross_traffic, spec.seed, rtts, layers, metrics,
                      env=spec.env)


class Campaign:
    """A deterministic grid of measurement cells."""

    def __init__(self, phones=("nexus5",), rtts=(0.030,),
                 tools=("acutemon",), cross_traffic=(False,),
                 count=30, base_seed=0, envs=("wifi",)):
        self.envs = tuple(envs)
        self.phones = tuple(phones)
        self.rtts = tuple(rtts)
        self.tools = tuple(tools)
        self.cross_traffic = tuple(cross_traffic)
        self.count = count
        self.base_seed = base_seed
        self.results = []
        #: Cells that exhausted their fault policy this run, as
        #: :class:`~repro.testbed.resilience.CellFailure` objects.
        self.quarantine = []
        #: Runner-level counter snapshot (``campaign.cells_run``,
        #: ``campaign.cells_resumed``, ``campaign.retries``, ...) from
        #: the most recent resilient run; ``None`` for plain runs.
        self.run_metrics = None

    @property
    def results(self):
        return self._results

    @results.setter
    def results(self, value):
        # Assigning the result list (run(), load(), merged_with(), tests)
        # rebuilds the key index so result_for() stays O(1) and
        # consistent.  First occurrence wins on duplicate keys, matching
        # the linear scan this index replaced.
        self._results = list(value)
        index = {}
        for result in self._results:
            index.setdefault(result.key(), result)
        self._index = index

    def _append_result(self, result):
        self._results.append(result)
        self._index.setdefault(result.key(), result)

    def cells(self):
        """The full grid as :class:`ScenarioSpec` objects.

        Deterministic order with per-cell seeds; the environment axis is
        outermost, so single-environment grids keep the same seed per
        (phone, rtt, tool, cross) cell they had before the axis existed.
        """
        grid = itertools.product(self.envs, self.phones, self.rtts,
                                 self.tools, self.cross_traffic)
        for index, (env, phone, rtt, tool, cross) in enumerate(grid):
            yield ScenarioSpec(
                env=env, phone=phone, tool=tool, emulated_rtt=rtt,
                count=self.count, cross_traffic=cross,
                seed=self.base_seed + index * 7919,
            )

    def run(self, progress=None, workers=1, chunk_size=None,
            collect_metrics=False, checkpoint=None, resume=False,
            fault_policy=None, cell_timeout=None, retries=0,
            retry_backoff=0.0, shards=None, store=None, transport=None):
        """Execute every cell; returns the result list.

        ``progress`` (if given) is called exactly once per cell with its
        :class:`ScenarioSpec` — just before the cell runs in serial
        mode, as each cell's result merges in parallel mode.
        ``workers=1`` (the default) runs in-process and serially.  Any
        other value delegates to
        :class:`~repro.testbed.parallel.ParallelCampaignRunner`, which
        shards the grid across a process pool (``workers=None`` means
        one worker per CPU) and produces bit-identical results in the
        same deterministic order.  ``chunk_size`` tunes how many cells
        each pool task carries.  ``collect_metrics`` runs every cell
        with observability enabled and attaches a metrics snapshot to
        each :class:`CellResult` (see :meth:`merged_metrics`); snapshots
        are deterministic, so serial and parallel runs agree exactly.

        Resilience (see ``docs/RESILIENCE.md``): ``checkpoint`` names a
        :class:`~repro.testbed.resilience.CheckpointJournal` JSONL file
        that records each completed cell as it finishes; with
        ``resume=True`` cells already journaled are skipped and their
        cached results re-emitted, bit-identical to an uninterrupted
        run.  ``cell_timeout`` / ``retries`` / ``retry_backoff`` build a
        per-cell :class:`~repro.testbed.resilience.FaultPolicy` (or pass
        ``fault_policy`` directly); cells that exhaust the policy land
        in :attr:`quarantine` as ``CellFailure`` objects instead of
        failing the sweep, and :attr:`run_metrics` carries the runner's
        counters (``campaign.retries``, ``campaign.cells_resumed``, ...).

        Fabric (see ``docs/FABRIC.md``): ``store`` names a persistent
        :class:`~repro.testbed.store.ResultStore` directory (or passes
        an instance) consulted before any cell executes — cells any
        earlier campaign already computed are re-emitted from the cache
        and fresh cells are recorded for the next run.  ``shards=N``
        partitions the remaining cells into N fingerprint-keyed shards
        through :class:`~repro.testbed.fabric.FabricRunner` and
        executes them over ``transport`` (default: one process-pool
        future per shard), stealing failed shards back in-process.
        Every mode — serial, parallel, sharded, resumed, cache-warm —
        produces bit-identical results, merged metrics, and reports.
        """
        if fault_policy is None and (cell_timeout is not None or retries
                                     or retry_backoff):
            from repro.testbed.resilience import FaultPolicy
            fault_policy = FaultPolicy(cell_timeout=cell_timeout,
                                       retries=retries,
                                       backoff=retry_backoff)
        if shards is not None:
            from repro.testbed.fabric import FabricRunner
            runner = FabricRunner(self, shard_count=shards,
                                  transport=transport,
                                  workers=None if workers == 1 else workers)
            return runner.run(progress=progress,
                              collect_metrics=collect_metrics,
                              checkpoint=checkpoint, resume=resume,
                              fault_policy=fault_policy, store=store)
        resilient = (checkpoint is not None or resume
                     or fault_policy is not None or store is not None)
        if workers == 1 and not resilient:
            self.results = []
            self.quarantine = []
            self.run_metrics = None
            for spec in self.cells():
                if progress is not None:
                    progress(spec)
                self._append_result(
                    run_cell(spec, collect_metrics=collect_metrics))
            return self._results
        from repro.testbed.parallel import ParallelCampaignRunner
        runner = ParallelCampaignRunner(self, workers=workers,
                                        chunk_size=chunk_size)
        return runner.run(progress=progress, collect_metrics=collect_metrics,
                          checkpoint=checkpoint, resume=resume,
                          fault_policy=fault_policy, store=store)

    # -- persistence ----------------------------------------------------------

    def save(self, path):
        payload = {
            "count": self.count,
            "base_seed": self.base_seed,
            "envs": list(self.envs),
            "results": [result.to_dict() for result in self.results],
        }
        if self.quarantine:
            payload["quarantine"] = [failure.to_dict()
                                     for failure in self.quarantine]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        campaign = cls(count=payload["count"],
                       base_seed=payload["base_seed"],
                       envs=tuple(payload.get("envs", ("wifi",))))
        campaign.results = [CellResult.from_dict(item)
                            for item in payload["results"]]
        if payload.get("quarantine"):
            from repro.testbed.resilience import CellFailure
            campaign.quarantine = [CellFailure.from_dict(item)
                                   for item in payload["quarantine"]]
        return campaign

    def merged_with(self, other):
        """Combine result sets (later cells win on key collision)."""
        envs = tuple(dict.fromkeys(self.envs + other.envs))
        merged = Campaign(count=self.count, base_seed=self.base_seed,
                          envs=envs)
        by_key = {result.key(): result for result in self.results}
        for result in other.results:
            by_key[result.key()] = result
        merged.results = list(by_key.values())
        return merged

    # -- queries ------------------------------------------------------------------

    def merged_metrics(self):
        """Fold every cell's metrics snapshot into one campaign-wide view.

        Counters and histogram buckets sum across cells; gauges keep the
        last cell's value (grid order).  Returns ``None`` when no cell
        carries metrics (i.e. the campaign ran without
        ``collect_metrics``).  Because each cell's snapshot is
        deterministic and the fold follows grid order, the merged view
        is identical for serial and parallel runs — WiFi and cellular
        cells fold into the same registry view.
        """
        snapshots = [result.metrics for result in self.results
                     if result.metrics is not None]
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    def result_for(self, phone, rtt, tool, cross_traffic=False, env="wifi"):
        return self._index.get((env, phone, rtt, tool, cross_traffic))

    def worst_error(self):
        """(CellResult, error) for the least accurate cell."""
        if not self.results:
            return None, None
        worst = max(self.results, key=lambda result: result.error())
        return worst, worst.error()

    def __len__(self):
        return len(self.results)
