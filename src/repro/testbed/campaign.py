"""Batch experiment campaigns.

A *campaign* is a grid of experiment cells (phone x emulated RTT x tool
x scenario) run deterministically and collected into a serialisable
result set — the structure behind "we run the full Table 5 sweep
nightly" workflows.  Results round-trip through JSON so separate
processes (or machines) can split the grid and merge.
"""

import itertools
import json

from repro.analysis.stats import SummaryStats
from repro.testbed.experiments import acutemon_experiment, tool_comparison


class CellResult:
    """The outcome of one campaign cell."""

    __slots__ = ("phone", "rtt", "tool", "cross_traffic", "seed",
                 "rtts", "layers")

    def __init__(self, phone, rtt, tool, cross_traffic, seed, rtts,
                 layers=None):
        self.phone = phone
        self.rtt = rtt
        self.tool = tool
        self.cross_traffic = cross_traffic
        self.seed = seed
        self.rtts = rtts
        self.layers = layers or {}

    def summary(self):
        return SummaryStats(self.rtts)

    def error(self):
        """Median |measured - emulated| (seconds)."""
        stats = self.summary()
        return abs(stats.median - self.rtt)

    def to_dict(self):
        return {
            "phone": self.phone, "rtt": self.rtt, "tool": self.tool,
            "cross_traffic": self.cross_traffic, "seed": self.seed,
            "rtts": self.rtts, "layers": self.layers,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["phone"], data["rtt"], data["tool"],
                   data["cross_traffic"], data["seed"], data["rtts"],
                   data.get("layers"))

    def key(self):
        return (self.phone, self.rtt, self.tool, self.cross_traffic)

    def __repr__(self):
        return (f"<CellResult {self.phone} {self.rtt * 1e3:.0f}ms "
                f"{self.tool} n={len(self.rtts)}>")


class Campaign:
    """A deterministic grid of measurement cells."""

    def __init__(self, phones=("nexus5",), rtts=(0.030,),
                 tools=("acutemon",), cross_traffic=(False,),
                 count=30, base_seed=0):
        self.phones = tuple(phones)
        self.rtts = tuple(rtts)
        self.tools = tuple(tools)
        self.cross_traffic = tuple(cross_traffic)
        self.count = count
        self.base_seed = base_seed
        self.results = []

    def cells(self):
        """The full grid, in deterministic order, with per-cell seeds."""
        grid = itertools.product(self.phones, self.rtts, self.tools,
                                 self.cross_traffic)
        for index, (phone, rtt, tool, cross) in enumerate(grid):
            yield phone, rtt, tool, cross, self.base_seed + index * 7919

    def run(self, progress=None):
        """Execute every cell; returns the result list."""
        self.results = []
        for phone, rtt, tool, cross, seed in self.cells():
            if progress is not None:
                progress(phone, rtt, tool, cross)
            if tool == "acutemon":
                result = acutemon_experiment(
                    phone, emulated_rtt=rtt, count=self.count, seed=seed,
                    cross_traffic=cross)
                rtts = result.user_rtts
                layers = {name: values
                          for name, values in result.layers.items()}
            else:
                comparison = tool_comparison(
                    phone, emulated_rtt=rtt, count=self.count, seed=seed,
                    cross_traffic=cross, tools=(tool,))
                rtts = comparison[tool]
                layers = {}
            self.results.append(CellResult(phone, rtt, tool, cross, seed,
                                           rtts, layers))
        return self.results

    # -- persistence ----------------------------------------------------------

    def save(self, path):
        payload = {
            "count": self.count,
            "base_seed": self.base_seed,
            "results": [result.to_dict() for result in self.results],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        campaign = cls(count=payload["count"],
                       base_seed=payload["base_seed"])
        campaign.results = [CellResult.from_dict(item)
                            for item in payload["results"]]
        return campaign

    def merged_with(self, other):
        """Combine result sets (later cells win on key collision)."""
        merged = Campaign(count=self.count, base_seed=self.base_seed)
        by_key = {result.key(): result for result in self.results}
        for result in other.results:
            by_key[result.key()] = result
        merged.results = list(by_key.values())
        return merged

    # -- queries ------------------------------------------------------------------

    def result_for(self, phone, rtt, tool, cross_traffic=False):
        for result in self.results:
            if result.key() == (phone, rtt, tool, cross_traffic):
                return result
        return None

    def worst_error(self):
        """(CellResult, error) for the least accurate cell."""
        if not self.results:
            return None, None
        worst = max(self.results, key=lambda result: result.error())
        return worst, worst.error()

    def __len__(self):
        return len(self.results)
