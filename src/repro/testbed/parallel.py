"""Parallel campaign execution.

A campaign grid is embarrassingly parallel: :meth:`Campaign.cells`
yields one self-contained :class:`~repro.testbed.scenario.ScenarioSpec`
per cell (own seed, own environment), each cell builds a private
simulator, and both specs and results serialise through JSON.  The
:class:`ParallelCampaignRunner` exploits that by sharding the spec list
across a ``multiprocessing`` pool:

* cells are grouped into deterministic, contiguous *shards* (chunked
  dispatch keeps per-task overhead low while still load-balancing),
* pool workers are long-lived and reused across shards,
* each pool task carries ``ScenarioSpec.to_dict()`` payloads — plain
  data, no closures — and returns ``CellResult.to_dict()`` payloads,
  the same JSON round-trips :meth:`Campaign.save`/:meth:`Campaign.load`
  use, so the merged output is byte-identical to a serial run,
* shard results are merged back in grid order regardless of which worker
  finished first, and
* execution degrades gracefully to the in-process serial path when
  ``workers=1``, the grid is tiny, or the platform cannot start worker
  processes.

Determinism: a cell's outcome depends only on its spec — never on
process-global state shared between cells — so ``run(workers=N)``
produces results whose ``to_dict()`` payloads are identical for every
``N``, across WiFi and cellular environments alike.  The test suite
pins this (``tests/test_parallel_campaign.py``).
"""

import math
import multiprocessing
import os

from repro.testbed.campaign import CellResult, run_cell
from repro.testbed.scenario import ScenarioSpec

#: Shards-per-worker used when no explicit chunk size is given: small
#: enough to amortise task dispatch, large enough that a slow cell does
#: not serialise the tail of the run.
_CHUNKS_PER_WORKER = 4


def _run_shard(task):
    """Pool task: run a shard of serialized specs, return JSON-ready dicts.

    Module-level so it pickles under every start method (fork or spawn).
    """
    collect_metrics, spec_payloads = task
    return [run_cell(ScenarioSpec.from_dict(payload),
                     collect_metrics=collect_metrics).to_dict()
            for payload in spec_payloads]


def default_worker_count():
    """One worker per CPU (at least one)."""
    return os.cpu_count() or 1


class ParallelCampaignRunner:
    """Shard a :class:`~repro.testbed.campaign.Campaign` across processes.

    Parameters
    ----------
    campaign:
        The campaign whose grid should be executed.  Its ``results`` are
        replaced by :meth:`run`.
    workers:
        Worker process count.  ``None`` means one per CPU; values are
        clamped to the number of cells.  ``workers <= 1`` runs serially
        in-process.
    chunk_size:
        Cells per pool task.  Default: grid split into about
        ``workers * 4`` contiguous shards.
    start_method:
        ``multiprocessing`` start method to prefer.  Default: ``fork``
        when the platform offers it (cheapest), otherwise the platform
        default.  If the pool cannot be created at all, the runner falls
        back to serial execution instead of failing the sweep.
    """

    def __init__(self, campaign, workers=None, chunk_size=None,
                 start_method=None):
        self.campaign = campaign
        self.workers = default_worker_count() if workers is None else workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        #: "parallel" or "serial" after run(); None before.
        self.mode = None

    # -- sharding -------------------------------------------------------------

    def shards(self, cells=None):
        """Split the grid (a spec list) into deterministic contiguous chunks."""
        if cells is None:
            cells = list(self.campaign.cells())
        if not cells:
            return []
        size = self.chunk_size
        if size is None:
            workers = max(1, self.workers)
            size = max(1, math.ceil(len(cells) /
                                    (workers * _CHUNKS_PER_WORKER)))
        return [cells[start:start + size]
                for start in range(0, len(cells), size)]

    def _pool_context(self):
        try:
            methods = multiprocessing.get_all_start_methods()
            if self.start_method is not None:
                if self.start_method not in methods:
                    return None
                return multiprocessing.get_context(self.start_method)
            if "fork" in methods:
                return multiprocessing.get_context("fork")
            return multiprocessing.get_context()
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            return None

    # -- execution ------------------------------------------------------------

    def _run_serial(self, cells, progress, collect_metrics=False):
        results = []
        for spec in cells:
            if progress is not None:
                progress(spec)
            results.append(run_cell(spec, collect_metrics=collect_metrics))
        return results

    def run(self, progress=None, collect_metrics=False):
        """Execute the grid and install the merged results.

        ``progress(spec)`` is invoked once per cell with its
        :class:`ScenarioSpec`: before the cell runs when serial, as each
        shard's results are merged when parallel.  ``collect_metrics``
        makes every cell run observed and carry its metrics snapshot
        home through the same JSON round-trip as the rest of the result.
        Returns the result list (also assigned to ``campaign.results``,
        in grid order).
        """
        campaign = self.campaign
        cells = list(campaign.cells())
        workers = min(self.workers, len(cells))
        pool_context = self._pool_context() if workers > 1 else None
        if workers <= 1 or pool_context is None:
            self.mode = "serial"
            results = self._run_serial(cells, progress,
                                       collect_metrics=collect_metrics)
        else:
            self.mode = "parallel"
            shards = self.shards(cells)
            results = []
            try:
                with pool_context.Pool(processes=workers) as pool:
                    # imap (not imap_unordered) keeps grid order while
                    # still streaming finished shards for progress.
                    tasks = [(collect_metrics,
                              [spec.to_dict() for spec in shard])
                             for shard in shards]
                    for shard, payloads in zip(shards,
                                               pool.imap(_run_shard, tasks)):
                        for spec, payload in zip(shard, payloads):
                            if progress is not None:
                                progress(spec)
                            results.append(CellResult.from_dict(payload))
            except OSError:
                # Process creation failed mid-flight (fork limits,
                # sandboxed platforms): degrade to the serial path.
                self.mode = "serial"
                results = self._run_serial(cells, progress,
                                           collect_metrics=collect_metrics)
        campaign.results = results
        return campaign.results
