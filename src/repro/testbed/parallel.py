"""Parallel campaign execution.

A campaign grid is embarrassingly parallel: :meth:`Campaign.cells`
yields one self-contained :class:`~repro.testbed.scenario.ScenarioSpec`
per cell (own seed, own environment), each cell builds a private
simulator, and both specs and results serialise through JSON.  The
:class:`ParallelCampaignRunner` exploits that by sharding the spec list
across a process pool:

* cells are grouped into deterministic, contiguous *shards* (chunked
  dispatch keeps per-task overhead low while still load-balancing),
* pool workers are long-lived and reused across shards,
* each pool task carries ``ScenarioSpec.to_dict()`` payloads — plain
  data, no closures — and returns ``CellResult.to_dict()`` payloads,
  the same JSON round-trips :meth:`Campaign.save`/:meth:`Campaign.load`
  use, so the merged output is byte-identical to a serial run,
* shard results are merged back in grid order regardless of which worker
  finished first, and
* execution degrades gracefully: the in-process serial path handles
  ``workers=1``, tiny grids, and platforms that cannot start worker
  processes, and a pool that breaks mid-sweep (a worker killed by the
  OS, fork limits) hands the *unmerged remainder* of the grid to the
  serial path instead of failing — or re-running — anything.

The runner is also where the resilience layer
(:mod:`repro.testbed.resilience`) plugs in: an optional
:class:`~repro.testbed.resilience.CheckpointJournal` records each
completed cell under its spec's content-addressed fingerprint, resume
re-emits journaled cells without re-running them, and an optional
:class:`~repro.testbed.resilience.FaultPolicy` bounds every cell with a
timeout/retry budget, quarantining cells that exhaust it as
:class:`~repro.testbed.resilience.CellFailure` entries on
``campaign.quarantine``.  Runner-level counters (``campaign.cells_run``,
``campaign.cells_resumed``, ``campaign.retries``, ...) land in
``campaign.run_metrics`` as a :mod:`repro.obs` snapshot.

Determinism: a cell's outcome depends only on its spec — never on
process-global state shared between cells — so ``run(workers=N)``
produces results whose ``to_dict()`` payloads are identical for every
``N``, across WiFi and cellular environments alike, with or without a
checkpoint, and across crash/resume boundaries.  The test suite pins
this (``tests/test_parallel_campaign.py``, ``tests/test_campaign_chaos.py``).
"""

import concurrent.futures
import math
import multiprocessing
import os
from concurrent.futures.process import BrokenProcessPool

from repro.obs import names as _names
from repro.obs.metrics import MetricsRegistry
from repro.testbed import campaign as _campaign
from repro.testbed import resilience as _resilience
from repro.testbed.scenario import ScenarioSpec
from repro.testbed.store import ResultStore

#: Shards-per-worker used when no explicit chunk size is given: small
#: enough to amortise task dispatch, large enough that a slow cell does
#: not serialise the tail of the run.
_CHUNKS_PER_WORKER = 4


def _run_shard(task):
    """Pool task: run a shard of serialized specs, return JSON-ready dicts.

    ``task`` is ``(collect_metrics, policy_payload, spec_payloads)``.
    Each record pairs the cell payload with its attempt stats::

        {"cell": {...}, "attempts": 1, "timeouts": 0}

    With no fault policy the cell runs directly and an exception
    propagates (failing the future, and the sweep — the historical
    contract); under a policy, failures are converted to quarantined
    ``CellFailure`` payloads instead.  ``run_cell`` is resolved through
    the campaign module at call time so fork-started workers observe
    chaos-test monkeypatching.  Module-level so it pickles under every
    start method (fork or spawn).
    """
    collect_metrics, policy_payload, spec_payloads = task
    policy = (None if policy_payload is None
              else _resilience.FaultPolicy.from_dict(policy_payload))
    records = []
    for payload in spec_payloads:
        spec = ScenarioSpec.from_dict(payload)
        if policy is None:
            result = _campaign.run_cell(spec,
                                        collect_metrics=collect_metrics)
            stats = {"attempts": 1, "timeouts": 0}
        else:
            result, stats = _resilience.run_cell_with_policy(
                spec, policy, collect_metrics=collect_metrics)
        records.append({"cell": result.to_dict(),
                        "attempts": stats["attempts"],
                        "timeouts": stats["timeouts"]})
    return records


def default_worker_count():
    """One worker per CPU (at least one)."""
    return os.cpu_count() or 1


def pool_context(start_method=None):
    """The preferred multiprocessing context, or ``None`` if unusable.

    ``fork`` when the platform offers it (cheapest, and fork workers
    inherit chaos-test monkeypatching), otherwise the platform default;
    an explicitly requested method that the platform lacks yields
    ``None`` so callers fall back to in-process execution.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        if start_method is not None:
            if start_method not in methods:
                return None
            return multiprocessing.get_context(start_method)
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        return None


class ParallelCampaignRunner:
    """Shard a :class:`~repro.testbed.campaign.Campaign` across processes.

    Parameters
    ----------
    campaign:
        The campaign whose grid should be executed.  Its ``results`` are
        replaced by :meth:`run`.
    workers:
        Worker process count.  ``None`` means one per CPU; values are
        clamped to the number of cells.  ``workers <= 1`` runs serially
        in-process.
    chunk_size:
        Cells per pool task.  Default: grid split into about
        ``workers * 4`` contiguous shards.
    start_method:
        ``multiprocessing`` start method to prefer.  Default: ``fork``
        when the platform offers it (cheapest), otherwise the platform
        default.  If the pool cannot be created at all, the runner falls
        back to serial execution instead of failing the sweep.
    """

    def __init__(self, campaign, workers=None, chunk_size=None,
                 start_method=None):
        self.campaign = campaign
        self.workers = default_worker_count() if workers is None else workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        #: "parallel", "serial", or "parallel-degraded" (pool broke
        #: mid-sweep, remainder completed serially) after run(); None
        #: before.
        self.mode = None
        #: Runner counters for the most recent run (``campaign.*``).
        self.metrics = MetricsRegistry(enabled=True)

    # -- sharding -------------------------------------------------------------

    def shards(self, cells=None):
        """Split the grid (a spec list) into deterministic contiguous chunks."""
        if cells is None:
            cells = list(self.campaign.cells())
        if not cells:
            return []
        size = self.chunk_size
        if size is None:
            workers = max(1, self.workers)
            size = max(1, math.ceil(len(cells) /
                                    (workers * _CHUNKS_PER_WORKER)))
        return [cells[start:start + size]
                for start in range(0, len(cells), size)]

    def _pool_context(self):
        return pool_context(self.start_method)

    # -- execution ------------------------------------------------------------

    def _count(self, name, amount=1):
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc(name, amount)

    def _merge_cell(self, state, index, spec, result, stats,
                    progress=None):
        """Install one finished cell: slot, counters, journal, store."""
        state["slots"][index] = result
        self._count(_names.CAMPAIGN_RETRIES, stats["attempts"] - 1)
        self._count(_names.CAMPAIGN_CELL_TIMEOUTS, stats["timeouts"])
        if result.failure:
            self._count(_names.CAMPAIGN_CELLS_QUARANTINED)
        else:
            self._count(_names.CAMPAIGN_CELLS_RUN)
            journal = state["journal"]
            if journal is not None:
                journal.append(state["fingerprints"][index], result)
                self._count(_names.CAMPAIGN_CHECKPOINT_WRITES)
            store = state["store"]
            if store is not None:
                store.put(state["fingerprints"][index], result)
                self._count(_names.CAMPAIGN_STORE_WRITES)
        if progress is not None:
            progress(spec)

    def _prepare(self, cells, state, checkpoint, resume, store, progress):
        """The cache pre-pass shared by every resilient execution mode.

        Consults the checkpoint journal first (this run's own past),
        then the persistent result store (any past run's cells): a
        cached cell is installed into its slot immediately — counted as
        ``campaign.cells_resumed`` or ``campaign.cache_hits``, with
        ``progress`` fired — and only the remainder comes back as
        ``pending`` ``(index, spec)`` pairs.  Returns
        ``(journal, store, pending)``; neither handle is opened yet.
        """
        store = ResultStore.ensure(store)
        journal = None
        if checkpoint is not None:
            journal = _resilience.CheckpointJournal(checkpoint)
        if state["fingerprints"] is None and (journal is not None
                                              or store is not None):
            state["fingerprints"] = [spec.fingerprint() for spec in cells]
        cache = journal.load() if (journal is not None and resume) else {}
        fingerprints = state["fingerprints"]
        pending = []
        for index, spec in enumerate(cells):
            fingerprint = fingerprints[index] if fingerprints else None
            payload = cache.get(fingerprint) if cache else None
            if payload is not None:
                self._count(_names.CAMPAIGN_CELLS_RESUMED)
            elif store is not None:
                payload = store.get(fingerprint)
                if payload is not None:
                    self._count(_names.CAMPAIGN_CACHE_HITS)
            if payload is not None:
                state["slots"][index] = _resilience.result_from_dict(payload)
                if progress is not None:
                    progress(spec)
            else:
                pending.append((index, spec))
        if store is not None:
            self._count(_names.CAMPAIGN_CACHE_MISSES, len(pending))
        return journal, store, pending

    def _finalize(self, state):
        """Split the merged slots into results/quarantine + counters."""
        campaign = self.campaign
        slots = state["slots"]
        campaign.results = [cell for cell in slots if not cell.failure]
        campaign.quarantine = [cell for cell in slots if cell.failure]
        campaign.run_metrics = self.metrics.snapshot()
        return campaign.results

    def _run_cell(self, spec, policy, collect_metrics):
        """One in-process cell under the optional fault policy."""
        if policy is None:
            result = _campaign.run_cell(spec,
                                        collect_metrics=collect_metrics)
            return result, {"attempts": 1, "timeouts": 0}
        return _resilience.run_cell_with_policy(
            spec, policy, collect_metrics=collect_metrics)

    def _run_serial(self, state, pending, progress, policy,
                    collect_metrics):
        """Run ``pending`` ``(index, spec)`` cells in-process, in order.

        Serial semantics fire ``progress`` *before* each cell runs (so a
        watcher sees what is about to execute); the merge therefore
        fires no second callback.
        """
        for index, spec in pending:
            if progress is not None:
                progress(spec)
            result, stats = self._run_cell(spec, policy, collect_metrics)
            self._merge_cell(state, index, spec, result, stats)

    def _run_parallel(self, state, pending, progress, policy,
                      collect_metrics, workers, pool_context):
        """Shard ``pending`` across a process pool, merging in grid order.

        Tracks how many cells have merged in ``state["merged"]`` so that
        a pool that breaks mid-sweep (:class:`BrokenProcessPool`,
        ``OSError``) lets the caller resume serially from exactly the
        first unmerged cell — nothing re-runs, nothing is lost, and
        ``progress`` still fires exactly once per cell.
        """
        shards = self.shards(pending)
        policy_payload = None if policy is None else policy.to_dict()
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=pool_context) as executor:
            tasks = [(collect_metrics, policy_payload,
                      [spec.to_dict() for _, spec in shard])
                     for shard in shards]
            futures = [executor.submit(_run_shard, task) for task in tasks]
            # Merge in submission (grid) order regardless of which
            # worker finishes first; parallel mode fires progress as
            # each cell's result merges.
            for shard, future in zip(shards, futures):
                for (index, spec), record in zip(shard, future.result()):
                    result = _resilience.result_from_dict(record["cell"])
                    self._merge_cell(state, index, spec, result, record,
                                     progress=progress)
                    state["merged"] += 1

    def run(self, progress=None, collect_metrics=False, checkpoint=None,
            resume=False, fault_policy=None, store=None):
        """Execute the grid and install the merged results.

        ``progress(spec)`` is invoked exactly once per cell with its
        :class:`ScenarioSpec`: before the cell runs when serial, as each
        cell's result merges when parallel, and immediately for cells
        restored from a cache.  ``collect_metrics`` makes every cell
        run observed and carry its metrics snapshot home through the
        same JSON round-trip as the rest of the result.

        ``checkpoint`` (a path) journals every completed cell through a
        :class:`~repro.testbed.resilience.CheckpointJournal`;
        ``resume=True`` first loads the journal and re-emits cached
        results for cells whose fingerprints already appear, running
        only the remainder — the final result list and merged metrics
        are bit-identical to an uninterrupted run.  ``store`` (a path
        or :class:`~repro.testbed.store.ResultStore`) consults the
        persistent cross-campaign result cache before any cell
        executes and records every fresh successful cell into it; a
        fully warm store re-emits the whole campaign without executing
        anything.  ``fault_policy`` applies a per-cell timeout/retry
        budget; cells that exhaust it become quarantined
        :class:`~repro.testbed.resilience.CellFailure` entries on
        ``campaign.quarantine`` instead of failing the sweep.  Without a
        policy, a raising cell fails the run (the historical contract).

        Returns the successful result list (also assigned to
        ``campaign.results``, in grid order); ``campaign.run_metrics``
        receives this run's counter snapshot.
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        campaign = self.campaign
        cells = list(campaign.cells())
        self.metrics = MetricsRegistry(enabled=True)
        state = {
            "slots": [None] * len(cells),
            "fingerprints": None,
            "journal": None,
            "store": None,
            "merged": 0,
        }
        journal, store, pending = self._prepare(
            cells, state, checkpoint, resume, store, progress)
        workers = min(self.workers, len(pending)) if pending else 0
        pool_context = self._pool_context() if workers > 1 else None
        try:
            if journal is not None:
                state["journal"] = journal.open()
            # The store opens its writer segment lazily on first put,
            # so a fully warm run leaves no empty segment behind.
            state["store"] = store
            if workers <= 1 or pool_context is None:
                self.mode = "serial"
                self._run_serial(state, pending, progress, fault_policy,
                                 collect_metrics)
            else:
                self.mode = "parallel"
                try:
                    self._run_parallel(state, pending, progress,
                                       fault_policy, collect_metrics,
                                       workers, pool_context)
                except (BrokenProcessPool, OSError):
                    # A worker died or process creation failed
                    # mid-flight: finish the unmerged remainder
                    # in-process.  Already-merged (and journaled) cells
                    # are kept, so nothing re-runs.
                    self.mode = "parallel-degraded"
                    self._count(_names.CAMPAIGN_POOL_FAILURES)
                    self._run_serial(state, pending[state["merged"]:],
                                     progress, fault_policy,
                                     collect_metrics)
        finally:
            if journal is not None:
                journal.close()
            if store is not None:
                store.close()
        return self._finalize(state)
