"""Building the Figure 2 testbed.

Topology (all within one collision domain, as in the paper)::

    phone ~~~ WiFi ~~~ AP ---- switch ---- measurement server (netem RTT)
    loadgen ~~ WiFi ~~/    \\--- load server (UDP sink)
    sniffer A/B/C ~~ monitor mode on the WiFi channel

The measurement server adds the emulated RTT on its egress, exactly like
the paper's ``tc`` configuration ("introducing additional delays on the
server side can be considered as controlling the length of the network
path").  The wired half (switch, server, netem) is assembled by the
shared :class:`~repro.testbed.environment.WiredCore`, which the cellular
testbed reuses; :class:`Testbed` implements the
:class:`~repro.testbed.environment.Environment` protocol and is
registered under the key ``"wifi"``.
"""

from repro.net.addresses import MacAddress, ip
from repro.net.iperf import UdpLoadGenerator, UdpSink
from repro.phone.phone import Phone
from repro.phone.profiles import coerce_profile
from repro.sim.scheduler import Simulator
from repro.sniffer.merge import merge_records
from repro.sniffer.sniffer import WirelessSniffer
from repro.testbed.environment import (
    SERVER_IP,
    WIFI_CAPABILITIES,
    WIRED_NET,
    Environment,
    WiredCore,
)
from repro.wifi.ap import AccessPoint
from repro.wifi.channel import WifiChannel
from repro.wifi.host import WifiHost

# Address plan.
WLAN_NET = "192.168.1.0/24"
AP_WLAN_IP = ip("192.168.1.1")
AP_WIRED_IP = ip("10.0.0.1")
LOAD_SERVER_IP = ip("10.0.0.3")
PHONE_IP = ip("192.168.1.2")
LOADGEN_IP = ip("192.168.1.3")
LOAD_PORT = 5001


class Testbed(Environment):
    """The assembled WiFi testbed.

    Parameters
    ----------
    seed:
        Master seed; every random stream derives from it.
    emulated_rtt:
        Additional RTT injected at the measurement server (seconds).
    sniffer_count / sniffer_loss:
        Number of monitor-mode sniffers and their individual capture-loss
        probability.  The paper uses three sniffers so that the merged
        capture is effectively lossless.
    beacon_interval_tu:
        AP beacon interval in Time Units (default 100 TU = 102.4 ms).
    """

    key = "wifi"
    capabilities = WIFI_CAPABILITIES

    #: ERP protection overhead used by the testbed AP (b/g mixed mode);
    #: drops practical channel capacity under the 25 Mbps iPerf load so
    #: cross-traffic congestion behaves like the paper's §4.3 WLAN.
    PROTECTION_TIME = 120e-6

    def __init__(self, seed=0, emulated_rtt=0.0, sniffer_count=3,
                 sniffer_loss=0.0, beacon_interval_tu=100,
                 send_time_exceeded=True, phy=None, rtt_jitter=0.0,
                 path_loss=0.0):
        from repro.wifi.phy import PhyParams

        self.sim = Simulator(seed=seed)
        self._rtt_jitter = rtt_jitter
        self._path_loss = path_loss
        if phy is None:
            phy = PhyParams(protection_time=self.PROTECTION_TIME)
        self.channel = WifiChannel(self.sim, phy=phy, name="wlan")
        self.ap = AccessPoint(
            self.sim, self.channel, MacAddress.from_index(1, oui=0x02AB00),
            AP_WLAN_IP, WLAN_NET, beacon_interval_tu=beacon_interval_tu,
            rng=self.sim.rng.stream("ap"),
            send_time_exceeded=send_time_exceeded,
        )
        self.wired_core = WiredCore(self.sim, gateway_ip=AP_WIRED_IP,
                                    network=WIRED_NET)
        self.wired_core.connect_gateway(self.ap, link_name="ap-switch")
        self.server_host, self.server, self.netem = \
            self.wired_core.add_measurement_server(
                SERVER_IP, delay=emulated_rtt, jitter=rtt_jitter,
                loss=path_loss,
            )

        self.load_server_host = self.wired_core.add_host("load-server",
                                                         LOAD_SERVER_IP)
        self.load_sink = UdpSink(self.load_server_host, LOAD_PORT)

        self.sniffers = [
            WirelessSniffer(
                self.sim, self.channel, name=f"sniffer-{label}",
                capture_loss=sniffer_loss,
            )
            for label in "ABC"[:sniffer_count]
        ]

        self.phones = []
        self.load_generator = None
        self._loadgen_host = None

    # -- wired-core conveniences ----------------------------------------------

    @property
    def switch(self):
        return self.wired_core.switch

    @property
    def wired_arp(self):
        return self.wired_core.arp

    # -- phones ---------------------------------------------------------------

    def add_phone(self, profile="nexus5", phone_ip=PHONE_IP, **phone_kwargs):
        """Attach an instrumented phone to the WLAN.

        ``profile`` is a profile key or a :class:`PhoneProfile`; extra
        keyword arguments go to :class:`~repro.phone.phone.Phone` (e.g.
        ``bus_sleep=False``, ``runtime='dalvik'``).
        """
        profile = coerce_profile(profile)
        mac = MacAddress.from_index(0x100 + len(self.phones), oui=0x02EE00)
        phone = Phone(
            self.sim, profile, self.channel, self.ap, phone_ip, mac,
            **phone_kwargs,
        )
        self.phones.append(phone)
        return phone

    #: The :class:`Environment` protocol name for :meth:`add_phone`.
    attach_phone = add_phone

    def start_cross_traffic(self, flows=10, rate_bps=2.5e6):
        """Congest the WLAN with the paper's iPerf workload.

        10 flows x 2.5 Mbps of UDP from a wireless load generator toward
        the wired load server (§4.3).
        """
        if self._loadgen_host is None:
            self._loadgen_host = WifiHost(
                self.sim, "loadgen", self.channel, self.ap, LOADGEN_IP,
                MacAddress.from_index(0x200, oui=0x02EE00),
                rng=self.sim.rng.stream("loadgen"),
            )
        self.load_generator = UdpLoadGenerator(
            self.sim, self._loadgen_host.stack, LOAD_SERVER_IP, LOAD_PORT,
            flows=flows, rate_bps=rate_bps,
            rng=self.sim.rng.stream("loadgen-pacing"),
        )
        self.load_generator.start()
        return self.load_generator

    def stop_cross_traffic(self):
        if self.load_generator is not None:
            self.load_generator.stop()

    # -- conveniences ----------------------------------------------------------

    def merged_capture(self):
        """The deduplicated multi-sniffer view of the channel."""
        return merge_records(*self.sniffers)

    def __repr__(self):
        return (
            f"<Testbed t={self.sim.now:.3f}s phones={len(self.phones)} "
            f"rtt={self.netem.delay * 1e3:.0f}ms>"
        )
