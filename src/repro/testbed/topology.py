"""Building the Figure 2 testbed.

Topology (all within one collision domain, as in the paper)::

    phone ~~~ WiFi ~~~ AP ---- switch ---- measurement server (netem RTT)
    loadgen ~~ WiFi ~~/    \\--- load server (UDP sink)
    sniffer A/B/C ~~ monitor mode on the WiFi channel

The measurement server adds the emulated RTT on its egress, exactly like
the paper's ``tc`` configuration ("introducing additional delays on the
server side can be considered as controlling the length of the network
path").
"""

from repro.net.addresses import MacAddress, ip
from repro.net.arp import ArpTable
from repro.net.host import Host
from repro.net.iperf import UdpLoadGenerator, UdpSink
from repro.net.link import Link
from repro.net.netem import NetemQdisc
from repro.net.servers import MeasurementServer
from repro.net.switch import Switch
from repro.phone.phone import Phone
from repro.phone.profiles import PhoneProfile, phone_profile
from repro.sim.scheduler import Simulator
from repro.sniffer.merge import merge_records
from repro.sniffer.sniffer import WirelessSniffer
from repro.wifi.ap import AccessPoint
from repro.wifi.channel import WifiChannel
from repro.wifi.host import WifiHost

# Address plan.
WLAN_NET = "192.168.1.0/24"
WIRED_NET = "10.0.0.0/24"
AP_WLAN_IP = ip("192.168.1.1")
AP_WIRED_IP = ip("10.0.0.1")
SERVER_IP = ip("10.0.0.2")
LOAD_SERVER_IP = ip("10.0.0.3")
PHONE_IP = ip("192.168.1.2")
LOADGEN_IP = ip("192.168.1.3")
LOAD_PORT = 5001


class Testbed:
    """The assembled testbed.

    Parameters
    ----------
    seed:
        Master seed; every random stream derives from it.
    emulated_rtt:
        Additional RTT injected at the measurement server (seconds).
    sniffer_count / sniffer_loss:
        Number of monitor-mode sniffers and their individual capture-loss
        probability.  The paper uses three sniffers so that the merged
        capture is effectively lossless.
    beacon_interval_tu:
        AP beacon interval in Time Units (default 100 TU = 102.4 ms).
    """

    # Not a test class, despite the name (silences pytest collection).
    __test__ = False

    #: ERP protection overhead used by the testbed AP (b/g mixed mode);
    #: drops practical channel capacity under the 25 Mbps iPerf load so
    #: cross-traffic congestion behaves like the paper's §4.3 WLAN.
    PROTECTION_TIME = 120e-6

    def __init__(self, seed=0, emulated_rtt=0.0, sniffer_count=3,
                 sniffer_loss=0.0, beacon_interval_tu=100,
                 send_time_exceeded=True, phy=None, rtt_jitter=0.0,
                 path_loss=0.0):
        from repro.wifi.phy import PhyParams

        self.sim = Simulator(seed=seed)
        self._rtt_jitter = rtt_jitter
        self._path_loss = path_loss
        if phy is None:
            phy = PhyParams(protection_time=self.PROTECTION_TIME)
        self.channel = WifiChannel(self.sim, phy=phy, name="wlan")
        self.ap = AccessPoint(
            self.sim, self.channel, MacAddress.from_index(1, oui=0x02AB00),
            AP_WLAN_IP, WLAN_NET, beacon_interval_tu=beacon_interval_tu,
            rng=self.sim.rng.stream("ap"),
            send_time_exceeded=send_time_exceeded,
        )
        self.switch = Switch(self.sim)
        self.wired_arp = ArpTable()

        ap_link = Link(self.sim, name="ap-switch")
        self.ap.add_wired_port("eth0", AP_WIRED_IP, WIRED_NET,
                               self.wired_arp, link=ap_link)
        self.switch.new_port(ap_link)

        self.server_host = self._add_wired_host("server", SERVER_IP)
        self.server = MeasurementServer(self.server_host)
        self.netem = NetemQdisc(
            self.sim, delay=emulated_rtt, jitter=rtt_jitter,
            loss=path_loss, rng=self.sim.rng.stream("netem"),
            name="server-egress",
        )
        self.server_host.netem = self.netem

        self.load_server_host = self._add_wired_host("load-server",
                                                     LOAD_SERVER_IP)
        self.load_sink = UdpSink(self.load_server_host, LOAD_PORT)

        self.sniffers = [
            WirelessSniffer(
                self.sim, self.channel, name=f"sniffer-{label}",
                capture_loss=sniffer_loss,
            )
            for label in "ABC"[:sniffer_count]
        ]

        self.phones = []
        self.load_generator = None
        self._loadgen_host = None

    # -- construction helpers -------------------------------------------------

    def _add_wired_host(self, name, host_ip):
        host = Host(
            self.sim, name, host_ip,
            MacAddress.from_index(int(host_ip) & 0xFFFF, oui=0x02CD00),
            self.wired_arp, gateway=AP_WIRED_IP,
            rng=self.sim.rng.stream(f"host:{name}"),
        )
        link = Link(self.sim, name=f"{name}-switch")
        host.nic.attach_link(link)
        self.switch.new_port(link)
        return host

    def add_phone(self, profile="nexus5", phone_ip=PHONE_IP, **phone_kwargs):
        """Attach an instrumented phone to the WLAN.

        ``profile`` is a profile key or a :class:`PhoneProfile`; extra
        keyword arguments go to :class:`~repro.phone.phone.Phone` (e.g.
        ``bus_sleep=False``, ``runtime='dalvik'``).
        """
        if not isinstance(profile, PhoneProfile):
            profile = phone_profile(profile)
        mac = MacAddress.from_index(0x100 + len(self.phones), oui=0x02EE00)
        phone = Phone(
            self.sim, profile, self.channel, self.ap, phone_ip, mac,
            **phone_kwargs,
        )
        self.phones.append(phone)
        return phone

    def start_cross_traffic(self, flows=10, rate_bps=2.5e6):
        """Congest the WLAN with the paper's iPerf workload.

        10 flows x 2.5 Mbps of UDP from a wireless load generator toward
        the wired load server (§4.3).
        """
        if self._loadgen_host is None:
            self._loadgen_host = WifiHost(
                self.sim, "loadgen", self.channel, self.ap, LOADGEN_IP,
                MacAddress.from_index(0x200, oui=0x02EE00),
                rng=self.sim.rng.stream("loadgen"),
            )
        self.load_generator = UdpLoadGenerator(
            self.sim, self._loadgen_host.stack, LOAD_SERVER_IP, LOAD_PORT,
            flows=flows, rate_bps=rate_bps,
            rng=self.sim.rng.stream("loadgen-pacing"),
        )
        self.load_generator.start()
        return self.load_generator

    def stop_cross_traffic(self):
        if self.load_generator is not None:
            self.load_generator.stop()

    # -- conveniences ----------------------------------------------------------

    @property
    def server_ip(self):
        return self.server_host.ip_addr

    def set_emulated_rtt(self, rtt):
        """Re-point the server-side netem delay (tc qdisc change)."""
        self.netem.delay = rtt

    def merged_capture(self):
        """The deduplicated multi-sniffer view of the channel."""
        return merge_records(*self.sniffers)

    def run(self, duration):
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def settle(self, duration=0.5):
        """Let associations/beacons settle before measuring."""
        return self.run(duration)

    def __repr__(self):
        return (
            f"<Testbed t={self.sim.now:.3f}s phones={len(self.phones)} "
            f"rtt={self.netem.delay * 1e3:.0f}ms>"
        )
