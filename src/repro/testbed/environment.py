"""The environment abstraction: one protocol, many radio technologies.

The paper closes with the claim that AcuteMon "can be easily extended to
cellular environment" (§4).  This module makes that claim structural:

* :class:`WiredCore` extracts the server-side plumbing every environment
  shares — switch, wired ARP domain, measurement server, and the
  ``tc netem`` emulated-RTT qdisc on the server's egress — so the WiFi
  :class:`~repro.testbed.topology.Testbed` and the cellular
  :class:`~repro.cellular.testbed.CellularTestbed` assemble the same
  wired half instead of hand-copying it.
* :class:`Environment` is the protocol both implement: ``sim``,
  ``server_ip``, ``attach_phone()``, ``settle()``, ``run()``,
  ``set_emulated_rtt()``, plus the observability hooks (``observe()``,
  ``metrics_snapshot()``) the campaign layer relies on.
* a registry maps environment *keys* (``wifi``, ``cellular-3g``,
  ``cellular-lte``) to builders, so scenarios, campaign grids, the
  parallel runner, and the CLI can all sweep environments by name.

Capabilities declare which scenario knobs an environment honours —
requesting cross traffic on a cellular cell is a validation error, not a
silent no-op.  See ``docs/ARCHITECTURE.md``.
"""

from repro.net.addresses import MacAddress, ip
from repro.net.arp import ArpTable
from repro.net.host import Host
from repro.net.link import Link
from repro.net.netem import NetemQdisc
from repro.net.servers import MeasurementServer
from repro.net.switch import Switch

#: The wired segment shared by every environment (Figure 2's right half).
WIRED_NET = "10.0.0.0/24"
GATEWAY_WIRED_IP = ip("10.0.0.1")
SERVER_IP = ip("10.0.0.2")

# -- capability flags ---------------------------------------------------------

#: The environment can congest its access network with iPerf-style load.
CAP_CROSS_TRAFFIC = "cross-traffic"
#: The measured phone has an SDIO bus whose sleep can be toggled.
CAP_BUS_SLEEP = "bus-sleep"
#: The access network runs 802.11 adaptive PSM.
CAP_PSM = "psm"
#: Monitor-mode sniffers observe the access network (dn ground truth).
CAP_SNIFFERS = "sniffers"
#: An RRC state machine (promotions/demotions) sits below the kernel.
CAP_RRC = "rrc"
#: Stations sleep on a negotiated TWT service-period schedule.
CAP_TWT = "twt"
#: Stations wake on predicted downlink arrivals (EAPS-style).
CAP_PREDICTIVE_SLEEP = "predictive-sleep"

#: Every capability tag an environment may declare.  Registration
#: rejects anything outside this set — a typoed tag would otherwise
#: silently disable the scenario knob it was meant to enable.
KNOWN_CAPABILITIES = frozenset({
    CAP_CROSS_TRAFFIC, CAP_BUS_SLEEP, CAP_PSM, CAP_SNIFFERS, CAP_RRC,
    CAP_TWT, CAP_PREDICTIVE_SLEEP,
})

WIFI_CAPABILITIES = frozenset(
    {CAP_CROSS_TRAFFIC, CAP_BUS_SLEEP, CAP_PSM, CAP_SNIFFERS})
CELLULAR_CAPABILITIES = frozenset({CAP_RRC})
TWT_CAPABILITIES = frozenset(
    {CAP_CROSS_TRAFFIC, CAP_BUS_SLEEP, CAP_SNIFFERS, CAP_TWT})
PREDICTIVE_SLEEP_CAPABILITIES = frozenset(
    {CAP_CROSS_TRAFFIC, CAP_BUS_SLEEP, CAP_SNIFFERS,
     CAP_PREDICTIVE_SLEEP})


class WiredCore:
    """Switch + ARP domain + measurement server behind a netem qdisc.

    The shared "right half" of every topology: the access-network
    gateway (WiFi AP or cell tower) plugs into a switch that also hosts
    the measurement server, whose egress carries the paper's emulated
    RTT ("introducing additional delays on the server side can be
    considered as controlling the length of the network path").
    """

    def __init__(self, sim, gateway_ip=GATEWAY_WIRED_IP, network=WIRED_NET):
        self.sim = sim
        self.gateway_ip = gateway_ip
        self.network = network
        self.arp = ArpTable()
        self.switch = Switch(sim)

    def connect_gateway(self, device, link_name, port_name="eth0"):
        """Plug the access gateway's wired port into the switch.

        ``device`` is anything with the AP/tower ``add_wired_port``
        contract (name, ip, network, arp_table, link=...).
        """
        link = Link(self.sim, name=link_name)
        device.add_wired_port(port_name, self.gateway_ip, self.network,
                              self.arp, link=link)
        self.switch.new_port(link)
        return link

    def add_host(self, name, host_ip):
        """A wired host on the switch, routed through the gateway."""
        host = Host(
            self.sim, name, host_ip,
            MacAddress.from_index(int(host_ip) & 0xFFFF, oui=0x02CD00),
            self.arp, gateway=self.gateway_ip,
            rng=self.sim.rng.stream(f"host:{name}"),
        )
        link = Link(self.sim, name=f"{name}-switch")
        host.nic.attach_link(link)
        self.switch.new_port(link)
        return host

    def add_measurement_server(self, server_ip=SERVER_IP, delay=0.0,
                               jitter=0.0, loss=0.0):
        """The measurement server with its emulated-RTT egress qdisc.

        Returns ``(host, server, netem)``.
        """
        host = self.add_host("server", server_ip)
        server = MeasurementServer(host)
        netem = NetemQdisc(
            self.sim, delay=delay, jitter=jitter, loss=loss,
            rng=self.sim.rng.stream("netem"), name="server-egress",
        )
        host.netem = netem
        return host, server, netem


class Environment:
    """The protocol every measurement environment implements.

    Subclasses (the WiFi ``Testbed``, the ``CellularTestbed``) build
    their access network and wired core in ``__init__`` and must
    provide ``sim``, ``server_host``, ``netem`` and ``phones``
    attributes plus :meth:`attach_phone`.  Everything the experiment /
    scenario / campaign layers call lives here, so runners never need
    to know which radio technology sits below the kernel.
    """

    # Not a test class, despite subclasses' names (silences pytest).
    __test__ = False

    #: Registry key, set by :func:`build_environment` on instances.
    key = None
    #: Scenario knobs this environment honours (capability flags above).
    capabilities = frozenset()

    def attach_phone(self, profile="nexus5", **phone_kwargs):
        """Attach an instrumented phone; returns the phone object."""
        raise NotImplementedError

    @property
    def server_ip(self):
        return self.server_host.ip_addr

    def set_emulated_rtt(self, rtt):
        """Re-point the server-side netem delay (tc qdisc change)."""
        self.netem.delay = rtt

    def run(self, duration):
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def settle(self, duration=0.5):
        """Let associations/attach procedures settle before measuring."""
        return self.run(duration)

    def start_cross_traffic(self, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not support cross traffic "
            f"(capability {CAP_CROSS_TRAFFIC!r} not declared)")

    def stop_cross_traffic(self):
        raise NotImplementedError(
            f"{type(self).__name__} does not support cross traffic")

    # -- observability hooks --------------------------------------------------

    def observe(self, trace=True, metrics=True, spans=True):
        """Enable this environment's recording facilities; returns self."""
        from repro.obs import enable_observability

        enable_observability(self.sim, trace=trace, metrics=metrics,
                             spans=spans)
        return self

    def metrics_snapshot(self, include_volatile=False):
        """Deterministic metrics dump (scheduler gauges refreshed first)."""
        from repro.obs import finalize_sim_metrics

        finalize_sim_metrics(self.sim)
        return self.sim.metrics.snapshot(include_volatile=include_volatile)


# -- registry -----------------------------------------------------------------


class EnvironmentEntry:
    """One registered environment: key, builder, docs, capabilities."""

    __slots__ = ("key", "builder", "description", "capabilities")

    def __init__(self, key, builder, description, capabilities):
        self.key = key
        self.builder = builder
        self.description = description
        self.capabilities = frozenset(capabilities)

    def __repr__(self):
        return f"<EnvironmentEntry {self.key!r}>"


#: Registry keyed by environment key; populated below and via
#: :func:`register_environment`.
ENVIRONMENTS = {}


def register_environment(key, builder, description="",
                         capabilities=frozenset()):
    """Register ``builder(seed=, emulated_rtt=, **env_params) -> env``.

    Re-registering a key replaces the entry (useful for tests and
    downstream extensions).  Returns the builder so it can be used as a
    decorator.

    ``capabilities`` must be tags from :data:`KNOWN_CAPABILITIES`, each
    at most once — unknown or duplicated tags raise ``ValueError``
    instead of registering an environment whose scenario knobs silently
    never match.
    """
    tags = list(capabilities)
    duplicates = sorted({tag for tag in tags if tags.count(tag) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate capability tags for environment {key!r}: "
            f"{duplicates}")
    unknown = sorted(set(tags) - KNOWN_CAPABILITIES)
    if unknown:
        raise ValueError(
            f"unknown capability tags for environment {key!r}: {unknown}; "
            f"known: {sorted(KNOWN_CAPABILITIES)}")
    ENVIRONMENTS[key] = EnvironmentEntry(key, builder, description,
                                         capabilities)
    return builder


def environment_entry(key):
    """Look up a registry entry; raises with the known keys on a miss."""
    try:
        return ENVIRONMENTS[key]
    except KeyError:
        raise KeyError(
            f"unknown environment {key!r}; known: {sorted(ENVIRONMENTS)}"
        ) from None


def environment_keys():
    """The registered environment keys, sorted."""
    return sorted(ENVIRONMENTS)


def build_environment(key, seed=0, emulated_rtt=0.0, **env_params):
    """Construct a registered environment; stamps ``env.key``."""
    entry = environment_entry(key)
    env = entry.builder(seed=seed, emulated_rtt=emulated_rtt, **env_params)
    env.key = key
    return env


# -- default environments -----------------------------------------------------
# Builders import lazily so this module stays import-cycle free (the
# testbed modules import the Environment base class from here).

#: RRC config fields an ``env_params`` dict may override (JSON scalars).
_RRC_OVERRIDABLE = ("t1", "t2", "fach_threshold", "dch_rate_bps",
                    "fach_rate_bps")


def _build_wifi(seed=0, emulated_rtt=0.0, **env_params):
    from repro.testbed.topology import Testbed

    return Testbed(seed=seed, emulated_rtt=emulated_rtt, **env_params)


def _build_twt(seed=0, emulated_rtt=0.0, **env_params):
    from repro.testbed.powersave import TwtTestbed

    return TwtTestbed(seed=seed, emulated_rtt=emulated_rtt, **env_params)


def _build_predictive_sleep(seed=0, emulated_rtt=0.0, **env_params):
    from repro.testbed.powersave import PredictiveSleepTestbed

    return PredictiveSleepTestbed(seed=seed, emulated_rtt=emulated_rtt,
                                  **env_params)


def _cellular_builder(rrc_preset):
    def build(seed=0, emulated_rtt=0.0, rrc_config=None, **env_params):
        from repro.cellular.rrc import RrcConfig
        from repro.cellular.testbed import CellularTestbed

        if rrc_config is None:
            rrc_config = getattr(RrcConfig, rrc_preset)()
            for field in _RRC_OVERRIDABLE:
                if field in env_params:
                    setattr(rrc_config, field, env_params.pop(field))
        return CellularTestbed(seed=seed, emulated_rtt=emulated_rtt,
                               rrc_config=rrc_config,
                               attach_default_phone=False, **env_params)

    return build


register_environment(
    "wifi", _build_wifi,
    description="Figure 2 WLAN: DCF channel, AP with adaptive PSM, "
                "SDIO bus-sleep phones, three monitor-mode sniffers",
    capabilities=WIFI_CAPABILITIES,
)
register_environment(
    "wifi-twt", _build_twt,
    description="The WLAN with TWT-scheduled phones: service-period "
                "wakes on a drifting local clock, beacon resyncs, "
                "missed-SP recovery (802.11ax-flavoured)",
    capabilities=TWT_CAPABILITIES,
)
register_environment(
    "wifi-predictive-sleep", _build_predictive_sleep,
    description="The WLAN with predictive-sleep phones: EAPS-style "
                "EWMA wake prediction, mispredict penalty path, "
                "hard fallback-timeout wake cap",
    capabilities=PREDICTIVE_SLEEP_CAPABILITIES,
)
register_environment(
    "cellular-3g", _cellular_builder("umts_3g"),
    description="3G/UMTS cell: IDLE/FACH/DCH RRC machine with "
                "seconds-scale promotions (paper §4 extension)",
    capabilities=CELLULAR_CAPABILITIES,
)
register_environment(
    "cellular-lte", _cellular_builder("lte"),
    description="LTE-flavoured cell: ~100 ms promotions, short-DRX "
                "tail — the same RRC inflation, an order gentler",
    capabilities=CELLULAR_CAPABILITIES,
)
