"""Experiment runners.

Each function builds a fresh deterministic testbed, runs one experiment
cell, and returns the layered measurements — these are the building
blocks of every table/figure benchmark and of the integration tests.
"""

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.core.overhead import decompose
from repro.obs import enable_observability, finalize_sim_metrics
from repro.tools.httping import HttpingTool
from repro.tools.javaping import JavaPingTool
from repro.tools.mobiperf import MobiPerfTool
from repro.tools.ping import PingTool
from repro.tools.ping2 import Ping2Tool
from repro.testbed.topology import Testbed


class ExperimentResult:
    """Everything one experiment cell produced."""

    def __init__(self, testbed, phone, collector, samples):
        self.testbed = testbed
        self.phone = phone
        self.collector = collector
        self.samples = samples
        self.layers = collector.layered_rtts()
        self.overheads = decompose(collector.completed())

    @property
    def user_rtts(self):
        """RTTs as reported by the tool (seconds)."""
        return [s.rtt for s in self.samples if s.rtt is not None]

    @property
    def spans(self):
        """The cell's recorded spans (empty unless built with observe)."""
        return self.testbed.sim.spans

    def metrics_snapshot(self, include_volatile=False):
        """Deterministic metrics dump (scheduler gauges refreshed first)."""
        sim = self.testbed.sim
        finalize_sim_metrics(sim)
        return sim.metrics.snapshot(include_volatile=include_volatile)

    def __repr__(self):
        return f"<ExperimentResult probes={len(self.samples)}>"


def _build(phone_key, emulated_rtt, seed, cross_traffic=False,
           settle=1.0, observe=False, **phone_kwargs):
    testbed = Testbed(seed=seed, emulated_rtt=emulated_rtt)
    if observe:
        enable_observability(testbed.sim)
    phone = testbed.add_phone(phone_key, **phone_kwargs)
    collector = ProbeCollector(phone)
    if cross_traffic:
        testbed.start_cross_traffic()
    testbed.settle(settle)
    return testbed, phone, collector


def ping_experiment(phone_key="nexus5", emulated_rtt=30e-3, interval=1.0,
                    count=100, seed=0, bus_sleep=True, cross_traffic=False,
                    timeout=1.0, observe=False):
    """The §3.1 root-cause experiment: multi-layer ping measurement.

    Returns an :class:`ExperimentResult` whose ``layers`` dict holds the
    du/dk/dv/dn series of Table 2 and whose phone's driver ``samples``
    hold the dvsend/dvrecv instrumentation of Table 3.
    """
    testbed, phone, collector = _build(
        phone_key, emulated_rtt, seed, cross_traffic=cross_traffic,
        bus_sleep=bus_sleep, observe=observe,
    )
    phone.driver.clear_samples()
    tool = PingTool(phone, collector, testbed.server_ip, interval=interval,
                    timeout=timeout)
    samples = tool.run_sync(count)
    return ExperimentResult(testbed, phone, collector, samples)


def acutemon_experiment(phone_key="nexus5", emulated_rtt=30e-3, count=100,
                        seed=0, config=None, cross_traffic=False,
                        bus_sleep=True, observe=False, **config_kwargs):
    """One AcuteMon run (§4.2): warm-up + background + K probes."""
    testbed, phone, collector = _build(
        phone_key, emulated_rtt, seed, cross_traffic=cross_traffic,
        bus_sleep=bus_sleep, observe=observe,
    )
    if config is None:
        config = AcuteMonConfig(probe_count=count, **config_kwargs)
    monitor = AcuteMon(phone, collector, testbed.server_ip, config=config)
    done = []
    monitor.start(on_complete=lambda results: done.append(results))
    while not done:
        if not testbed.sim.step():
            raise RuntimeError("AcuteMon stalled: event heap empty")
    result = ExperimentResult(testbed, phone, collector, monitor.results)
    result.acutemon = monitor
    return result


TOOL_BUILDERS = {
    "acutemon": None,  # handled by acutemon_experiment
    "ping": lambda phone, coll, ip_addr, interval: PingTool(
        phone, coll, ip_addr, interval=interval),
    "httping": lambda phone, coll, ip_addr, interval: HttpingTool(
        phone, coll, ip_addr, interval=interval),
    "javaping": lambda phone, coll, ip_addr, interval: JavaPingTool(
        phone, coll, ip_addr, interval=interval),
    "mobiperf": lambda phone, coll, ip_addr, interval: MobiPerfTool(
        phone, coll, ip_addr, interval=interval),
}


def tool_experiment(tool_name, phone_key="nexus5", emulated_rtt=30e-3,
                    count=100, seed=0, cross_traffic=False, interval=1.0,
                    observe=False):
    """Run one tool (any of :data:`TOOL_BUILDERS`) in a fresh testbed.

    Returns an :class:`ExperimentResult`; for non-AcuteMon tools its
    ``layers`` stay meaningful only where the tool's probes traverse the
    instrumented stack.  Pass ``observe=True`` to attach the metrics
    registry, span tracker and trace recorder to the cell's simulator.
    """
    if tool_name == "acutemon":
        return acutemon_experiment(
            phone_key, emulated_rtt, count=count, seed=seed,
            cross_traffic=cross_traffic, observe=observe,
        )
    try:
        builder = TOOL_BUILDERS[tool_name]
    except KeyError:
        raise ValueError(f"unknown tool {tool_name!r}; "
                         f"known: {sorted(TOOL_BUILDERS)}") from None
    testbed, phone, collector = _build(
        phone_key, emulated_rtt, seed, cross_traffic=cross_traffic,
        observe=observe)
    tool = builder(phone, collector, testbed.server_ip, interval)
    samples = tool.run_sync(count)
    result = ExperimentResult(testbed, phone, collector, samples)
    result.tool = tool
    return result


def tool_comparison(phone_key="nexus5", emulated_rtt=30e-3, count=100,
                    seed=0, cross_traffic=False, interval=1.0,
                    tools=("acutemon", "httping", "ping", "javaping")):
    """The §4.3 comparison: RTT distributions per tool.

    Each tool runs in its own fresh testbed (tools would otherwise keep
    each other's phone awake).  Returns ``{tool_name: [rtt_seconds]}``.
    """
    results = {}
    for index, tool_name in enumerate(tools):
        tool_seed = seed + index * 1000
        result = tool_experiment(
            tool_name, phone_key, emulated_rtt, count=count, seed=tool_seed,
            cross_traffic=cross_traffic, interval=interval,
        )
        results[tool_name] = result.user_rtts
    return results


def ping2_experiment(phone_key="nexus5", emulated_rtt=30e-3, count=100,
                     seed=0, interval=1.0, observe=False):
    """Sui et al.'s server-side double ping against an idle phone."""
    testbed, phone, _collector = _build(phone_key, emulated_rtt, seed,
                                        observe=observe)
    tool = Ping2Tool(testbed.server_host, phone.ip_addr, interval=interval)
    tool.run_sync(count)
    return tool, testbed
