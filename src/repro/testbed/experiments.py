"""Experiment runners.

Each function maps its keyword arguments onto one
:class:`~repro.testbed.scenario.ScenarioSpec`, executes it, and returns
an :class:`ExperimentResult` — these are the building blocks of every
table/figure benchmark and of the integration tests.  The spec layer is
the single source of truth for cell construction (environment, phone,
tool, settle ordering); these wrappers only exist for call-site
ergonomics and historical signatures.
"""

from repro.core.acutemon import AcuteMon
from repro.core.overhead import decompose
from repro.obs import attribute_probes, finalize_sim_metrics
from repro.testbed.scenario import ScenarioSpec, run_scenario


class ExperimentResult:
    """Everything one experiment cell produced."""

    def __init__(self, testbed, phone, collector, samples):
        self.testbed = testbed
        self.phone = phone
        self.collector = collector
        self.samples = samples
        self.layers = collector.layered_rtts()
        self.overheads = decompose(collector.completed())
        self.tool = None
        self.spec = None
        self.acutemon = None
        # Causal delay decomposition (docs/OBSERVABILITY.md): in observed
        # cells, split each probe's RTT into mechanism components from
        # the recorded spans and aggregate them into the metrics
        # registry, where they ride the ordinary snapshot/merge pipeline.
        sim = testbed.sim
        self.attributions = []
        if sim.spans.enabled:
            self.attributions = attribute_probes(
                collector, sim.spans,
                metrics=sim.metrics if sim.metrics.enabled else None)

    @property
    def user_rtts(self):
        """RTTs as reported by the tool (seconds)."""
        return [s.rtt for s in self.samples if s.rtt is not None]

    @property
    def spans(self):
        """The cell's recorded spans (empty unless built with observe)."""
        return self.testbed.sim.spans

    def metrics_snapshot(self, include_volatile=False):
        """Deterministic metrics dump (scheduler gauges refreshed first)."""
        sim = self.testbed.sim
        finalize_sim_metrics(sim)
        return sim.metrics.snapshot(include_volatile=include_volatile)

    def __repr__(self):
        return f"<ExperimentResult probes={len(self.samples)}>"


def ping_experiment(phone_key="nexus5", emulated_rtt=30e-3, interval=1.0,
                    count=100, seed=0, bus_sleep=True, cross_traffic=False,
                    timeout=1.0, observe=False):
    """The §3.1 root-cause experiment: multi-layer ping measurement.

    Returns an :class:`ExperimentResult` whose ``layers`` dict holds the
    du/dk/dv/dn series of Table 2 and whose phone's driver ``samples``
    hold the dvsend/dvrecv instrumentation of Table 3.
    """
    spec = ScenarioSpec(
        phone=phone_key, tool="ping", emulated_rtt=emulated_rtt,
        count=count, interval=interval, seed=seed,
        cross_traffic=cross_traffic, bus_sleep=bus_sleep, observe=observe,
        tool_params={"timeout": timeout},
    )
    env, phone, collector = spec.build()
    phone.driver.clear_samples()
    return spec.execute(env, phone, collector)


def acutemon_experiment(phone_key="nexus5", emulated_rtt=30e-3, count=100,
                        seed=0, config=None, cross_traffic=False,
                        bus_sleep=True, observe=False, **config_kwargs):
    """One AcuteMon run (§4.2): warm-up + background + K probes.

    ``config_kwargs`` map onto :class:`AcuteMonConfig`; alternatively
    pass a prebuilt ``config`` object (which then wins outright).
    """
    spec = ScenarioSpec(
        phone=phone_key, tool="acutemon", emulated_rtt=emulated_rtt,
        count=count, seed=seed, cross_traffic=cross_traffic,
        bus_sleep=bus_sleep, observe=observe,
        tool_params=config_kwargs if config is None else {},
    )
    if config is None:
        return run_scenario(spec)
    env, phone, collector = spec.build()
    monitor = AcuteMon(phone, collector, env.server_ip, config=config)
    samples = monitor.run_sync()
    result = ExperimentResult(env, phone, collector, samples)
    result.tool = monitor
    result.acutemon = monitor
    result.spec = spec
    return result


def tool_experiment(tool_name, phone_key="nexus5", emulated_rtt=30e-3,
                    count=100, seed=0, cross_traffic=False, interval=1.0,
                    observe=False, env="wifi", tool_params=None):
    """Run one registered tool (see :data:`~repro.testbed.scenario.TOOLS`)
    in a fresh environment.

    Returns an :class:`ExperimentResult`; for non-AcuteMon tools its
    ``layers`` stay meaningful only where the tool's probes traverse the
    instrumented stack.  Pass ``observe=True`` to attach the metrics
    registry, span tracker and trace recorder to the cell's simulator.
    """
    spec = ScenarioSpec(
        env=env, phone=phone_key, tool=tool_name, emulated_rtt=emulated_rtt,
        count=count, interval=interval, seed=seed,
        cross_traffic=cross_traffic, observe=observe,
        tool_params=tool_params,
    )
    return run_scenario(spec)


def tool_comparison(phone_key="nexus5", emulated_rtt=30e-3, count=100,
                    seed=0, cross_traffic=False, interval=1.0,
                    tools=("acutemon", "httping", "ping", "javaping")):
    """The §4.3 comparison: RTT distributions per tool.

    Each tool runs in its own fresh testbed (tools would otherwise keep
    each other's phone awake).  Returns ``{tool_name: [rtt_seconds]}``.
    """
    results = {}
    for index, tool_name in enumerate(tools):
        tool_seed = seed + index * 1000
        result = tool_experiment(
            tool_name, phone_key, emulated_rtt, count=count, seed=tool_seed,
            cross_traffic=cross_traffic, interval=interval,
        )
        results[tool_name] = result.user_rtts
    return results


def ping2_experiment(phone_key="nexus5", emulated_rtt=30e-3, count=100,
                     seed=0, interval=1.0, observe=False):
    """Sui et al.'s server-side double ping against an idle phone.

    Returns an :class:`ExperimentResult` like every other runner; the
    :class:`~repro.tools.ping2.Ping2Tool` itself (with its
    ``first_ping_rtts``) is on ``result.tool``.
    """
    spec = ScenarioSpec(
        phone=phone_key, tool="ping2", emulated_rtt=emulated_rtt,
        count=count, interval=interval, seed=seed, observe=observe,
    )
    return run_scenario(spec)
