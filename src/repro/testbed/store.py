"""Persistent content-addressed result store: memoization as a service.

The checkpoint journal (:mod:`repro.testbed.resilience`) makes one
campaign resumable; this module makes every campaign — past or future,
across processes — reuse cells any earlier run already computed.  The
:class:`ResultStore` maps a cell's content address
(:meth:`~repro.testbed.scenario.ScenarioSpec.fingerprint`) to its
serialized :class:`~repro.testbed.campaign.CellResult` payload, metrics
snapshot included, so a cache-warm sweep re-emits every cell
byte-identically without executing anything.

On-disk layout (``docs/FABRIC.md``)::

    <root>/
      segments/seg-<writer>-<n>.jsonl   # append-only record files
      index.jsonl                       # rebuildable locator accelerator

Each segment line is one record,
``{"v": 1, "fingerprint": "<sha256>", "result": {...}}`` — the same
payload shape the journal and the worker protocol use — written through
:func:`~repro.testbed.resilience.append_journal_record` (one ``write``
+ ``flush``), so a crash can only tear a segment's final line.  Every
writer appends to its **own** segment (the name embeds the writer id),
which is what makes concurrent ``put`` from several processes safe:
no two processes ever share an append handle.  The index is a pure
accelerator mapping fingerprints to segment names; it is rebuilt from
the segments whenever it is missing or disagrees with them, so deleting
or corrupting ``index.jsonl`` costs a rescan, never data.

Reads are *tolerant* where the journal's are strict: a store accretes
segments from many runs and machines, so an unparseable or
wrong-version line is skipped (and counted in :meth:`stats`) rather
than truncating everything after it — a corrupted record simply misses
the cache and the cell re-executes.  Later records win on duplicate
fingerprints.  :meth:`gc` compacts the live records into one fresh
segment and drops stale-version and superseded duplicates.

Lint rule ``RL107`` keeps this module (and the journal's) the only
place that opens store/journal files directly; everything else goes
through the classes.
"""

import json
import os
import pathlib

from repro.testbed.resilience import append_journal_record

#: Store record schema version; bumped if the record shape changes.
#: Records stamped with any other version are skipped, not crashed on,
#: so a store written by a newer schema degrades to cache misses.
STORE_VERSION = 1

_SEGMENT_DIR = "segments"
_INDEX_NAME = "index.jsonl"

#: Per-process counter so two stores opened by one process get distinct
#: segment names (the writer id embeds the pid for cross-process
#: uniqueness; no wall clock involved, so naming stays deterministic
#: for a given process history).
_WRITER_SEQ = [0]


def _parse_record(line):
    """One segment/index line as a dict, or ``None`` if unusable."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class ResultStore:
    """Content-addressed cache of completed campaign cells.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).
    durable:
        ``fsync`` each appended record — survives power loss at a disk
        round-trip per cell; the default (``flush`` only) survives
        process crashes.
    """

    __slots__ = ("root", "durable", "_index", "_segment_cache",
                 "_handle", "_segment_name", "_skipped")

    def __init__(self, root, durable=False):
        self.root = pathlib.Path(root)
        self.durable = durable
        self._index = None  # fingerprint -> segment name
        self._segment_cache = {}  # segment name -> {fingerprint: payload}
        self._handle = None
        self._segment_name = None
        self._skipped = 0

    @classmethod
    def ensure(cls, store):
        """Coerce a path (or ``None``/instance) to a store instance."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    # -- paths ---------------------------------------------------------------

    @property
    def segment_dir(self):
        return self.root / _SEGMENT_DIR

    @property
    def index_path(self):
        return self.root / _INDEX_NAME

    def segment_names(self):
        """Every segment file name, sorted (deterministic scan order)."""
        try:
            names = [entry.name for entry in self.segment_dir.iterdir()
                     if entry.name.endswith(".jsonl")]
        except OSError:
            return []
        return sorted(names)

    # -- reading -------------------------------------------------------------

    def _scan_segment(self, name):
        """``{fingerprint: payload}`` for one segment; bad lines skipped."""
        cached = self._segment_cache.get(name)
        if cached is not None:
            return cached
        records = {}
        try:
            text = (self.segment_dir / name).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            text = ""
        for line in text.split("\n"):
            if not line:
                continue
            record = _parse_record(line)
            if (record is None
                    or record.get("v") != STORE_VERSION
                    or not isinstance(record.get("fingerprint"), str)
                    or not isinstance(record.get("result"), dict)):
                self._skipped += 1
                continue
            records[record["fingerprint"]] = record["result"]
        self._segment_cache[name] = records
        return records

    def _load_index_file(self):
        """The index accelerator as ``{fingerprint: segment}``, or None."""
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
        index = {}
        for line in text.split("\n"):
            if not line:
                continue
            record = _parse_record(line)
            if (record is None or record.get("v") != STORE_VERSION
                    or not isinstance(record.get("fingerprint"), str)
                    or not isinstance(record.get("segment"), str)):
                continue  # a torn or foreign line costs one entry, not all
            index[record["fingerprint"]] = record["segment"]
        return index

    def _rebuild_index(self):
        """Authoritative index from a full segment scan (later seg wins)."""
        index = {}
        for name in self.segment_names():
            for fingerprint in self._scan_segment(name):
                index[fingerprint] = name
        return index

    def _ensure_index(self):
        if self._index is None:
            self._index = self._load_index_file()
            if self._index is None:
                self._index = self._rebuild_index()
        return self._index

    def contains(self, fingerprint):
        """Whether the store holds a result for this content address."""
        return self.get(fingerprint) is not None

    def get(self, fingerprint):
        """The cached result payload for ``fingerprint``, or ``None``.

        The index is an accelerator, not an authority: an entry whose
        segment no longer yields the record (corruption, a foreign
        index line) triggers one authoritative rescan before giving up.
        """
        index = self._ensure_index()
        segment = index.get(fingerprint)
        if segment is not None:
            payload = self._scan_segment(segment).get(fingerprint)
            if payload is not None:
                return payload
        # Index miss or stale entry: rescan once, then trust the result.
        rebuilt = self._rebuild_index()
        if rebuilt != index:
            self._index = rebuilt
            segment = rebuilt.get(fingerprint)
            if segment is not None:
                return self._scan_segment(segment).get(fingerprint)
        return None

    # -- writing -------------------------------------------------------------

    def open(self):
        """Open a private segment for appending; returns self."""
        if self._handle is None:
            self.segment_dir.mkdir(parents=True, exist_ok=True)
            _WRITER_SEQ[0] += 1
            # Zero-padded so lexicographic segment order == creation
            # order for one writer (the rebuild scan relies on it).
            name = f"seg-{os.getpid()}-{_WRITER_SEQ[0]:08d}.jsonl"
            self._segment_name = name
            self._handle = (self.segment_dir / name).open(
                "a", encoding="utf-8")
        return self

    def put(self, fingerprint, result):
        """Store one completed cell under its content address.

        ``result`` is a :class:`~repro.testbed.campaign.CellResult` (or
        anything with ``to_dict()``).  Opens the writer segment on first
        use; one record is one flushed line, and the index append is a
        separate single flushed line (atomic for same-process readers,
        tolerated if torn by the index loader).
        """
        if self._handle is None:
            self.open()
        payload = result.to_dict()
        append_journal_record(self._handle, {
            "v": STORE_VERSION, "fingerprint": fingerprint,
            "result": payload,
        })
        if self.durable:
            os.fsync(self._handle.fileno())
        with self.index_path.open("a", encoding="utf-8") as index_handle:
            append_journal_record(index_handle, {
                "v": STORE_VERSION, "fingerprint": fingerprint,
                "segment": self._segment_name,
            })
        self._ensure_index()[fingerprint] = self._segment_name
        self._segment_cache.setdefault(self._segment_name,
                                       {})[fingerprint] = payload
        return fingerprint

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self.open()

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # -- maintenance ---------------------------------------------------------

    def gc(self):
        """Compact live records into one fresh segment.

        Drops superseded duplicates and records whose schema version is
        not :data:`STORE_VERSION`, rewrites the index to match, and
        removes the old segments.  Safe to run on a store nobody is
        writing; returns a summary dict
        (``live``/``removed_segments``/``dropped`` counts).
        """
        self.close()
        old_names = self.segment_names()
        self._segment_cache.clear()
        self._skipped = 0
        live = {}
        total_records = 0
        for name in old_names:
            scanned = self._scan_segment(name)
            total_records += len(scanned)
            live.update(scanned)
        dropped = self._skipped + (total_records - len(live))
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        _WRITER_SEQ[0] += 1
        compacted = f"seg-{os.getpid()}-{_WRITER_SEQ[0]:08d}-gc.jsonl"
        with (self.segment_dir / compacted).open(
                "a", encoding="utf-8") as handle:
            for fingerprint in sorted(live):
                append_journal_record(handle, {
                    "v": STORE_VERSION, "fingerprint": fingerprint,
                    "result": live[fingerprint],
                })
        with self.index_path.open("w", encoding="utf-8") as index_handle:
            for fingerprint in sorted(live):
                append_journal_record(index_handle, {
                    "v": STORE_VERSION, "fingerprint": fingerprint,
                    "segment": compacted,
                })
        for name in old_names:
            try:
                (self.segment_dir / name).unlink()
            except OSError:
                pass
        self._segment_cache = {compacted: live}
        self._index = {fingerprint: compacted for fingerprint in live}
        self._skipped = 0
        return {"live": len(live), "removed_segments": len(old_names),
                "dropped": dropped}

    def stats(self):
        """Occupancy summary: segments, records, live entries, bytes."""
        self._segment_cache.clear()
        self._skipped = 0
        names = self.segment_names()
        total_records = 0
        total_bytes = 0
        live = {}
        for name in names:
            scanned = self._scan_segment(name)
            total_records += len(scanned)
            live.update(scanned)
            try:
                total_bytes += (self.segment_dir / name).stat().st_size
            except OSError:
                pass
        return {
            "path": str(self.root),
            "segments": len(names),
            "records": total_records,
            "live": len(live),
            "skipped": self._skipped,
            "bytes": total_bytes,
        }

    def __repr__(self):
        state = "open" if self._handle is not None else "closed"
        return f"<ResultStore {self.root} {state}>"
