#!/usr/bin/env python3
"""Gate BENCH_simulator.json against its recorded performance baseline.

``tests/test_perf_smoke.py`` writes the measured rates plus a
``seed_baseline`` block (the same workload shapes run against the
growth-seed commit).  This script diffs the two and fails when any
gated metric — a metric with a baseline entry — regressed more than
the threshold below its baseline, so a perf regression blocks CI the
same way a test failure does.

Usage::

    python scripts/bench_compare.py [--bench PATH] [--against PATH]
                                    [--threshold PCT]

``--against`` swaps the baseline source for another bench JSON (e.g. a
file saved from the previous release) instead of the embedded
``seed_baseline``; the gated-metric set is still taken from the current
file's ``seed_baseline`` keys so the contract stays declared in one
place.  Exit codes: 0 pass, 1 regression (or missing metric), 2 bad
input.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_BENCH = REPO_ROOT / "BENCH_simulator.json"


def load_bench(path):
    try:
        return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")


def compare(bench, baseline, threshold_pct):
    """Yield (metric, baseline, current, delta_pct, regressed) rows."""
    for metric in sorted(baseline):
        reference = float(baseline[metric])
        current = bench.get(metric)
        if current is None:
            yield metric, reference, None, None, True
            continue
        current = float(current)
        delta_pct = ((current - reference) / reference * 100.0
                     if reference else float("inf"))
        regressed = current < reference * (1.0 - threshold_pct / 100.0)
        yield metric, reference, current, delta_pct, regressed


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default=str(DEFAULT_BENCH),
                        metavar="PATH",
                        help="bench JSON to check (default: repo root)")
    parser.add_argument("--against", default=None, metavar="PATH",
                        help="take baseline values from another bench "
                             "JSON instead of the embedded seed_baseline")
    parser.add_argument("--threshold", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed regression below baseline "
                             "(default 10%%)")
    args = parser.parse_args(argv)

    bench = load_bench(args.bench)
    gated = bench.get("seed_baseline")
    if not isinstance(gated, dict) or not gated:
        print(f"bench_compare: {args.bench} has no seed_baseline block")
        return 2
    baseline = dict(gated)
    if args.against:
        against = load_bench(args.against)
        baseline = {metric: against[metric] for metric in gated
                    if metric in against}
        missing = sorted(set(gated) - set(baseline))
        if missing:
            print(f"bench_compare: {args.against} lacks gated "
                  f"metric(s): {', '.join(missing)}")
            return 2

    failures = 0
    width = max(len(metric) for metric in baseline)
    for metric, reference, current, delta_pct, regressed in compare(
            bench, baseline, args.threshold):
        if current is None:
            print(f"FAIL {metric:<{width}}  missing from {args.bench}")
            failures += 1
            continue
        verdict = "FAIL" if regressed else "ok  "
        print(f"{verdict} {metric:<{width}}  baseline {reference:>14,.1f}"
              f"  current {current:>14,.1f}  ({delta_pct:+.1f}%)")
        failures += regressed
    if failures:
        print(f"bench_compare: {failures} gated metric(s) regressed "
              f"more than {args.threshold:g}% below baseline")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
