#!/usr/bin/env python3
"""Lint: every registered environment and tool must actually work.

A registry entry that imports but cannot build is a landmine: it passes
``import repro`` yet detonates mid-campaign, possibly hours into a
sweep.  This script builds every registered environment, checks it
against the :class:`~repro.testbed.environment.Environment` protocol,
attaches a phone, and round-trips a :class:`ScenarioSpec` naming it;
every registered tool must expose a non-``None`` builder, construct on
a live WiFi cell, and answer ``run_sync`` — the contract the scenario
executor drives.  Registering a tool with a ``None`` builder (the old
``TOOL_BUILDERS["acutemon"] = None`` special case) is exactly what this
lint exists to reject.

Wired into tier-1 by ``tests/test_registry_lint.py``; also runnable
directly: ``python scripts/check_registries.py``.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Attributes/methods the Environment protocol promises to every layer
#: above it (scenario build, campaign cells, CLI).
PROTOCOL_ATTRS = ("sim", "server_ip", "server_host", "attach_phone",
                  "settle", "run", "set_emulated_rtt", "observe",
                  "metrics_snapshot")


def check_environments():
    """Build every registered environment; return problem strings."""
    from repro.testbed.environment import ENVIRONMENTS, build_environment
    from repro.testbed.scenario import ScenarioSpec

    problems = []
    for key, entry in sorted(ENVIRONMENTS.items()):
        if entry.builder is None:
            problems.append(f"environment {key!r}: builder is None")
            continue
        try:
            env = build_environment(key, seed=0)
        except Exception as exc:  # noqa: BLE001 - lint reports, not raises
            problems.append(f"environment {key!r}: build failed: {exc!r}")
            continue
        for attr in PROTOCOL_ATTRS:
            if not hasattr(env, attr):
                problems.append(
                    f"environment {key!r}: missing protocol attr {attr!r}")
        if env.key != key:
            problems.append(
                f"environment {key!r}: instance reports key {env.key!r}")
        if env.capabilities != entry.capabilities:
            problems.append(
                f"environment {key!r}: instance capabilities "
                f"{sorted(env.capabilities)} != registry "
                f"{sorted(entry.capabilities)}")
        try:
            env.attach_phone("nexus5")
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"environment {key!r}: attach_phone failed: {exc!r}")
        try:
            spec = ScenarioSpec(env=key)
            if ScenarioSpec.from_json(spec.to_json()) != spec:
                problems.append(
                    f"environment {key!r}: spec JSON round-trip not "
                    "equal")
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"environment {key!r}: spec round-trip failed: {exc!r}")
    return problems


def check_tools():
    """Construct every registered tool on a WiFi cell; return problems."""
    from repro.core.measurement import ProbeCollector
    from repro.testbed.environment import build_environment
    from repro.testbed.scenario import TOOLS, ScenarioSpec

    problems = []
    env = build_environment("wifi", seed=0)
    phone = env.attach_phone("nexus5")
    collector = ProbeCollector(phone)
    for key, entry in sorted(TOOLS.items()):
        if entry.builder is None:
            problems.append(f"tool {key!r}: builder is None (register a "
                            "real builder; None placeholders are banned)")
            continue
        if entry.side not in ("phone", "server"):
            problems.append(f"tool {key!r}: unknown side {entry.side!r}")
        try:
            spec = ScenarioSpec(tool=key, count=1)
            if ScenarioSpec.from_json(spec.to_json()) != spec:
                problems.append(
                    f"tool {key!r}: spec JSON round-trip not equal")
        except Exception as exc:  # noqa: BLE001
            problems.append(f"tool {key!r}: spec round-trip failed: {exc!r}")
            continue
        try:
            tool = entry.build(spec, env, phone, collector)
        except Exception as exc:  # noqa: BLE001
            problems.append(f"tool {key!r}: builder failed: {exc!r}")
            continue
        if not callable(getattr(tool, "run_sync", None)):
            problems.append(
                f"tool {key!r}: built object has no run_sync()")
    return problems


def check_registries():
    """All registry problems, environments first."""
    return check_environments() + check_tools()


def main(argv=None):
    del argv
    problems = check_registries()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} registry problem(s)")
        return 1
    print("registries clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
