#!/usr/bin/env python3
"""Lint wrapper: every registered environment and tool must actually work.

The actual checks live in :mod:`repro.lint.rules_registry` — rule
``RL301`` on the :mod:`repro.lint` engine — so this script,
``repro lint`` and ``scripts/lint_all.py`` share one source of truth.
A registry entry that imports but cannot build is a landmine: it passes
``import repro`` yet detonates mid-campaign, possibly hours into a
sweep; registering a tool with a ``None`` builder (the old
``TOOL_BUILDERS["acutemon"] = None`` special case) is exactly what this
lint exists to reject.

Kept as a standalone entry point; wired into tier-1 by
``tests/test_registry_lint.py``.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lint.rules_registry import (  # noqa: E402,F401
    PROTOCOL_ATTRS, environment_problems, tool_problems,
)


def check_environments():
    """Build every registered environment; return problem strings."""
    return environment_problems()


def check_tools():
    """Construct every registered tool on a WiFi cell; return problems."""
    return tool_problems()


def check_registries():
    """All registry problems, environments first."""
    return check_environments() + check_tools()


def main(argv=None):
    del argv
    problems = check_registries()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} registry problem(s)")
        return 1
    print("registries clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
