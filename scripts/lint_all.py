#!/usr/bin/env python3
"""One-shot lint runner: the full engine plus both legacy wrappers.

Runs ``repro.lint`` with every registered rule over ``src/`` (the same
thing ``repro lint`` does), then the two legacy entry points —
``check_trace_guards.py`` and ``check_registries.py`` — so a CI job
gets one command and one exit code, and any drift between the engine
and its wrappers shows up as a verdict mismatch here.

Usage::

    python scripts/lint_all.py [--format text|json|sarif] [--baseline PATH]
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
SCRIPTS = REPO_ROOT / "scripts"
for entry in (str(SRC), str(SCRIPTS)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import check_registries  # noqa: E402
import check_trace_guards  # noqa: E402
from repro.lint import load_baseline, render, run_lint  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="engine report format (default text)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="JSON baseline of grandfathered findings")
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline) if args.baseline else None
    result = run_lint(SRC, baseline=baseline)
    print(render(result, args.format))

    # The wrappers run the same rules; they are re-executed here so a
    # wrapper/engine verdict mismatch fails loudly instead of rotting.
    trace_code = check_trace_guards.main([str(SRC)])
    registry_code = check_registries.main([])
    if bool(trace_code) != any(f.rule_id in ("RL001", "RL002")
                               for f in result.findings):
        print("verdict mismatch: check_trace_guards.py disagrees with "
              "the engine's RL001/RL002 findings")
        return 2
    if bool(registry_code) != any(f.rule_id == "RL301"
                                  for f in result.findings):
        print("verdict mismatch: check_registries.py disagrees with "
              "the engine's RL301 findings")
        return 2
    return 1 if (result.exit_code or trace_code or registry_code) else 0


if __name__ == "__main__":
    sys.exit(main())
