#!/usr/bin/env python3
"""Lint: every observability call site in ``src/`` must be guarded.

Instrumentation follows the ``if sim.metrics.enabled:`` idiom so the
disabled path costs exactly one attribute check (see
``docs/OBSERVABILITY.md``).  This script exits non-zero when a
``trace.record(`` / ``metrics.inc(`` / ``spans.record(`` … call site has
no ``(trace|metrics|spans).enabled`` check on the same line or within
the preceding ``GUARD_WINDOW`` lines.

A call site whose guard lives in its (sole) caller is marked with the
pragma comment ``# obs: caller-guarded`` and skipped.  The
``repro/obs/`` package itself is excluded: it implements the recorders,
so its internals run under the recorders' own ``enabled`` checks.

Wired into tier-1 by ``tests/test_trace_guard_lint.py``.
"""

import pathlib
import re
import sys

#: How many lines above a call site may hold its ``.enabled`` guard.
GUARD_WINDOW = 6

PRAGMA = "# obs: caller-guarded"

#: Observability call sites: the recorder attribute plus a recording
#: method.  Matches ``sim.trace.record(...)``, ``self.metrics.inc(...)``
#: and the like; plain method *definitions* never match.
CALL_RE = re.compile(
    r"\b(?:trace\.record"
    r"|metrics\.(?:inc|observe|set_gauge|counter|gauge|histogram)"
    r"|spans\.(?:record|begin|end))\("
)

#: A guard is a check of the recorder's ``enabled`` flag specifically —
#: other ``.enabled`` attributes (e.g. a PSM config) do not count.
GUARD_RE = re.compile(r"\b(?:trace|metrics|spans)\.enabled\b")

_EXCLUDED = ("repro", "obs")


def _excluded(path, src_root):
    parts = path.relative_to(src_root).parts
    return parts[: len(_EXCLUDED)] == _EXCLUDED


def find_violations(src_root):
    """Return ``[(path, lineno, line), ...]`` of unguarded call sites."""
    src_root = pathlib.Path(src_root)
    violations = []
    for path in sorted(src_root.rglob("*.py")):
        if _excluded(path, src_root):
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not CALL_RE.search(line):
                continue
            if PRAGMA in line:
                continue
            window = lines[max(0, index - GUARD_WINDOW): index + 1]
            if any(GUARD_RE.search(candidate) for candidate in window):
                continue
            violations.append((path, index + 1, line.strip()))
    return violations


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    repo_root = pathlib.Path(__file__).resolve().parents[1]
    src_root = pathlib.Path(argv[0]) if argv else repo_root / "src"
    violations = find_violations(src_root)
    for path, lineno, line in violations:
        print(f"{path}:{lineno}: unguarded observability call: {line}")
    if violations:
        print(f"{len(violations)} unguarded call site(s); wrap each in "
              f"'if <sim>.<recorder>.enabled:' or mark it '{PRAGMA}'")
        return 1
    print("trace-guard lint: all observability call sites guarded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
