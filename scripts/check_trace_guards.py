#!/usr/bin/env python3
"""Lint wrapper: every observability call site in ``src/`` must be guarded.

The actual checks live in :mod:`repro.lint.rules_obs` — rule ``RL001``
(unguarded call site) plus ``RL002`` (stale ``# obs: caller-guarded``
pragma on a line with no call) — running on the :mod:`repro.lint`
engine, so this script, ``repro lint`` and ``scripts/lint_all.py``
share one source of truth.  The pragma is recognised with flexible
whitespace and trailing rationale text (``#obs:caller-guarded``,
``# obs: caller-guarded — guard lives in run()`` all count).

Kept as a standalone entry point for muscle memory and CI pipelines;
wired into tier-1 by ``tests/test_trace_guard_lint.py``.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lint.engine import run_lint  # noqa: E402
from repro.lint.registry import RULES  # noqa: E402
# Re-exported so callers keep one import point for the knobs.
from repro.lint.pragmas import OBS_PRAGMA as PRAGMA  # noqa: E402,F401
from repro.lint.rules_obs import (  # noqa: E402,F401
    CALL_RE, GUARD_RE, GUARD_WINDOW,
)

#: The obs-guard rule pack this wrapper runs.
RULE_IDS = ("RL001", "RL002")


def find_violations(src_root):
    """Return ``[(path, lineno, line), ...]`` of obs-guard findings."""
    src_root = pathlib.Path(src_root).resolve()
    result = run_lint(src_root, rules=[RULES[rule_id] for rule_id in RULE_IDS],
                      include_project_rules=False)
    base = src_root if src_root.is_dir() else src_root.parent
    return [(base / finding.path, finding.line, finding.snippet)
            for finding in result.findings]


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    src_root = pathlib.Path(argv[0]) if argv else SRC
    violations = find_violations(src_root)
    for path, lineno, line in violations:
        print(f"{path}:{lineno}: unguarded observability call: {line}")
    if violations:
        print(f"{len(violations)} unguarded call site(s); wrap each in "
              f"'if <sim>.<recorder>.enabled:' or mark it '{PRAGMA}'")
        return 1
    print("trace-guard lint: all observability call sites guarded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
