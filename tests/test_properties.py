"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.boxstats import BoxStats
from repro.analysis.cdf import Cdf
from repro.analysis.stats import SummaryStats, mean_ci, percentile
from repro.net import wire
from repro.net.addresses import MacAddress, ip
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.packet import (
    IcmpEcho, Packet, TcpSegment, UdpDatagram,
)
from repro.net.queues import DropTailQueue
from repro.sim.scheduler import Simulator
from repro.testbed.scenario import ScenarioSpec

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
sample_lists = st.lists(finite_floats, min_size=1, max_size=200)


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=512))
    def test_checksum_verifies_after_append(self, data):
        checksum = internet_checksum(data)
        if len(data) % 2:
            data = data + b"\x00"
        assert verify_checksum(data + checksum.to_bytes(2, "big"))

    @given(st.binary(min_size=0, max_size=256))
    def test_checksum_in_16bit_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestWireProperties:
    @given(
        ident=st.integers(0, 0xFFFF),
        seq=st.integers(0, 0xFFFF),
        size=st.integers(0, 600),
        ttl=st.integers(1, 255),
    )
    @settings(max_examples=50)
    def test_icmp_roundtrip(self, ident, seq, size, ttl):
        packet = Packet(ip("10.0.0.1"), ip("10.0.0.2"),
                        IcmpEcho(8, ident, seq, size), ttl=ttl)
        decoded = wire.decode_ipv4(wire.encode_ipv4(packet))
        assert decoded.ttl == ttl
        assert decoded.payload.ident == ident
        assert decoded.payload.seq == seq
        assert decoded.payload.payload_size == size

    @given(
        sport=st.integers(1, 0xFFFF),
        dport=st.integers(1, 0xFFFF),
        seq=st.integers(0, 0xFFFFFFFF),
        ack=st.integers(0, 0xFFFFFFFF),
        flags=st.integers(1, 0x1F),
        size=st.integers(0, 600),
    )
    @settings(max_examples=50)
    def test_tcp_roundtrip(self, sport, dport, seq, ack, flags, size):
        segment = TcpSegment(sport, dport, seq, ack, flags, size)
        packet = Packet(ip("1.2.3.4"), ip("5.6.7.8"), segment)
        decoded = wire.decode_ipv4(wire.encode_ipv4(packet)).payload
        assert (decoded.src_port, decoded.dst_port) == (sport, dport)
        assert (decoded.seq, decoded.ack) == (seq, ack)
        assert decoded.flags == flags
        assert decoded.payload_size == size

    @given(size=st.integers(8, 600), probe_id=st.integers(1, 2 ** 63))
    @settings(max_examples=50)
    def test_probe_id_survives_udp_encoding(self, size, probe_id):
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                        UdpDatagram(1000, 2000, size),
                        meta={"probe_id": probe_id})
        decoded = wire.decode_ipv4(wire.encode_ipv4(packet))
        assert decoded.probe_id == probe_id

    @given(value=st.integers(0, (1 << 48) - 1))
    def test_mac_roundtrip(self, value):
        mac = MacAddress(value)
        assert MacAddress(str(mac)) == mac
        assert MacAddress(mac.to_bytes()) == mac


class TestStatsProperties:
    @given(sample_lists)
    def test_mean_within_range(self, values):
        mean, _ = mean_ci(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(sample_lists)
    def test_ci_nonnegative(self, values):
        _, ci = mean_ci(values)
        assert ci >= 0

    @given(sample_lists, st.floats(0, 100))
    def test_percentile_bounded_and_monotone(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)
        assert percentile(values, 0) <= p <= percentile(values, 100)

    @given(sample_lists)
    def test_boxstats_ordering_invariants(self, values):
        box = BoxStats(values)
        assert box.q1 <= box.median <= box.q3
        assert box.whisker_low <= box.q1
        assert box.q3 <= box.whisker_high
        assert box.whisker_low >= min(values)
        assert box.whisker_high <= max(values)
        assert len(box.outliers) < len(values) or len(values) <= 2

    @given(sample_lists)
    def test_summarystats_consistency(self, values):
        stats = SummaryStats(values)
        tolerance = 1e-9 * max(1.0, abs(stats.maximum), abs(stats.minimum))
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
        assert stats.stdev >= 0

    @given(sample_lists, finite_floats)
    def test_cdf_monotone_probability(self, values, x):
        cdf = Cdf(values)
        assert 0.0 <= cdf.probability(x) <= 1.0
        assert cdf.probability(x) <= cdf.probability(x + 1.0)

    @given(sample_lists,
           st.floats(min_value=0.01, max_value=1.0))
    def test_cdf_quantile_probability_galois(self, values, p):
        cdf = Cdf(values)
        v = cdf.quantile(p)
        assert cdf.probability(v) >= p - 1e-9


class TestQueueProperties:
    @given(st.lists(st.integers(0, 1400), min_size=0, max_size=100),
           st.integers(1, 50))
    def test_fifo_subsequence_under_drops(self, sizes, limit):
        queue = DropTailQueue(packet_limit=limit)
        packets = [
            Packet(ip("1.1.1.1"), ip("2.2.2.2"), UdpDatagram(1, 2, s))
            for s in sizes
        ]
        accepted = [p for p in packets if queue.enqueue(p)]
        drained = []
        while True:
            item = queue.dequeue()
            if item is None:
                break
            drained.append(item)
        assert drained == accepted
        assert queue.stats.dropped == len(packets) - len(accepted)
        assert queue.bytes_queued == 0

    @given(st.lists(st.integers(0, 1400), min_size=0, max_size=60))
    def test_byte_accounting_invariant(self, sizes):
        queue = DropTailQueue(packet_limit=None, byte_limit=5000)
        expected_bytes = 0
        for size in sizes:
            packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                            UdpDatagram(1, 2, size))
            if queue.enqueue(packet):
                expected_bytes += packet.wire_size
            assert queue.bytes_queued == expected_bytes
            assert queue.bytes_queued <= 5000


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=0, max_size=100))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator(seed=0)
        fire_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fire_times.append(sim.now))
        sim.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(st.integers(0, 1000))
    def test_run_until_never_overshoots_events(self, n_events):
        sim = Simulator(seed=0)
        fired = []
        for index in range(min(n_events, 100)):
            sim.schedule(index * 0.1, fired.append, index)
        sim.run(until=2.05)
        assert all(i * 0.1 <= 2.05 for i in fired)


@st.composite
def scenario_specs(draw):
    """Valid, fully-parameterised scenario specs across both env families."""
    env = draw(st.sampled_from(("wifi", "cellular-3g", "cellular-lte")))
    return ScenarioSpec(
        env=env,
        phone=draw(st.sampled_from(("nexus5", "nexus4", "htc_one"))),
        tool=draw(st.sampled_from(("acutemon", "ping", "httping"))),
        emulated_rtt=draw(st.floats(min_value=0.005, max_value=0.2,
                                    allow_nan=False)),
        count=draw(st.integers(1, 50)),
        seed=draw(st.integers(0, 2 ** 31)),
        # Cross traffic and keeping the SDIO bus awake (bus_sleep=False)
        # are WiFi-only capabilities.
        cross_traffic=draw(st.booleans()) if env == "wifi" else False,
        bus_sleep=draw(st.booleans()) if env == "wifi" else True,
        observe=draw(st.booleans()),
    )


class TestFingerprintProperties:
    """The checkpoint cache key (docs/RESILIENCE.md): equal content ⇔
    equal fingerprint, stable across JSON round-trips."""

    @given(spec=scenario_specs())
    @settings(max_examples=50)
    def test_fingerprint_stable_across_json_round_trip(self, spec):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.fingerprint() == spec.fingerprint()

    @given(spec=scenario_specs())
    @settings(max_examples=50)
    def test_rebuilding_from_payload_preserves_fingerprint(self, spec):
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.fingerprint() == spec.fingerprint()
        assert clone.canonical_json() == spec.canonical_json()

    @given(a=scenario_specs(), b=scenario_specs())
    @settings(max_examples=100)
    def test_fingerprints_agree_exactly_when_content_does(self, a, b):
        assert (a.fingerprint() == b.fingerprint()) \
            == (a.to_dict() == b.to_dict())

    @given(spec=scenario_specs(), delta=st.integers(1, 10_000))
    @settings(max_examples=50)
    def test_seed_shift_always_moves_the_fingerprint(self, spec, delta):
        assert spec.replace(seed=spec.seed + delta).fingerprint() \
            != spec.fingerprint()
