"""Tests for the parallel campaign runner.

The load-bearing property is *bit-identical determinism*: a sharded
multi-process run must produce exactly the results of the serial path,
cell for cell, byte for byte, for any worker count.
"""

import json

import pytest

from repro.testbed.campaign import Campaign, CellResult, run_cell
from repro.testbed.parallel import ParallelCampaignRunner, _run_shard


def small_grid(**overrides):
    """A fast 2x2x2 grid (8 cells, 3 probes each)."""
    params = dict(phones=("nexus5", "nexus4"), rtts=(0.02, 0.05),
                  tools=("acutemon", "ping"), count=3)
    params.update(overrides)
    return Campaign(**params)


def serialized(campaign):
    return json.dumps([result.to_dict() for result in campaign.results],
                      sort_keys=True)


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        baseline = small_grid()
        baseline.run(workers=1)
        reference = serialized(baseline)
        for workers in (2, 4):
            campaign = small_grid()
            campaign.run(workers=workers)
            assert serialized(campaign) == reference, (
                f"workers={workers} diverged from serial run")

    def test_parallel_preserves_grid_order(self):
        campaign = small_grid()
        campaign.run(workers=4)
        expected = [(phone, rtt, tool, cross)
                    for phone, rtt, tool, cross, _ in campaign.cells()]
        assert [result.key() for result in campaign.results] == expected

    def test_run_cell_matches_campaign_cell(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run()
        (cell,) = campaign.cells()
        direct = run_cell(*cell, count=campaign.count)
        assert direct.to_dict() == campaign.results[0].to_dict()


class TestSharding:
    def test_shards_cover_grid_in_order(self):
        campaign = small_grid()
        runner = ParallelCampaignRunner(campaign, workers=2)
        cells = list(campaign.cells())
        shards = runner.shards()
        flattened = [cell for shard in shards for cell in shard]
        assert flattened == cells
        assert all(shard for shard in shards)

    def test_explicit_chunk_size(self):
        campaign = small_grid()
        runner = ParallelCampaignRunner(campaign, workers=2, chunk_size=3)
        assert [len(shard) for shard in runner.shards()] == [3, 3, 2]

    def test_empty_grid(self):
        campaign = small_grid(phones=())
        runner = ParallelCampaignRunner(campaign, workers=4)
        assert runner.shards() == []
        assert runner.run() == []
        assert campaign.results == []

    def test_single_cell(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        results = campaign.run(workers=4)
        assert len(results) == 1
        assert results[0].key() == ("nexus5", 0.02, "ping", False)

    def test_more_workers_than_cells(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02, 0.05),
                              tools=("ping",))
        reference = small_grid(phones=("nexus5",), rtts=(0.02, 0.05),
                               tools=("ping",))
        reference.run(workers=1)
        campaign.run(workers=16)
        assert serialized(campaign) == serialized(reference)

    def test_run_shard_round_trips_payloads(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        cells = list(campaign.cells())
        payloads = _run_shard((campaign.count, False, cells))
        assert len(payloads) == 1
        restored = CellResult.from_dict(payloads[0])
        assert restored.key() == ("nexus5", 0.02, "ping", False)
        assert len(restored.rtts) == campaign.count
        assert restored.metrics is None

    def test_run_shard_carries_metrics_when_asked(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        cells = list(campaign.cells())
        payloads = _run_shard((campaign.count, True, cells))
        restored = CellResult.from_dict(payloads[0])
        assert restored.metrics is not None
        names = {entry["name"] for entry in restored.metrics["metrics"]}
        assert "scheduler_events_fired" in names


class TestFallbacksAndProgress:
    def test_unavailable_start_method_falls_back_to_serial(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        runner = ParallelCampaignRunner(campaign, workers=4,
                                        start_method="not-a-start-method")
        results = runner.run()
        assert runner.mode == "serial"
        assert len(results) == 1

    def test_workers_one_runs_in_process(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        runner = ParallelCampaignRunner(campaign, workers=1)
        runner.run()
        assert runner.mode == "serial"

    def test_progress_called_once_per_cell_parallel(self):
        campaign = small_grid(tools=("ping",))
        seen = []
        campaign.run(workers=2, progress=lambda *cell: seen.append(cell))
        assert sorted(seen) == sorted(
            (phone, rtt, tool, cross)
            for phone, rtt, tool, cross, _ in campaign.cells())

    def test_campaign_run_workers_none_uses_cpu_count(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        reference = small_grid(phones=("nexus5",), rtts=(0.02,),
                               tools=("ping",))
        reference.run()
        campaign.run(workers=None)
        assert serialized(campaign) == serialized(reference)


class TestResultIndex:
    def test_result_for_after_run(self):
        campaign = small_grid(tools=("ping",))
        campaign.run()
        result = campaign.result_for("nexus4", 0.05, "ping")
        assert result is not None
        assert result.key() == ("nexus4", 0.05, "ping", False)
        assert campaign.result_for("nexus4", 0.05, "acutemon") is None

    def test_result_for_after_direct_assignment(self):
        campaign = Campaign(count=3)
        campaign.results = [CellResult("nexus5", 0.03, "ping", False, 0,
                                       [0.031])]
        assert campaign.result_for("nexus5", 0.03, "ping").rtts == [0.031]

    def test_result_for_after_merge(self):
        first = Campaign(count=3)
        first.results = [CellResult("nexus5", 0.03, "ping", False, 0,
                                    [0.031])]
        second = Campaign(count=3)
        second.results = [CellResult("nexus4", 0.03, "ping", False, 1,
                                     [0.032])]
        merged = first.merged_with(second)
        assert merged.result_for("nexus4", 0.03, "ping").seed == 1
        assert merged.result_for("nexus5", 0.03, "ping").seed == 0

    def test_result_for_after_load(self, tmp_path):
        campaign = Campaign(count=3)
        campaign.results = [CellResult("nexus5", 0.03, "ping", False, 0,
                                       [0.031])]
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert loaded.result_for("nexus5", 0.03, "ping").rtts == [0.031]

    def test_first_result_wins_on_duplicate_keys(self):
        campaign = Campaign(count=3)
        campaign.results = [
            CellResult("nexus5", 0.03, "ping", False, 0, [0.031]),
            CellResult("nexus5", 0.03, "ping", False, 9, [0.099]),
        ]
        assert campaign.result_for("nexus5", 0.03, "ping").seed == 0


class TestMetricsDeterminism:
    """collect_metrics snapshots must be identical serial vs parallel."""

    GRID = dict(phones=("nexus5",), rtts=(0.02, 0.05),
                tools=("acutemon", "ping"), count=3)

    def test_parallel_merged_metrics_match_serial(self):
        serial = small_grid(**self.GRID)
        serial.run(workers=1, collect_metrics=True)
        reference = json.dumps(serial.merged_metrics(), sort_keys=True)
        assert serial.merged_metrics() is not None
        for workers in (2, 4):
            campaign = small_grid(**self.GRID)
            campaign.run(workers=workers, collect_metrics=True)
            merged = json.dumps(campaign.merged_metrics(), sort_keys=True)
            assert merged == reference, (
                f"workers={workers} merged metrics diverged")

    def test_collect_metrics_does_not_change_measurements(self):
        plain = small_grid(**self.GRID)
        plain.run(workers=1)
        observed = small_grid(**self.GRID)
        observed.run(workers=1, collect_metrics=True)
        for a, b in zip(plain.results, observed.results):
            assert a.rtts == b.rtts
            assert a.layers == b.layers

    def test_merged_metrics_none_without_collection(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run(workers=1)
        assert campaign.merged_metrics() is None

    def test_metrics_survive_save_load(self, tmp_path):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run(workers=1, collect_metrics=True)
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert json.dumps(loaded.merged_metrics(), sort_keys=True) == \
            json.dumps(campaign.merged_metrics(), sort_keys=True)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_acceptance_grid_is_stable(workers):
    """The ISSUE's acceptance grid: 2x2x2 cells, any worker count."""
    campaign = small_grid()
    campaign.run(workers=workers)
    assert len(campaign.results) == 8
    for result in campaign.results:
        assert len(result.rtts) == 3
