"""Tests for the parallel campaign runner.

The load-bearing property is *bit-identical determinism*: a sharded
multi-process run must produce exactly the results of the serial path,
cell for cell, byte for byte, for any worker count.
"""

import json

import pytest

from repro.testbed.campaign import Campaign, CellResult, run_cell
from repro.testbed.parallel import ParallelCampaignRunner, _run_shard


def small_grid(**overrides):
    """A fast 2x2x2 grid (8 cells, 3 probes each)."""
    params = dict(phones=("nexus5", "nexus4"), rtts=(0.02, 0.05),
                  tools=("acutemon", "ping"), count=3)
    params.update(overrides)
    return Campaign(**params)


def serialized(campaign):
    return json.dumps([result.to_dict() for result in campaign.results],
                      sort_keys=True)


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        baseline = small_grid()
        baseline.run(workers=1)
        reference = serialized(baseline)
        for workers in (2, 4):
            campaign = small_grid()
            campaign.run(workers=workers)
            assert serialized(campaign) == reference, (
                f"workers={workers} diverged from serial run")

    def test_parallel_preserves_grid_order(self):
        campaign = small_grid()
        campaign.run(workers=4)
        expected = [spec.key() for spec in campaign.cells()]
        assert [result.key() for result in campaign.results] == expected

    def test_run_cell_matches_campaign_cell(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run()
        (spec,) = campaign.cells()
        direct = run_cell(spec)
        assert direct.to_dict() == campaign.results[0].to_dict()


class TestSharding:
    def test_shards_cover_grid_in_order(self):
        campaign = small_grid()
        runner = ParallelCampaignRunner(campaign, workers=2)
        cells = list(campaign.cells())
        shards = runner.shards()
        flattened = [cell for shard in shards for cell in shard]
        assert flattened == cells
        assert all(shard for shard in shards)

    def test_explicit_chunk_size(self):
        campaign = small_grid()
        runner = ParallelCampaignRunner(campaign, workers=2, chunk_size=3)
        assert [len(shard) for shard in runner.shards()] == [3, 3, 2]

    def test_empty_grid(self):
        campaign = small_grid(phones=())
        runner = ParallelCampaignRunner(campaign, workers=4)
        assert runner.shards() == []
        assert runner.run() == []
        assert campaign.results == []

    def test_single_cell(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        results = campaign.run(workers=4)
        assert len(results) == 1
        assert results[0].key() == ("wifi", "nexus5", 0.02, "ping", False)

    def test_more_workers_than_cells(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02, 0.05),
                              tools=("ping",))
        reference = small_grid(phones=("nexus5",), rtts=(0.02, 0.05),
                               tools=("ping",))
        reference.run(workers=1)
        campaign.run(workers=16)
        assert serialized(campaign) == serialized(reference)

    def test_run_shard_round_trips_payloads(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        cells = list(campaign.cells())
        records = _run_shard(
            (False, None, [spec.to_dict() for spec in cells]))
        assert len(records) == 1
        assert records[0]["attempts"] == 1
        assert records[0]["timeouts"] == 0
        restored = CellResult.from_dict(records[0]["cell"])
        assert restored.key() == ("wifi", "nexus5", 0.02, "ping", False)
        assert len(restored.rtts) == campaign.count
        assert restored.metrics is None

    def test_run_shard_carries_metrics_when_asked(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        cells = list(campaign.cells())
        records = _run_shard(
            (True, None, [spec.to_dict() for spec in cells]))
        restored = CellResult.from_dict(records[0]["cell"])
        assert restored.metrics is not None
        names = {entry["name"] for entry in restored.metrics["metrics"]}
        assert "scheduler_events_fired" in names


class TestFallbacksAndProgress:
    def test_unavailable_start_method_falls_back_to_serial(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        runner = ParallelCampaignRunner(campaign, workers=4,
                                        start_method="not-a-start-method")
        results = runner.run()
        assert runner.mode == "serial"
        assert len(results) == 1

    def test_workers_one_runs_in_process(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        runner = ParallelCampaignRunner(campaign, workers=1)
        runner.run()
        assert runner.mode == "serial"

    def test_progress_called_once_per_cell_parallel(self):
        campaign = small_grid(tools=("ping",))
        seen = []
        campaign.run(workers=2,
                     progress=lambda spec: seen.append(spec.key()))
        assert sorted(seen) == sorted(
            spec.key() for spec in campaign.cells())

    def test_campaign_run_workers_none_uses_cpu_count(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        reference = small_grid(phones=("nexus5",), rtts=(0.02,),
                               tools=("ping",))
        reference.run()
        campaign.run(workers=None)
        assert serialized(campaign) == serialized(reference)


class TestCheckpointResume:
    """Journal/resume plumbing at the runner level; the chaos suite
    (tests/test_campaign_chaos.py) covers crash scenarios."""

    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = small_grid(tools=("ping",))
        plain.run(workers=1)
        checkpointed = small_grid(tools=("ping",))
        checkpointed.run(workers=1,
                         checkpoint=tmp_path / "sweep.jsonl")
        assert serialized(checkpointed) == serialized(plain)

    def test_parallel_checkpoint_then_serial_resume(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        first = small_grid(tools=("ping",))
        first.run(workers=4, checkpoint=checkpoint)
        resumed = small_grid(tools=("ping",))
        resumed.run(workers=1, checkpoint=checkpoint, resume=True)
        assert serialized(resumed) == serialized(first)
        counters = {metric["name"]: metric["value"]
                    for metric in resumed.run_metrics["metrics"]}
        assert counters["campaign.cells_resumed"] == 4

    def test_resume_without_checkpoint_raises(self):
        campaign = small_grid(tools=("ping",))
        runner = ParallelCampaignRunner(campaign, workers=2)
        with pytest.raises(ValueError, match="checkpoint"):
            runner.run(resume=True)


class TestProgressExactlyOnce:
    """``progress`` fires exactly once per cell in every mode."""

    def counted(self, campaign, **run_kwargs):
        from collections import Counter
        seen = Counter()
        campaign.run(progress=lambda spec: seen.update([spec.key()]),
                     **run_kwargs)
        expected = Counter(spec.key() for spec in campaign.cells())
        return seen, expected

    def test_serial_plain(self):
        seen, expected = self.counted(small_grid(tools=("ping",)),
                                      workers=1)
        assert seen == expected

    def test_serial_resilient(self, tmp_path):
        seen, expected = self.counted(
            small_grid(tools=("ping",)), workers=1,
            checkpoint=tmp_path / "sweep.jsonl", retries=1)
        assert seen == expected

    def test_parallel(self):
        seen, expected = self.counted(small_grid(tools=("ping",)),
                                      workers=4)
        assert seen == expected

    def test_resumed_cells_still_fire(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        first = small_grid(tools=("ping",))
        first.run(workers=1, checkpoint=checkpoint)
        seen, expected = self.counted(
            small_grid(tools=("ping",)), workers=1,
            checkpoint=checkpoint, resume=True)
        assert seen == expected


class TestResultIndex:
    def test_result_for_after_run(self):
        campaign = small_grid(tools=("ping",))
        campaign.run()
        result = campaign.result_for("nexus4", 0.05, "ping")
        assert result is not None
        assert result.key() == ("wifi", "nexus4", 0.05, "ping", False)
        assert campaign.result_for("nexus4", 0.05, "acutemon") is None

    def test_result_for_after_direct_assignment(self):
        campaign = Campaign(count=3)
        campaign.results = [CellResult("nexus5", 0.03, "ping", False, 0,
                                       [0.031])]
        assert campaign.result_for("nexus5", 0.03, "ping").rtts == [0.031]

    def test_result_for_after_merge(self):
        first = Campaign(count=3)
        first.results = [CellResult("nexus5", 0.03, "ping", False, 0,
                                    [0.031])]
        second = Campaign(count=3)
        second.results = [CellResult("nexus4", 0.03, "ping", False, 1,
                                     [0.032])]
        merged = first.merged_with(second)
        assert merged.result_for("nexus4", 0.03, "ping").seed == 1
        assert merged.result_for("nexus5", 0.03, "ping").seed == 0

    def test_result_for_after_load(self, tmp_path):
        campaign = Campaign(count=3)
        campaign.results = [CellResult("nexus5", 0.03, "ping", False, 0,
                                       [0.031])]
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert loaded.result_for("nexus5", 0.03, "ping").rtts == [0.031]

    def test_first_result_wins_on_duplicate_keys(self):
        campaign = Campaign(count=3)
        campaign.results = [
            CellResult("nexus5", 0.03, "ping", False, 0, [0.031]),
            CellResult("nexus5", 0.03, "ping", False, 9, [0.099]),
        ]
        assert campaign.result_for("nexus5", 0.03, "ping").seed == 0


class TestMetricsDeterminism:
    """collect_metrics snapshots must be identical serial vs parallel."""

    GRID = dict(phones=("nexus5",), rtts=(0.02, 0.05),
                tools=("acutemon", "ping"), count=3)

    def test_parallel_merged_metrics_match_serial(self):
        serial = small_grid(**self.GRID)
        serial.run(workers=1, collect_metrics=True)
        reference = json.dumps(serial.merged_metrics(), sort_keys=True)
        assert serial.merged_metrics() is not None
        for workers in (2, 4):
            campaign = small_grid(**self.GRID)
            campaign.run(workers=workers, collect_metrics=True)
            merged = json.dumps(campaign.merged_metrics(), sort_keys=True)
            assert merged == reference, (
                f"workers={workers} merged metrics diverged")

    def test_collect_metrics_does_not_change_measurements(self):
        plain = small_grid(**self.GRID)
        plain.run(workers=1)
        observed = small_grid(**self.GRID)
        observed.run(workers=1, collect_metrics=True)
        for a, b in zip(plain.results, observed.results):
            assert a.rtts == b.rtts
            assert a.layers == b.layers

    def test_merged_metrics_none_without_collection(self):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run(workers=1)
        assert campaign.merged_metrics() is None

    def test_metrics_survive_save_load(self, tmp_path):
        campaign = small_grid(phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run(workers=1, collect_metrics=True)
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert json.dumps(loaded.merged_metrics(), sort_keys=True) == \
            json.dumps(campaign.merged_metrics(), sort_keys=True)


class TestEnvironmentAxis:
    """One grid sweeping WiFi and cellular cells side by side."""

    GRID = dict(envs=("wifi", "cellular-lte"), phones=("nexus5",),
                rtts=(0.02, 0.05), tools=("acutemon", "ping"), count=3)

    def test_mixed_env_parallel_matches_serial_bit_for_bit(self):
        baseline = small_grid(**self.GRID)
        baseline.run(workers=1)
        reference = serialized(baseline)
        assert {r.env for r in baseline.results} == {"wifi",
                                                     "cellular-lte"}
        for workers in (2, 4):
            campaign = small_grid(**self.GRID)
            campaign.run(workers=workers)
            assert serialized(campaign) == reference, (
                f"workers={workers} diverged on the mixed-env grid")

    def test_mixed_env_merged_metrics_identical(self):
        serial = small_grid(**self.GRID)
        serial.run(workers=1, collect_metrics=True)
        reference = json.dumps(serial.merged_metrics(), sort_keys=True)
        parallel = small_grid(**self.GRID)
        parallel.run(workers=3, collect_metrics=True)
        merged = json.dumps(parallel.merged_metrics(), sort_keys=True)
        assert merged == reference
        # Cellular cells contribute RRC metrics into the same fold.
        assert "rrc" in reference or "cell" in reference or \
            "scheduler_events_fired" in reference

    def test_env_axis_outermost_keeps_single_env_seeds(self):
        # A wifi-only grid must assign the exact seeds it did before
        # the environment axis existed: base_seed + index * 7919.
        campaign = small_grid()
        for index, spec in enumerate(campaign.cells()):
            assert spec.seed == campaign.base_seed + index * 7919
            assert spec.env == "wifi"

    def test_result_for_distinguishes_envs(self):
        campaign = small_grid(envs=("wifi", "cellular-lte"),
                              phones=("nexus5",), rtts=(0.02,),
                              tools=("ping",))
        campaign.run()
        wifi = campaign.result_for("nexus5", 0.02, "ping")
        cell = campaign.result_for("nexus5", 0.02, "ping",
                                   env="cellular-lte")
        assert wifi is not None and cell is not None
        assert wifi.env == "wifi" and cell.env == "cellular-lte"
        assert wifi.seed != cell.seed

    def test_env_survives_save_load(self, tmp_path):
        campaign = small_grid(envs=("cellular-lte",), phones=("nexus5",),
                              rtts=(0.02,), tools=("ping",))
        campaign.run()
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert loaded.envs == ("cellular-lte",)
        assert loaded.results[0].env == "cellular-lte"
        assert loaded.results[0].key() == campaign.results[0].key()

    def test_legacy_payload_defaults_to_wifi(self):
        restored = CellResult.from_dict({
            "phone": "nexus5", "rtt": 0.03, "tool": "ping",
            "cross_traffic": False, "seed": 0, "rtts": [0.031],
        })
        assert restored.env == "wifi"
        assert restored.key() == ("wifi", "nexus5", 0.03, "ping", False)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_acceptance_grid_is_stable(workers):
    """The ISSUE's acceptance grid: 2x2x2 cells, any worker count."""
    campaign = small_grid()
    campaign.run(workers=workers)
    assert len(campaign.results) == 8
    for result in campaign.results:
        assert len(result.rtts) == 3
