"""Chaos-injection harness for the campaign resilience tests.

The resilience layer resolves ``run_cell`` through the campaign module
at call time (``repro.testbed.campaign.run_cell``), which gives the
chaos tests a single choke point: patching that attribute injects
faults into every execution path — the serial runner, the resilient
runner, and (under the ``fork`` start method) pool workers, which
inherit the patched module.

:class:`ChaosInjector` wraps the real ``run_cell`` and misbehaves for
selected cells, keyed by ``spec.seed`` (unique per cell in a campaign
grid, stable across runs and processes):

* ``fail_times`` — raise :class:`ChaosError` the first N times a cell
  is attempted (transient fault; retries should clear it),
* ``always_fail`` — raise on every attempt (permanent fault; the cell
  should end quarantined),
* ``hang`` — sleep far past any cell timeout (wedged cell),
* ``kill_worker`` — ``os._exit`` the executing process when it is not
  the parent (a worker dying mid-shard; in-parent execution falls back
  to ``always_fail`` semantics so the grid still cannot complete the
  cell silently),
* ``kill_shard`` — like ``kill_worker`` in a worker process, but runs
  the cell *normally* when executed in the parent: the fault model for
  the fabric's work stealing, where a stolen shard must complete
  in-process with the exact results its dead worker would have
  produced,
* ``crash_after`` — :func:`crash_after` raises :class:`SimulatedCrash`
  once N cells have completed, simulating the sweep process dying
  between cells (checkpoint + resume should recover).

:func:`corrupt_store_segment` truncates or garbles a persistent result
store on disk so the cache-recovery chaos tests can pin that a damaged
segment degrades to cache misses instead of poisoning the campaign.

Attempt counts are recorded in :attr:`ChaosInjector.calls` so tests can
assert exact retry budgets.  State lives in the parent process; fork
workers see a copy, which is why per-cell triggers key off the spec
(deterministic) rather than shared counters.
"""

import os
import time

from repro.testbed import campaign as _campaign


class ChaosError(RuntimeError):
    """The injected cell failure."""


class SimulatedCrash(BaseException):
    """Raised to simulate the whole sweep process dying mid-run.

    Derives from ``BaseException`` so no fault policy or retry loop can
    swallow it — exactly like a SIGKILL, the run just stops.
    """


class ChaosInjector:
    """A misbehaving stand-in for ``run_cell``; see the module docstring.

    Parameters map cell seeds to behaviours::

        ChaosInjector(fail_times={seed: 2}, always_fail={seed2},
                      hang={seed3}, kill_worker={seed4})
    """

    def __init__(self, fail_times=None, always_fail=None, hang=None,
                 kill_worker=None, kill_shard=None, hang_seconds=120.0):
        self.fail_times = dict(fail_times or {})
        self.always_fail = set(always_fail or ())
        self.hang = set(hang or ())
        self.kill_worker = set(kill_worker or ())
        self.kill_shard = set(kill_shard or ())
        self.hang_seconds = hang_seconds
        self.parent_pid = os.getpid()
        #: seed -> number of times the cell was attempted (parent
        #: process only; fork workers mutate their own copy).
        self.calls = {}
        self._real = _campaign.run_cell

    def __call__(self, spec, collect_metrics=False):
        seed = spec.seed
        self.calls[seed] = self.calls.get(seed, 0) + 1
        if seed in self.kill_worker:
            if os.getpid() != self.parent_pid:
                os._exit(17)
            raise ChaosError(f"cell seed={seed} ran in-parent after "
                             "its worker was killed")
        if seed in self.kill_shard and os.getpid() != self.parent_pid:
            os._exit(19)
        if seed in self.hang:
            time.sleep(self.hang_seconds)
        if seed in self.always_fail:
            raise ChaosError(f"cell seed={seed} always fails")
        remaining = self.fail_times.get(seed, 0)
        if remaining > 0:
            self.fail_times[seed] = remaining - 1
            raise ChaosError(f"cell seed={seed} transient failure "
                            f"({remaining} left)")
        return self._real(spec, collect_metrics=collect_metrics)

    def install(self, monkeypatch):
        """Patch ``campaign.run_cell`` for the test's lifetime."""
        monkeypatch.setattr(_campaign, "run_cell", self)
        return self


def crash_after(n, monkeypatch):
    """Patch ``run_cell`` to die (``SimulatedCrash``) after ``n`` cells.

    The first ``n`` cells complete normally; the ``n+1``-th attempt
    raises :class:`SimulatedCrash` before doing any work — modelling a
    sweep killed between cells.  Returns the patched callable (its
    ``completed`` attribute counts finished cells).
    """
    real = _campaign.run_cell
    state = {"completed": 0}

    def dying_run_cell(spec, collect_metrics=False):
        if state["completed"] >= n:
            raise SimulatedCrash(f"simulated crash after {n} cells")
        result = real(spec, collect_metrics=collect_metrics)
        state["completed"] += 1
        return result

    dying_run_cell.state = state
    monkeypatch.setattr(_campaign, "run_cell", dying_run_cell)
    return dying_run_cell


def corrupt_store_segment(store_root, mode="garble", drop_index=False):
    """Damage a persistent result store in place; returns segments hit.

    ``mode="garble"`` overwrites the middle line of each segment with
    non-JSON bytes (an unreadable record inside an otherwise healthy
    segment); ``mode="truncate"`` chops each segment mid-line (a torn
    tail, as left by a crash during ``put``).  ``drop_index=True``
    additionally deletes ``index.jsonl`` so the store must rebuild its
    locator from the surviving segments.
    """
    import pathlib

    root = pathlib.Path(store_root)
    segment_dir = root / "segments"
    damaged = []
    for segment in sorted(segment_dir.glob("*.jsonl")):
        lines = segment.read_text(encoding="utf-8").split("\n")
        body = [line for line in lines if line]
        if not body:
            continue
        if mode == "garble":
            body[len(body) // 2] = '{"v": 1, "fingerprint": !!corrupt!!'
            segment.write_text("\n".join(body) + "\n", encoding="utf-8")
        elif mode == "truncate":
            text = "\n".join(body)
            segment.write_text(text[:len(text) - len(body[-1]) // 2],
                               encoding="utf-8")
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
        damaged.append(segment.name)
    if drop_index:
        index = root / "index.jsonl"
        if index.exists():
            index.unlink()
    return damaged
