"""Fast performance smoke checks (``-m perf_smoke``).

Single-round miniatures of the three ``benchmarks/test_bench_simulator_perf``
benches.  They run inside tier-1 so a gross event-loop, wire-encoding, or
campaign regression (an accidental O(n) scan, a dropped cache) fails fast
without the full pytest-benchmark suite.  The floors are set ~20x below
current throughput: they only trip on order-of-magnitude regressions,
never on machine noise.

The measured rates are written to ``BENCH_simulator.json`` at the repo
root — the start of the perf trajectory tracked across PRs.
"""

import heapq
import json
import pathlib
import time

import pytest

from repro.net import wire
from repro.net.addresses import ip
from repro.net.packet import IcmpEcho, Packet, TcpSegment, UdpDatagram
from repro.sim.scheduler import Simulator
from repro.testbed.campaign import Campaign

_BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_simulator.json"

_EVENTS = 20_000
_WIRE_ROUND_TRIPS = 600
_CAMPAIGN_CELLS = 2

# Same workloads run against the growth-seed commit on the reference
# container (1 CPU, CPython 3.11) — the denominator of the perf
# trajectory.  Informational only; the floors below are what gate.
_SEED_BASELINE = {
    "scheduler_events_per_sec": 644_621.0,
    "wire_round_trips_per_sec": 34_739.0,
}

_rates = {}


def _rate(units, fn):
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return units / elapsed if elapsed > 0 else float("inf")


@pytest.mark.perf_smoke
def test_smoke_scheduler_event_rate():
    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < _EVENTS:
                sim.schedule(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count[0] == _EVENTS

    _rates["scheduler_events_per_sec"] = _rate(_EVENTS, run)
    assert _rates["scheduler_events_per_sec"] > 50_000


@pytest.mark.perf_smoke
def test_smoke_wire_round_trip_rate():
    packets = [
        Packet(ip("10.0.0.1"), ip("10.0.0.2"), IcmpEcho(8, 1, 1, 56),
               meta={"probe_id": 1}),
        Packet(ip("10.0.0.1"), ip("10.0.0.2"), UdpDatagram(1000, 2000, 512),
               meta={"probe_id": 2}),
        Packet(ip("10.0.0.1"), ip("10.0.0.2"),
               TcpSegment(1000, 80, 5, 9, 0x18, 1024),
               meta={"probe_id": 3}),
    ]

    def run():
        for _ in range(_WIRE_ROUND_TRIPS // len(packets)):
            for packet in packets:
                wire.decode_ipv4(wire.encode_ipv4(packet))

    _rates["wire_round_trips_per_sec"] = _rate(_WIRE_ROUND_TRIPS, run)
    assert _rates["wire_round_trips_per_sec"] > 5_000


@pytest.mark.perf_smoke
def test_smoke_campaign_cell_rate():
    campaign = Campaign(phones=("nexus5",), rtts=(0.02, 0.05),
                        tools=("ping",), count=3)

    def run():
        campaign.run(workers=1)
        assert len(campaign.results) == _CAMPAIGN_CELLS

    _rates["campaign_cells_per_sec"] = _rate(_CAMPAIGN_CELLS, run)
    assert _rates["campaign_cells_per_sec"] > 1


@pytest.mark.perf_smoke
def test_smoke_scenario_build_overhead():
    """Spec construction must stay negligible next to cell execution.

    Campaign grids route every cell through ScenarioSpec (validate +
    JSON round-trip in the parallel path).  Best-of-3 timing of that
    per-cell spec machinery, expressed as a percentage of the measured
    per-cell execution time from ``test_smoke_campaign_cell_rate``
    (which runs earlier in this module).  The 5% gate only trips if
    spec handling grows real work — validation today is microseconds
    against cells that take tens of milliseconds.
    """
    from repro.testbed.scenario import ScenarioSpec

    specs = 200

    def build_round_trip():
        for index in range(specs):
            spec = ScenarioSpec(env="wifi", phone="nexus5", tool="ping",
                                emulated_rtt=0.02, count=3,
                                seed=index * 7919)
            ScenarioSpec.from_dict(spec.to_dict()).to_json()

    best = 0.0
    for _ in range(3):
        best = max(best, _rate(specs, build_round_trip))
    per_spec_seconds = 1.0 / best
    cells_per_sec = _rates["campaign_cells_per_sec"]
    overhead = per_spec_seconds * cells_per_sec * 100.0
    _rates["scenario_build_overhead_pct"] = overhead
    assert overhead <= 5.0


class _ReferenceSimulator(Simulator):
    """Replica of the growth-seed run() loop with no observability
    dispatch at all — the zero-overhead yardstick for the bench below."""

    def run(self, until=None):
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        try:
            while not self._stopped and heap:
                event = heap[0]
                if event.canceled:
                    self._discard_head()
                    continue
                if until is not None and event.time > until:
                    break
                heappop(heap)
                event.in_heap = False
                self._now = event.time
                self.events_fired += 1
                if event.kwargs:
                    event.fn(*event.args, **event.kwargs)
                else:
                    event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now


@pytest.mark.perf_smoke
def test_smoke_obs_disabled_overhead():
    """Disabled metrics/spans/tracing must stay ~free on the hot loop.

    Best-of-3 interleaved runs of the scheduler workload on the stock
    Simulator (obs attached but disabled) versus the reference replica
    above; the gate is the relative throughput loss.  3% is far above
    the one-attribute-check-per-run() cost actually added — the assert
    only trips if instrumentation leaks into the per-event path.
    """

    def workload(sim_cls):
        def run():
            sim = sim_cls(seed=1)
            count = [0]

            def tick():
                count[0] += 1
                if count[0] < _EVENTS:
                    sim.schedule(1e-4, tick)

            sim.schedule(0.0, tick)
            sim.run()
            assert count[0] == _EVENTS

        return run

    ref_rate = sim_rate = 0.0
    for _ in range(3):
        ref_rate = max(ref_rate, _rate(_EVENTS, workload(_ReferenceSimulator)))
        sim_rate = max(sim_rate, _rate(_EVENTS, workload(Simulator)))
    overhead = max(0.0, (ref_rate - sim_rate) / ref_rate * 100.0)
    _rates["obs_disabled_overhead_pct"] = overhead
    assert overhead <= 3.0


@pytest.mark.perf_smoke
def test_smoke_checkpoint_overhead(tmp_path):
    """Journaling cells must not meaningfully slow a campaign down.

    A checkpointed run (docs/RESILIENCE.md) adds exactly one unit of
    work per completed cell: hash the spec's canonical JSON and append
    one flushed JSONL record to the open journal.  Best-of-3 timing of
    that per-cell unit, expressed as a percentage of the per-cell
    execution time measured by ``test_smoke_campaign_cell_rate``
    (which runs earlier in this module) — the same methodology as
    ``test_smoke_scenario_build_overhead``.  Timing the unit directly
    keeps the gate deterministic where a wall-clock A/B of two ~20ms
    campaign runs drowns a ~30us/cell delta in scheduler noise.  The
    3% gate only trips if checkpointing grows real per-cell work (an
    fsync on the default path, re-serialising results, hashing more
    than once per cell).
    """
    from repro.testbed.resilience import CheckpointJournal

    campaign = Campaign(phones=("nexus5",), rtts=(0.02,),
                        tools=("ping",), count=3)
    campaign.run(workers=1)
    (result,) = campaign.results
    (spec,) = campaign.cells()

    ops = 200
    journal = CheckpointJournal(tmp_path / "perf_checkpoint.jsonl")

    def checkpoint_cells():
        for _ in range(ops):
            journal.append(spec.fingerprint(), result)

    best = 0.0
    with journal:
        for _ in range(3):
            best = max(best, _rate(ops, checkpoint_cells))
    per_cell_seconds = 1.0 / best
    cells_per_sec = _rates["campaign_cells_per_sec"]
    overhead = per_cell_seconds * cells_per_sec * 100.0
    _rates["checkpoint_overhead_pct"] = overhead
    assert overhead <= 3.0


@pytest.mark.perf_smoke
def test_smoke_lint_full_repo_under_budget():
    """A full-repo ``repro lint`` run must stay under 5 seconds.

    The engine is wired into tier-1 (tests/test_lint_clean.py), so its
    latency is tier-1 latency: this gate keeps rule authors honest about
    per-file cost.  The budget covers every registered rule including
    the dynamic registry contract (RL301), on the whole ``src/`` tree,
    with a generous margin over the current cost.
    """
    from repro.lint import run_lint

    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    start = time.perf_counter()
    result = run_lint(src)
    elapsed = time.perf_counter() - start
    assert result.files_scanned > 90
    assert not result.findings
    _rates["lint_full_repo_seconds"] = elapsed
    assert elapsed < 5.0


@pytest.mark.perf_smoke
def test_smoke_emits_bench_json():
    """Persist the rates measured above (runs last in this module)."""
    assert set(_rates) == {"scheduler_events_per_sec",
                           "wire_round_trips_per_sec",
                           "campaign_cells_per_sec",
                           "scenario_build_overhead_pct",
                           "obs_disabled_overhead_pct",
                           "checkpoint_overhead_pct",
                           "lint_full_repo_seconds"}
    payload = {key: round(value, 1) for key, value in sorted(_rates.items())}
    payload["seed_baseline"] = _SEED_BASELINE
    payload["workload"] = {
        "scheduler_events": _EVENTS,
        "wire_round_trips": _WIRE_ROUND_TRIPS,
        "campaign_cells": _CAMPAIGN_CELLS,
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    assert json.loads(_BENCH_PATH.read_text())
