"""Fast performance smoke checks (``-m perf_smoke``).

Single-round miniatures of the ``benchmarks/test_bench_simulator_perf``
benches.  They run inside tier-1 so a gross event-loop, wire-encoding,
or campaign regression (an accidental O(n) scan, a dropped cache) fails
fast without the full pytest-benchmark suite.  The floors are set far
below current throughput: they only trip on order-of-magnitude
regressions, never on machine noise.

The measured rates are written to ``BENCH_simulator.json`` at the repo
root — the perf trajectory tracked across PRs — and
``scripts/bench_compare.py`` (exercised last in this module) gates the
metrics recorded in ``seed_baseline`` against >10% regressions.

Workloads were raised in PR 6 from the seed's 20k chained events / 600
wire round trips so steady-state throughput is what gets measured: the
headline scheduler number now drives 200k ticks through batched
periodic trains (the workload the timing wheel optimizes), a separate
chain workload tracks the unbatched general path, and the wire workload
round-trips 3000 probe-id-varied packets through the batch codec.
"""

import json
import pathlib
import sys
import time

import pytest

from repro.net import wire
from repro.net.addresses import ip
from repro.net.packet import IcmpEcho, Packet, TcpSegment, UdpDatagram
from repro.sim.scheduler import Simulator
from repro.testbed.campaign import Campaign

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
_BENCH_PATH = _REPO_ROOT / "BENCH_simulator.json"

#: Gate workload: one dense periodic train (the measurement probe loop,
#: period 100us) plus one 10ms watchdog — the steady state the wheel's
#: batched fast path serves.  Tick counts are exact: the train fires
#: 200_000 times in 20 simulated seconds, the watchdog 1_999 (its
#: phase-shifted grid has 1_999 points in (0, 20]).
_TRAIN_EVENTS = 200_000 + 1_999
#: Fidelity workload: self-rescheduling callback chain — the seed
#: benchmark's shape, which cannot batch (every tick schedules).
_CHAIN_EVENTS = 100_000
_WIRE_ROUND_TRIPS = 3_000
_CAMPAIGN_CELLS = 2
_SKETCH_OBSERVATIONS = 50_000
_DECOMPOSITION_CELLS = 2
_ANALYTIC_CALLS = 20_000

# Same-shape workloads run against the growth-seed commit on the
# reference container (1 CPU, CPython 3.11) — the denominator of the
# perf trajectory.  The seed had no train API, so its headline number
# is the chained-event rate; PR 6's ≥5x target compares the batched
# steady state against it.  ``scripts/bench_compare.py`` gates every
# metric listed here.
_SEED_BASELINE = {
    "scheduler_events_per_sec": 644_621.0,
    "wire_round_trips_per_sec": 34_739.0,
    # First recorded on PR 7 (the subsystem's birth), at ~1/3 of the
    # measured rate on the reference container so the >10% gate tracks
    # real regressions rather than machine noise.
    "decomposition_cells_per_sec": 8.0,
    # First recorded on PR 8 with the result store: the ISSUE's floor,
    # far under the measured ratio, so the gate trips on a store that
    # stopped short-circuiting execution rather than on timer noise.
    "cache_warm_speedup": 10.0,
    # First recorded with the analytic layer, at ~1/3 of the measured
    # rate on the reference container: closed-form predictions must
    # stay cheap enough to sweep inside tests and notebooks.
    "analytic_predict_calls_per_sec": 50_000.0,
}

_rates = {}


def _rate(units, fn):
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return units / elapsed if elapsed > 0 else float("inf")


def _steady_rate(units, fn, rounds=3):
    """Best-of-N rate: steady-state throughput, not cold-start noise.

    The headline metrics gate a >10% regression budget
    (``scripts/bench_compare.py``); a single cold round swings 30%+ on
    allocator and branch-predictor warmup alone, so the trajectory
    metrics take the best of three warm rounds.
    """
    return max(_rate(units, fn) for _ in range(rounds))


@pytest.mark.perf_smoke
def test_smoke_scheduler_train_rate():
    """Headline gate: batched periodic-train steady state (>=3.2M/s)."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1

        sim.schedule_periodic(1e-4, tick, label="probe:loop")
        sim.schedule_periodic(0.01, tick, phase=0.005, label="watchdog:bus")
        sim.run(until=20.0)
        assert count[0] == _TRAIN_EVENTS

    _rates["scheduler_events_per_sec"] = _steady_rate(_TRAIN_EVENTS, run)
    assert _rates["scheduler_events_per_sec"] > 500_000


@pytest.mark.perf_smoke
def test_smoke_scheduler_chain_rate():
    """Fidelity metric: the unbatched general path must not rot either."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < _CHAIN_EVENTS:
                sim.schedule(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count[0] == _CHAIN_EVENTS

    _rates["scheduler_chain_events_per_sec"] = _steady_rate(_CHAIN_EVENTS, run)
    assert _rates["scheduler_chain_events_per_sec"] > 50_000


@pytest.mark.perf_smoke
def test_smoke_wire_round_trip_rate():
    """Batch encode + decode of probe-id-varied packets (sniffer shape)."""
    endpoints = (ip("10.0.0.1"), ip("10.0.0.2"))
    packets = []
    for index in range(_WIRE_ROUND_TRIPS):
        kind = index % 3
        meta = {"probe_id": index + 1}
        if kind == 0:
            payload = IcmpEcho(8, 1, index & 0xFFFF, 56)
        elif kind == 1:
            payload = UdpDatagram(40_000 + (index % 100), 33_434, 512)
        else:
            payload = TcpSegment(40_000 + (index % 100), 80,
                                 index, 0, 0x18, 1024)
        packets.append(Packet(endpoints[0], endpoints[1], payload,
                              meta=meta))

    def run():
        blobs = wire.encode_ipv4_batch(packets)
        for blob in blobs:
            wire.decode_ipv4(blob)

    _rates["wire_round_trips_per_sec"] = _steady_rate(_WIRE_ROUND_TRIPS, run)
    assert _rates["wire_round_trips_per_sec"] > 5_000


@pytest.mark.perf_smoke
def test_smoke_campaign_cell_rate():
    campaign = Campaign(phones=("nexus5",), rtts=(0.02, 0.05),
                        tools=("ping",), count=3)

    def run():
        campaign.run(workers=1)
        assert len(campaign.results) == _CAMPAIGN_CELLS

    _rates["campaign_cells_per_sec"] = _rate(_CAMPAIGN_CELLS, run)
    assert _rates["campaign_cells_per_sec"] > 1


@pytest.mark.perf_smoke
def test_smoke_scenario_build_overhead():
    """Spec construction must stay negligible next to cell execution.

    Campaign grids route every cell through ScenarioSpec (validate +
    JSON round-trip in the parallel path).  Best-of-3 timing of that
    per-cell spec machinery, expressed as a percentage of the measured
    per-cell execution time from ``test_smoke_campaign_cell_rate``
    (which runs earlier in this module).  The 5% gate only trips if
    spec handling grows real work — validation today is microseconds
    against cells that take tens of milliseconds.
    """
    from repro.testbed.scenario import ScenarioSpec

    specs = 200

    def build_round_trip():
        for index in range(specs):
            spec = ScenarioSpec(env="wifi", phone="nexus5", tool="ping",
                                emulated_rtt=0.02, count=3,
                                seed=index * 7919)
            ScenarioSpec.from_dict(spec.to_dict()).to_json()

    best = 0.0
    for _ in range(3):
        best = max(best, _rate(specs, build_round_trip))
    per_spec_seconds = 1.0 / best
    cells_per_sec = _rates["campaign_cells_per_sec"]
    overhead = per_spec_seconds * cells_per_sec * 100.0
    _rates["scenario_build_overhead_pct"] = overhead
    assert overhead <= 5.0


class _ReferenceSimulator(Simulator):
    """The wheel's fast loop with no observability dispatch at all —
    the zero-overhead yardstick for the bench below."""

    def run(self, until=None):
        self._running = True
        self._stopped = False
        try:
            self._run_fast(until)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now


@pytest.mark.perf_smoke
def test_smoke_obs_disabled_overhead():
    """Disabled metrics/spans/tracing must stay ~free on the hot loop.

    Best-of-3 interleaved runs of the chain workload on the stock
    Simulator (obs attached but disabled) versus the reference replica
    above; the gate is the relative throughput loss.  3% is far above
    the one-attribute-check-per-run() cost actually added — the assert
    only trips if instrumentation leaks into the per-event path.
    """

    def workload(sim_cls):
        def run():
            sim = sim_cls(seed=1)
            count = [0]

            def tick():
                count[0] += 1
                if count[0] < 20_000:
                    sim.schedule(1e-4, tick)

            sim.schedule(0.0, tick)
            sim.run()
            assert count[0] == 20_000

        return run

    ref_rate = sim_rate = 0.0
    for _ in range(3):
        ref_rate = max(ref_rate, _rate(20_000, workload(_ReferenceSimulator)))
        sim_rate = max(sim_rate, _rate(20_000, workload(Simulator)))
    overhead = max(0.0, (ref_rate - sim_rate) / ref_rate * 100.0)
    _rates["obs_disabled_overhead_pct"] = overhead
    assert overhead <= 3.0


class _NullSketch:
    """Drop-in that skips sketch maintenance — the yardstick for the
    sketch-observe overhead gate below."""

    def add(self, value, count=1):
        pass


@pytest.mark.perf_smoke
def test_smoke_sketch_observe_overhead():
    """The quantile sketch must stay a modest share of observe() cost.

    ``Histogram.observe`` pays one ``DDSketch.add`` (a ``log`` plus one
    dict update) on top of the bucket scan and min/max/sum bookkeeping.
    Best-of-3 A/B of the same histogram with the sketch swapped for a
    no-op: currently ~50% (the log costs about as much as the bisect
    and stats updates combined); the 60% gate trips if sketch
    maintenance grows real work (a rebalancing pass, per-add
    allocation), which would erode the "enable metrics freely" story
    of docs/OBSERVABILITY.md.
    """
    from repro.obs.metrics import MetricsRegistry

    values = [1e-4 * (1 + (index % 997)) for index in range(1000)]

    def workload(null_sketch):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("perf_seconds")
        if null_sketch:
            hist.sketch = _NullSketch()

        def run():
            observe = hist.observe
            for _ in range(_SKETCH_OBSERVATIONS // len(values)):
                for value in values:
                    observe(value)

        return run

    with_rate = without_rate = 0.0
    for _ in range(3):
        without_rate = max(without_rate,
                           _rate(_SKETCH_OBSERVATIONS, workload(True)))
        with_rate = max(with_rate,
                        _rate(_SKETCH_OBSERVATIONS, workload(False)))
    overhead = max(0.0, (without_rate - with_rate) / without_rate * 100.0)
    _rates["sketch_observe_overhead_pct"] = overhead
    assert overhead <= 60.0


@pytest.mark.perf_smoke
def test_smoke_decomposition_rate():
    """End-to-end decomposition: observed cells -> attribution ->
    merged snapshots -> rendered report.

    The trajectory metric (gated against ``seed_baseline`` by
    ``scripts/bench_compare.py``) covers the whole new pipeline: cells
    run with spans+metrics on, per-probe attribution lands in the
    ``probe_component_seconds`` series, and the campaign report renders
    in all three formats.
    """
    from repro.analysis.decompose import decompose_campaign, render_report

    campaign = Campaign(phones=("nexus5",), rtts=(0.02,),
                        tools=("ping", "acutemon"), count=3)

    def run():
        campaign.run(workers=1, collect_metrics=True)
        report = decompose_campaign(campaign)
        assert len(report.slices) == _DECOMPOSITION_CELLS
        for fmt in ("text", "json", "prom"):
            assert render_report(report, fmt)

    _rates["decomposition_cells_per_sec"] = _rate(_DECOMPOSITION_CELLS, run)
    assert _rates["decomposition_cells_per_sec"] > 1


@pytest.mark.perf_smoke
def test_smoke_analytic_predict_rate():
    """Closed-form prediction throughput (docs/ANALYTIC.md).

    ``predict_for_profile`` is the theory half of the theory-vs-sim
    harness and the ``repro analytic`` CLI; grid sweeps call it per
    cell, so it must stay in the 100k+/s range.  Gated against
    ``seed_baseline`` by ``scripts/bench_compare.py``.
    """
    from repro.analysis.analytic import predict_for_profile

    def run():
        for index in range(_ANALYTIC_CALLS):
            prediction = predict_for_profile(
                "nexus5", offered_load=(index % 7) * 0.5,
                base_rtt=0.02, listen_interval=index % 3)
        assert prediction["psm_mean_delay"] > 0.0

    _rates["analytic_predict_calls_per_sec"] = \
        _steady_rate(_ANALYTIC_CALLS, run)
    assert _rates["analytic_predict_calls_per_sec"] > 50_000


@pytest.mark.perf_smoke
def test_smoke_checkpoint_overhead(tmp_path):
    """Journaling cells must not meaningfully slow a campaign down.

    A checkpointed run (docs/RESILIENCE.md) adds exactly one unit of
    work per completed cell: hash the spec's canonical JSON and append
    one flushed JSONL record to the open journal.  Best-of-3 timing of
    that per-cell unit, expressed as a percentage of the per-cell
    execution time measured by ``test_smoke_campaign_cell_rate``
    (which runs earlier in this module) — the same methodology as
    ``test_smoke_scenario_build_overhead``.  Timing the unit directly
    keeps the gate deterministic where a wall-clock A/B of two ~20ms
    campaign runs drowns a ~30us/cell delta in scheduler noise.  The
    3% gate only trips if checkpointing grows real per-cell work (an
    fsync on the default path, re-serialising results, hashing more
    than once per cell).
    """
    from repro.testbed.resilience import CheckpointJournal

    campaign = Campaign(phones=("nexus5",), rtts=(0.02,),
                        tools=("ping",), count=3)
    campaign.run(workers=1)
    (result,) = campaign.results
    (spec,) = campaign.cells()

    ops = 200
    journal = CheckpointJournal(tmp_path / "perf_checkpoint.jsonl")

    def checkpoint_cells():
        for _ in range(ops):
            journal.append(spec.fingerprint(), result)

    best = 0.0
    with journal:
        for _ in range(3):
            best = max(best, _rate(ops, checkpoint_cells))
    per_cell_seconds = 1.0 / best
    cells_per_sec = _rates["campaign_cells_per_sec"]
    overhead = per_cell_seconds * cells_per_sec * 100.0
    _rates["checkpoint_overhead_pct"] = overhead
    assert overhead <= 3.0


@pytest.mark.perf_smoke
def test_smoke_store_lookup_overhead(tmp_path):
    """Consulting the result store must stay a sliver of cell cost.

    A store-backed cold run (docs/FABRIC.md) adds exactly one unit of
    work per cell: hash the spec's canonical JSON, miss the cache, and
    append the finished record to the writer segment plus one index
    line.  Best-of-3 timing of that unit over 200 distinct specs,
    expressed as a percentage of the per-cell execution time measured
    by ``test_smoke_campaign_cell_rate`` — the same methodology as the
    checkpoint gate above, and the same 3% budget: the gate only trips
    if the store grows real per-cell work (an fsync on the default
    path, a full segment rescan per miss, double hashing).
    """
    from repro.testbed.scenario import ScenarioSpec
    from repro.testbed.store import ResultStore

    campaign = Campaign(phones=("nexus5",), rtts=(0.02,),
                        tools=("ping",), count=3)
    campaign.run(workers=1)
    (result,) = campaign.results

    specs = [ScenarioSpec(env="wifi", phone="nexus5", tool="ping",
                          emulated_rtt=0.02, count=3, seed=index * 7919)
             for index in range(200)]

    def cold_units(store):
        def run():
            for spec in specs:
                fingerprint = spec.fingerprint()
                assert store.get(fingerprint) is None
                store.put(fingerprint, result)

        return run

    best = 0.0
    for attempt in range(3):
        with ResultStore(tmp_path / f"store-{attempt}") as store:
            best = max(best, _rate(len(specs), cold_units(store)))
    per_cell_seconds = 1.0 / best
    cells_per_sec = _rates["campaign_cells_per_sec"]
    overhead = per_cell_seconds * cells_per_sec * 100.0
    _rates["store_lookup_overhead_pct"] = overhead
    assert overhead <= 3.0


@pytest.mark.perf_smoke
def test_smoke_cache_warm_speedup(tmp_path):
    """A cache-warm campaign must beat its cold twin by >=10x.

    The headline number of the result store: a 50-cell sweep runs cold
    into an empty store, then a fresh campaign over the same grid runs
    warm out of it.  The warm run executes zero cells — its cost is
    hashing 50 specs and deserialising 50 cached payloads — so the
    ratio is the store's reason to exist, tracked in the perf
    trajectory and gated against ``seed_baseline`` like the other
    headline metrics.
    """
    from repro.testbed.store import ResultStore

    grid = dict(phones=("nexus5",),
                rtts=tuple(0.01 + 0.002 * index for index in range(25)),
                tools=("ping", "acutemon"), count=1)
    root = tmp_path / "store"

    cold = Campaign(**grid)
    start = time.perf_counter()
    cold.run(workers=1, store=ResultStore(root))
    cold_seconds = time.perf_counter() - start
    assert len(cold.results) == 50

    warm = Campaign(**grid)
    start = time.perf_counter()
    warm.run(workers=1, store=ResultStore(root))
    warm_seconds = time.perf_counter() - start
    assert len(warm.results) == 50
    assert [r.to_dict() for r in warm.results] \
        == [r.to_dict() for r in cold.results]
    stats = {metric["name"]: metric["value"]
             for metric in warm.run_metrics["metrics"]}
    assert stats["campaign.cache_hits"] == 50
    assert stats.get("campaign.cells_run", 0) == 0

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 \
        else float("inf")
    _rates["cache_warm_speedup"] = speedup
    assert speedup >= 10.0


@pytest.mark.perf_smoke
def test_smoke_lint_full_repo_under_budget():
    """A full-repo ``repro lint`` run must stay under 5 seconds.

    The engine is wired into tier-1 (tests/test_lint_clean.py), so its
    latency is tier-1 latency: this gate keeps rule authors honest about
    per-file cost.  The budget covers every registered rule including
    the dynamic registry contract (RL301), on the whole ``src/`` tree,
    with a generous margin over the current cost.
    """
    from repro.lint import run_lint

    src = _REPO_ROOT / "src"
    start = time.perf_counter()
    result = run_lint(src)
    elapsed = time.perf_counter() - start
    assert result.files_scanned > 90
    assert not result.findings
    _rates["lint_full_repo_seconds"] = elapsed
    assert elapsed < 5.0


@pytest.mark.perf_smoke
def test_smoke_emits_bench_json():
    """Persist the rates measured above (runs late in this module)."""
    assert set(_rates) == {"scheduler_events_per_sec",
                           "scheduler_chain_events_per_sec",
                           "wire_round_trips_per_sec",
                           "campaign_cells_per_sec",
                           "decomposition_cells_per_sec",
                           "analytic_predict_calls_per_sec",
                           "scenario_build_overhead_pct",
                           "obs_disabled_overhead_pct",
                           "sketch_observe_overhead_pct",
                           "checkpoint_overhead_pct",
                           "store_lookup_overhead_pct",
                           "cache_warm_speedup",
                           "lint_full_repo_seconds"}
    payload = {key: round(value, 1) for key, value in sorted(_rates.items())}
    payload["seed_baseline"] = _SEED_BASELINE
    payload["workload"] = {
        "scheduler_train_events": _TRAIN_EVENTS,
        "scheduler_chain_events": _CHAIN_EVENTS,
        "wire_round_trips": _WIRE_ROUND_TRIPS,
        "campaign_cells": _CAMPAIGN_CELLS,
        "decomposition_cells": _DECOMPOSITION_CELLS,
        "analytic_predict_calls": _ANALYTIC_CALLS,
        "sketch_observations": _SKETCH_OBSERVATIONS,
        "store_probe_specs": 200,
        "cache_warm_cells": 50,
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    assert json.loads(_BENCH_PATH.read_text())


@pytest.mark.perf_smoke
def test_smoke_bench_compare_gate():
    """The regression gate itself: scripts/bench_compare.py must pass
    on the numbers just written (runs after the emit above)."""
    scripts = _REPO_ROOT / "scripts"
    if str(scripts) not in sys.path:
        sys.path.insert(0, str(scripts))
    import bench_compare

    assert bench_compare.main(["--bench", str(_BENCH_PATH)]) == 0
