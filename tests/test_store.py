"""Unit tests for the persistent content-addressed result store.

The store's contract (docs/FABRIC.md): fingerprints in, byte-identical
payloads out, across processes and campaigns; tolerant reads that turn
corruption into cache misses instead of crashes; an index that is only
ever an accelerator; ``gc`` that compacts without losing a live record.
"""

import json

import pytest

from repro.testbed.campaign import CellResult
from repro.testbed.store import STORE_VERSION, ResultStore


class FakePayload:
    """Minimal ``to_dict``-bearing stand-in for a CellResult."""

    def __init__(self, payload):
        self.payload = payload

    def to_dict(self):
        return self.payload


def fp(n):
    """A deterministic 64-hex-digit pseudo-fingerprint."""
    return f"{n:064x}"


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get_contains(self, store):
        payload = {"phone": "nexus5", "rtts": [0.05, 0.051]}
        store.put(fp(1), FakePayload(payload))
        assert store.get(fp(1)) == payload
        assert store.contains(fp(1))
        assert store.get(fp(2)) is None
        assert not store.contains(fp(2))

    def test_round_trip_survives_reopen(self, store, tmp_path):
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(1)) == {"a": 1}

    def test_real_cell_result_round_trips_exactly(self, store):
        result = CellResult("nexus5", 0.05, "acutemon", False, 1234,
                            [0.051, 0.0505, 0.0522], env="wifi")
        store.put(fp(7), result)
        store.close()
        assert store.get(fp(7)) == result.to_dict()
        assert CellResult.from_dict(store.get(fp(7))).key() \
            == result.key()

    def test_later_record_wins_within_and_across_segments(self, store,
                                                          tmp_path):
        store.put(fp(1), FakePayload({"version": "old"}))
        store.put(fp(1), FakePayload({"version": "mid"}))
        store.close()
        second = ResultStore(tmp_path / "store")
        second.put(fp(1), FakePayload({"version": "new"}))
        second.close()
        assert ResultStore(tmp_path / "store").get(fp(1)) \
            == {"version": "new"}

    def test_ensure_coerces_paths_and_passes_instances(self, tmp_path):
        assert ResultStore.ensure(None) is None
        instance = ResultStore(tmp_path / "store")
        assert ResultStore.ensure(instance) is instance
        coerced = ResultStore.ensure(tmp_path / "other")
        assert isinstance(coerced, ResultStore)
        assert coerced.root == tmp_path / "other"

    def test_context_manager_opens_and_closes(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            store.put(fp(1), FakePayload({"a": 1}))
            assert store._handle is not None
        assert store._handle is None

    def test_durable_put_fsyncs_per_record(self, tmp_path):
        store = ResultStore(tmp_path / "store", durable=True)
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        assert store.get(fp(1)) == {"a": 1}

    def test_private_segment_per_writer(self, tmp_path):
        a = ResultStore(tmp_path / "store")
        b = ResultStore(tmp_path / "store")
        a.put(fp(1), FakePayload({"w": "a"}))
        b.put(fp(2), FakePayload({"w": "b"}))
        a.close()
        b.close()
        names = ResultStore(tmp_path / "store").segment_names()
        assert len(names) == 2 and len(set(names)) == 2


class TestTolerantReads:
    def _segment_path(self, store):
        names = store.segment_names()
        assert len(names) == 1
        return store.segment_dir / names[0]

    def test_wrong_version_record_is_skipped_not_fatal(self, store,
                                                       tmp_path):
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        segment = self._segment_path(store)
        with segment.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 99, "fingerprint": fp(2),
                                     "result": {"future": True}}) + "\n")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(2)) is None
        assert fresh.get(fp(1)) == {"a": 1}
        assert fresh.stats()["skipped"] == 1

    def test_garbled_middle_line_skips_one_record(self, store, tmp_path):
        for n in range(3):
            store.put(fp(n), FakePayload({"n": n}))
        store.close()
        segment = self._segment_path(store)
        lines = segment.read_text(encoding="utf-8").splitlines()
        lines[1] = '{"v": 1, "fingerprint": !!torn!!'
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(0)) == {"n": 0}
        assert fresh.get(fp(1)) is None  # unlike the strict journal
        assert fresh.get(fp(2)) == {"n": 2}

    def test_non_dict_and_shapeless_records_skipped(self, store,
                                                    tmp_path):
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        segment = self._segment_path(store)
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('["not", "a", "dict"]\n')
            handle.write(json.dumps({"v": STORE_VERSION,
                                     "fingerprint": 42,
                                     "result": {}}) + "\n")
            handle.write(json.dumps({"v": STORE_VERSION,
                                     "fingerprint": fp(3),
                                     "result": "not-a-dict"}) + "\n")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(1)) == {"a": 1}
        assert fresh.get(fp(3)) is None
        assert fresh.stats()["skipped"] == 3


class TestIndexAccelerator:
    def test_deleted_index_rebuilds_from_segments(self, store, tmp_path):
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        store.index_path.unlink()
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(1)) == {"a": 1}

    def test_stale_index_entry_triggers_one_rescan(self, store,
                                                   tmp_path):
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        store.index_path.write_text(
            json.dumps({"v": STORE_VERSION, "fingerprint": fp(1),
                        "segment": "seg-gone.jsonl"}) + "\n",
            encoding="utf-8")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(1)) == {"a": 1}

    def test_torn_index_line_costs_one_entry_not_all(self, store,
                                                     tmp_path):
        store.put(fp(1), FakePayload({"a": 1}))
        store.put(fp(2), FakePayload({"b": 2}))
        store.close()
        text = store.index_path.read_text(encoding="utf-8")
        lines = text.splitlines()
        store.index_path.write_text(
            lines[0] + "\n" + lines[1][:10] + "\n", encoding="utf-8")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get(fp(1)) == {"a": 1}
        assert fresh.get(fp(2)) == {"b": 2}  # via the rescan fallback

    def test_missing_store_directory_is_just_empty(self, tmp_path):
        fresh = ResultStore(tmp_path / "never-written")
        assert fresh.get(fp(1)) is None
        assert fresh.segment_names() == []
        assert fresh.stats()["segments"] == 0


class TestGc:
    def test_gc_compacts_duplicates_and_stale_versions(self, store,
                                                       tmp_path):
        store.put(fp(1), FakePayload({"version": "old"}))
        store.put(fp(2), FakePayload({"b": 2}))
        store.close()
        second = ResultStore(tmp_path / "store")
        second.put(fp(1), FakePayload({"version": "new"}))
        second.close()
        names = store.segment_names()
        with (store.segment_dir / names[0]).open(
                "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 99, "fingerprint": fp(3),
                                     "result": {}}) + "\n")
        worker = ResultStore(tmp_path / "store")
        summary = worker.gc()
        # Dropped: the superseded fp(1) plus the foreign-version line.
        assert summary == {"live": 2, "removed_segments": 2,
                           "dropped": 2}
        assert worker.get(fp(1)) == {"version": "new"}
        assert worker.get(fp(2)) == {"b": 2}
        stats = worker.stats()
        assert stats["segments"] == 1 and stats["records"] == 2

    def test_gc_is_idempotent(self, store):
        store.put(fp(1), FakePayload({"a": 1}))
        store.close()
        first = store.gc()
        second = store.gc()
        assert first["live"] == second["live"] == 1
        assert second["dropped"] == 0
        assert store.get(fp(1)) == {"a": 1}

    def test_gc_on_empty_store(self, store):
        assert store.gc() == {"live": 0, "removed_segments": 0,
                              "dropped": 0}


class TestStats:
    def test_stats_shape_and_counts(self, store):
        for n in range(4):
            store.put(fp(n), FakePayload({"n": n}))
        store.put(fp(0), FakePayload({"n": "dup"}))
        store.close()
        stats = store.stats()
        assert set(stats) == {"path", "segments", "records", "live",
                              "skipped", "bytes"}
        assert stats["segments"] == 1
        assert stats["records"] == 4  # dict per segment: later dup wins
        assert stats["live"] == 4
        assert stats["bytes"] > 0
        assert stats["path"].endswith("store")
