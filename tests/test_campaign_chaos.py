"""Chaos tests: campaigns survive crashes, hangs, and dying workers.

The acceptance grid is 12 mixed WiFi+cellular cells.  The properties
pinned here are the resilience layer's whole contract:

* killing the sweep after k completed cells, then resuming from the
  checkpoint, yields ``campaign.results`` *and* ``merged_metrics()``
  bit-identical to an uninterrupted serial run, for several k;
* an always-failing cell ends as a quarantined ``CellFailure`` after
  exactly N retries without failing the sweep;
* a transiently-failing cell clears within its retry budget and the
  run stays bit-identical;
* a hung cell trips the per-cell timeout and quarantines as
  ``kind="timeout"``;
* a worker killed mid-shard degrades the pool to the serial path,
  which finishes the unmerged remainder — nothing lost, nothing run
  twice;
* a truncated journal (any byte boundary) never duplicates or
  corrupts results on resume;
* a shard whose worker dies mid-grid is stolen back in-process and the
  sharded run stays bit-identical;
* a garbled or torn result-store segment degrades to cache misses —
  damaged cells re-execute, everything else stays cached, and the warm
  run still matches the reference;
* two writers appending to one store concurrently never clobber each
  other, and ``gc`` keeps every live record.
"""

import json
import multiprocessing

import pytest

from tests.chaos import (
    ChaosInjector, SimulatedCrash, corrupt_store_segment, crash_after,
)
from repro.testbed.campaign import Campaign, CellResult
from repro.testbed.fabric import FabricRunner, MultiprocessTransport
from repro.testbed.parallel import ParallelCampaignRunner
from repro.testbed.store import ResultStore

#: The ISSUE's acceptance grid: 2 envs x 1 phone x 3 RTTs x 2 tools.
GRID = dict(envs=("wifi", "cellular-lte"), phones=("nexus5",),
            rtts=(0.02, 0.05, 0.08), tools=("acutemon", "ping"),
            count=2)

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def make_campaign():
    return Campaign(**GRID)


def serialized(campaign):
    return json.dumps([result.to_dict() for result in campaign.results],
                      sort_keys=True)


def counters(campaign):
    return {metric["name"]: metric["value"]
            for metric in campaign.run_metrics["metrics"]}


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted serial run every chaos scenario must match."""
    campaign = make_campaign()
    campaign.run(workers=1, collect_metrics=True)
    assert len(campaign.results) == 12
    return {
        "results": serialized(campaign),
        "metrics": json.dumps(campaign.merged_metrics(), sort_keys=True),
        "keys": [result.key() for result in campaign.results],
        "seeds": [result.seed for result in campaign.results],
    }


class TestCrashResume:
    @pytest.mark.parametrize("k", [1, 5, 11])
    def test_resume_after_crash_is_bit_identical(self, k, tmp_path,
                                                 reference):
        checkpoint = tmp_path / "sweep.jsonl"
        crashed = make_campaign()
        with pytest.MonkeyPatch.context() as mp:
            dying = crash_after(k, mp)
            with pytest.raises(SimulatedCrash):
                crashed.run(workers=1, checkpoint=checkpoint,
                            collect_metrics=True)
        assert dying.state["completed"] == k
        journaled = [line for line in
                     checkpoint.read_text(encoding="utf-8").splitlines()
                     if line]
        assert len(journaled) == k

        resumed = make_campaign()
        resumed.run(workers=1, checkpoint=checkpoint, resume=True,
                    collect_metrics=True)
        assert serialized(resumed) == reference["results"]
        assert json.dumps(resumed.merged_metrics(), sort_keys=True) \
            == reference["metrics"]
        assert counters(resumed)["campaign.cells_resumed"] == k
        assert counters(resumed)["campaign.cells_run"] == 12 - k

    def test_parallel_resume_matches_serial_reference(self, tmp_path,
                                                      reference):
        checkpoint = tmp_path / "sweep.jsonl"
        crashed = make_campaign()
        with pytest.MonkeyPatch.context() as mp:
            crash_after(5, mp)
            with pytest.raises(SimulatedCrash):
                crashed.run(workers=1, checkpoint=checkpoint,
                            collect_metrics=True)
        resumed = make_campaign()
        resumed.run(workers=3, checkpoint=checkpoint, resume=True,
                    collect_metrics=True)
        assert serialized(resumed) == reference["results"]
        assert json.dumps(resumed.merged_metrics(), sort_keys=True) \
            == reference["metrics"]

    def test_resume_reruns_nothing_already_journaled(self, tmp_path,
                                                     reference):
        checkpoint = tmp_path / "sweep.jsonl"
        first = make_campaign()
        first.run(workers=1, checkpoint=checkpoint, collect_metrics=True)
        # A second resumed run must not execute a single cell.
        injector = ChaosInjector(
            always_fail={seed for seed in reference["seeds"]})
        with pytest.MonkeyPatch.context() as mp:
            injector.install(mp)
            again = make_campaign()
            again.run(workers=1, checkpoint=checkpoint, resume=True,
                      collect_metrics=True)
        assert injector.calls == {}
        assert serialized(again) == reference["results"]
        assert counters(again)["campaign.cells_resumed"] == 12


class TestQuarantine:
    def test_always_failing_cell_quarantined_after_exact_retries(
            self, monkeypatch, reference):
        bad_seed = reference["seeds"][3]
        retries = 3
        injector = ChaosInjector(always_fail={bad_seed})
        injector.install(monkeypatch)
        campaign = make_campaign()
        campaign.run(workers=1, retries=retries)
        assert len(campaign.results) == 11
        assert len(campaign.quarantine) == 1
        failure = campaign.quarantine[0]
        assert failure.failure is True
        assert failure.kind == "error"
        assert failure.seed == bad_seed
        assert failure.attempts == retries + 1
        assert "ChaosError" in failure.error
        assert "always fails" in failure.traceback
        assert injector.calls[bad_seed] == retries + 1
        stats = counters(campaign)
        assert stats["campaign.retries"] == retries
        assert stats["campaign.cells_quarantined"] == 1
        # The surviving 11 cells are untouched by the bad one.
        good_keys = [key for key in reference["keys"]
                     if key != failure.key()]
        assert [result.key() for result in campaign.results] == good_keys

    def test_transient_failure_clears_within_budget(self, monkeypatch,
                                                    reference):
        flaky_seed = reference["seeds"][7]
        injector = ChaosInjector(fail_times={flaky_seed: 2})
        injector.install(monkeypatch)
        campaign = make_campaign()
        campaign.run(workers=1, retries=2, collect_metrics=True)
        assert campaign.quarantine == []
        assert injector.calls[flaky_seed] == 3
        assert serialized(campaign) == reference["results"]
        assert json.dumps(campaign.merged_metrics(), sort_keys=True) \
            == reference["metrics"]
        assert counters(campaign)["campaign.retries"] == 2

    def test_hung_cell_trips_timeout_and_quarantines(self, monkeypatch,
                                                     reference):
        hung_seed = reference["seeds"][0]
        injector = ChaosInjector(hang={hung_seed}, hang_seconds=30.0)
        injector.install(monkeypatch)
        campaign = make_campaign()
        campaign.run(workers=1, cell_timeout=0.2, retries=1)
        assert len(campaign.quarantine) == 1
        failure = campaign.quarantine[0]
        assert failure.kind == "timeout"
        assert failure.attempts == 2
        assert failure.timeouts == 2
        assert "wall-clock budget" in failure.error
        assert len(campaign.results) == 11
        stats = counters(campaign)
        assert stats["campaign.cell_timeouts"] == 2

    def test_quarantined_cell_not_journaled_so_resume_retries_it(
            self, tmp_path, reference):
        bad_seed = reference["seeds"][3]
        checkpoint = tmp_path / "sweep.jsonl"
        with pytest.MonkeyPatch.context() as mp:
            ChaosInjector(always_fail={bad_seed}).install(mp)
            broken = make_campaign()
            broken.run(workers=1, retries=1, checkpoint=checkpoint,
                       collect_metrics=True)
        assert len(broken.quarantine) == 1
        # The fault is gone now; resume runs only the quarantined cell
        # and the sweep converges on the uninterrupted reference.
        healed = make_campaign()
        healed.run(workers=1, checkpoint=checkpoint, resume=True,
                   collect_metrics=True)
        assert healed.quarantine == []
        assert serialized(healed) == reference["results"]
        stats = counters(healed)
        assert stats["campaign.cells_resumed"] == 11
        assert stats["campaign.cells_run"] == 1


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="worker-kill chaos needs the fork start method")
class TestWorkerDeath:
    def test_killed_worker_degrades_pool_and_completes(self, monkeypatch,
                                                       reference):
        victim_seed = reference["seeds"][6]
        injector = ChaosInjector(kill_worker={victim_seed})
        injector.install(monkeypatch)
        campaign = make_campaign()
        # Run under a fault policy so the in-parent rerun of the victim
        # cell quarantines instead of failing the sweep.
        from repro.testbed.resilience import FaultPolicy
        runner = ParallelCampaignRunner(campaign, workers=2,
                                        start_method="fork")
        runner.run(fault_policy=FaultPolicy(retries=0),
                   collect_metrics=True)
        assert runner.mode == "parallel-degraded"
        assert len(campaign.results) + len(campaign.quarantine) == 12
        assert len(campaign.quarantine) == 1
        failure = campaign.quarantine[0]
        assert failure.seed == victim_seed
        assert "ran in-parent" in failure.error
        stats = counters(campaign)
        assert stats["campaign.pool_failures"] == 1
        # Surviving cells are bit-identical to the reference run.
        by_key = {key: None for key in reference["keys"]}
        reference_results = json.loads(reference["results"])
        for payload in reference_results:
            by_key[CellResult.from_dict(payload).key()] = payload
        for result in campaign.results:
            assert result.to_dict() == by_key[result.key()]

    def test_progress_fires_once_per_cell_despite_worker_death(
            self, monkeypatch, reference):
        victim_seed = reference["seeds"][6]
        ChaosInjector(kill_worker={victim_seed}).install(monkeypatch)
        from repro.testbed.resilience import FaultPolicy
        campaign = make_campaign()
        runner = ParallelCampaignRunner(campaign, workers=2,
                                        start_method="fork")
        seen = []
        runner.run(progress=lambda spec: seen.append(spec.seed),
                   fault_policy=FaultPolicy())
        assert sorted(seen) == sorted(reference["seeds"])


class TestCrashPointSweep:
    """Truncate the journal at *every* byte; resume must stay clean."""

    SMALL = dict(envs=("wifi",), phones=("nexus5",), rtts=(0.02, 0.05),
                 tools=("acutemon", "ping"), count=2)

    @staticmethod
    def _stub_run_cell(spec, collect_metrics=False):
        # Deterministic, instant stand-in for a real cell: the sweep
        # needs hundreds of resumes, one per byte boundary.
        return CellResult(spec.phone, spec.emulated_rtt, spec.tool,
                          spec.cross_traffic, spec.seed,
                          [spec.seed * 1e-6, spec.emulated_rtt],
                          env=spec.env)

    def test_every_byte_boundary_resumes_cleanly(self, tmp_path,
                                                 monkeypatch):
        from repro.testbed import campaign as campaign_module
        monkeypatch.setattr(campaign_module, "run_cell",
                            self._stub_run_cell)
        full = Campaign(**self.SMALL)
        checkpoint = tmp_path / "full.jsonl"
        full.run(workers=1, checkpoint=checkpoint)
        reference = serialized(full)
        reference_keys = [result.key() for result in full.results]
        journal_bytes = checkpoint.read_bytes()
        # A record is readable once all its content bytes survive; the
        # trailing newline itself is optional for the final line.
        intact_line_ends = [offset
                            for offset, byte in enumerate(journal_bytes)
                            if byte == 0x0A]
        for cut in range(len(journal_bytes) + 1):
            truncated = tmp_path / "cut.jsonl"
            truncated.write_bytes(journal_bytes[:cut])
            campaign = Campaign(**self.SMALL)
            campaign.run(workers=1, checkpoint=truncated, resume=True)
            assert serialized(campaign) == reference, (
                f"resume diverged at byte {cut}")
            keys = [result.key() for result in campaign.results]
            assert keys == reference_keys, (
                f"duplicate or missing cells at byte {cut}")
            stats = counters(campaign)
            cached = sum(1 for end in intact_line_ends if end <= cut)
            assert stats.get("campaign.cells_resumed", 0) == cached
            assert stats.get("campaign.cells_run", 0) == 4 - cached


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="shard-kill chaos needs the fork start method")
class TestShardDeath:
    """A dead shard is stolen back in-process, bit-identically."""

    def test_killed_shard_is_stolen_and_run_stays_identical(
            self, monkeypatch, reference):
        victim_seed = reference["seeds"][6]
        injector = ChaosInjector(kill_shard={victim_seed})
        injector.install(monkeypatch)
        campaign = make_campaign()
        runner = FabricRunner(
            campaign, shard_count=4,
            transport=MultiprocessTransport(workers=2,
                                            start_method="fork"))
        runner.run(collect_metrics=True)
        assert runner.mode == "sharded"
        assert campaign.quarantine == []
        assert serialized(campaign) == reference["results"]
        assert json.dumps(campaign.merged_metrics(), sort_keys=True) \
            == reference["metrics"]
        stats = counters(campaign)
        # At least the victim's shard failed over; a broken pool may
        # take unfinished siblings with it — all must be stolen.
        assert stats["campaign.shards_stolen"] >= 1
        assert stats["campaign.shards_planned"] \
            >= stats["campaign.shards_stolen"]
        assert stats["campaign.cells_run"] == 12

    def test_progress_fires_once_per_cell_despite_shard_death(
            self, monkeypatch, reference):
        victim_seed = reference["seeds"][6]
        ChaosInjector(kill_shard={victim_seed}).install(monkeypatch)
        campaign = make_campaign()
        runner = FabricRunner(
            campaign, shard_count=4,
            transport=MultiprocessTransport(workers=2,
                                            start_method="fork"))
        seen = []
        runner.run(progress=lambda spec: seen.append(spec.seed))
        assert sorted(seen) == sorted(reference["seeds"])


class TestStoreCorruption:
    """A damaged store segment costs cache hits, never correctness."""

    def _cold_store(self, tmp_path, reference):
        root = tmp_path / "store"
        cold = make_campaign()
        cold.run(workers=1, collect_metrics=True, store=ResultStore(root))
        assert serialized(cold) == reference["results"]
        return root

    @pytest.mark.parametrize("mode,drop_index", [
        ("garble", False),   # unreadable record mid-segment
        ("truncate", False),  # torn final record (crash during put)
        ("garble", True),    # ... and the index accelerator is gone too
    ])
    def test_damage_degrades_to_misses_and_recovers(self, tmp_path,
                                                    reference, mode,
                                                    drop_index):
        root = self._cold_store(tmp_path, reference)
        damaged = corrupt_store_segment(root, mode=mode,
                                        drop_index=drop_index)
        # One writer, so one segment; each mode kills exactly one record.
        assert len(damaged) == 1
        warm = make_campaign()
        warm.run(workers=1, collect_metrics=True, store=ResultStore(root))
        assert warm.quarantine == []
        assert serialized(warm) == reference["results"]
        assert json.dumps(warm.merged_metrics(), sort_keys=True) \
            == reference["metrics"]
        stats = counters(warm)
        assert stats["campaign.cells_run"] == 1
        assert stats["campaign.cache_hits"] == 11
        assert stats["campaign.cache_misses"] == 1
        # The re-executed cell was written back: the next run is whole.
        healed = make_campaign()
        healed.run(workers=1, collect_metrics=True,
                   store=ResultStore(root))
        assert serialized(healed) == reference["results"]
        assert counters(healed)["campaign.cache_hits"] == 12

    def test_gc_scrubs_damage_from_the_store(self, tmp_path, reference):
        root = self._cold_store(tmp_path, reference)
        corrupt_store_segment(root, mode="garble")
        summary = ResultStore(root).gc()
        assert summary["live"] == 11  # the garbled record is gone
        assert summary["removed_segments"] == 1
        stats = ResultStore(root).stats()
        assert stats["segments"] == 1
        assert stats["live"] == 11 and stats["skipped"] == 0


class TestConcurrentWriters:
    """Two stores appending to one root never clobber each other."""

    def test_interleaved_writers_and_gc_keep_every_record(
            self, tmp_path, reference):
        root = tmp_path / "store"
        cold = make_campaign()
        cold.run(workers=1, collect_metrics=True)
        fingerprints = [spec.fingerprint()
                        for spec in make_campaign().cells()]
        writer_a = ResultStore(root)
        writer_b = ResultStore(root)
        for i, (fp, result) in enumerate(zip(fingerprints,
                                             cold.results)):
            (writer_a if i % 2 == 0 else writer_b).put(fp, result)
        writer_a.close()
        writer_b.close()
        stats = ResultStore(root).stats()
        assert stats["segments"] == 2  # private segment per writer
        assert stats["records"] == 12 and stats["live"] == 12
        # The merged store warms a campaign without executing a cell.
        injector = ChaosInjector(
            always_fail=set(reference["seeds"]))
        with pytest.MonkeyPatch.context() as mp:
            injector.install(mp)
            warm = make_campaign()
            warm.run(workers=1, collect_metrics=True,
                     store=ResultStore(root))
        assert injector.calls == {}
        assert serialized(warm) == reference["results"]
        assert json.dumps(warm.merged_metrics(), sort_keys=True) \
            == reference["metrics"]
        assert counters(warm)["campaign.cache_hits"] == 12
        # Compaction folds both writers' segments into one, losslessly.
        summary = ResultStore(root).gc()
        assert summary == {"live": 12, "removed_segments": 2,
                           "dropped": 0}
        with pytest.MonkeyPatch.context() as mp:
            injector.install(mp)
            again = make_campaign()
            again.run(workers=1, collect_metrics=True,
                      store=ResultStore(root))
        assert serialized(again) == reference["results"]
