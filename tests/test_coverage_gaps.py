"""Edge-case tests for corners the main suites exercise only indirectly."""

import pytest

from repro.net.addresses import ip
from repro.sim.scheduler import Simulator
from repro.sim.trace import TraceRecorder
from tests.conftest import make_wifi_cell


class TestWifiHost:
    def test_wifi_host_full_stack(self, sim):
        _channel, _ap, server, hosts = make_wifi_cell(sim, n_hosts=2)
        host = hosts[0]
        # TCP through the AP from a plain WiFi host.
        responses = []
        conn = host.stack.tcp.connect(server.ip_addr, 80)
        conn.on_connected = lambda c: c.send(120, meta={"probe_id": 5})
        conn.on_data = lambda c, n, m: responses.append((n, m.get("probe_id")))
        sim.run(until=1.0)
        assert responses == [(230, 5)]

    def test_wifi_host_ignores_other_hosts_traffic(self, sim):
        _channel, _ap, server, hosts = make_wifi_cell(sim, n_hosts=2)
        got = [[], []]
        for index, host in enumerate(hosts):
            host.stack.udp_bind(5000, got[index].append)
        server.stack.send_udp(hosts[0].ip_addr, 5000, payload_size=8)
        sim.run(until=1.0)
        assert len(got[0]) == 1 and got[1] == []

    def test_unassociated_station_cannot_send(self, sim):
        from repro.net.addresses import MacAddress
        from repro.net.packet import IcmpEcho, Packet
        from repro.wifi.channel import WifiChannel
        from repro.wifi.sta import Station

        channel = WifiChannel(sim, name="lonely")
        station = Station(sim, channel, MacAddress.from_index(9))
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1))
        with pytest.raises(RuntimeError):
            station.send_packet(packet)


class TestTraceIntegration:
    def test_sdio_sleep_traced(self):
        from repro.testbed.topology import Testbed

        testbed = Testbed(seed=91)
        testbed.sim.trace = TraceRecorder(enabled=True)
        testbed.add_phone("nexus5")
        testbed.run(1.0)
        assert testbed.sim.trace.count("sdio", message="bus sleep") >= 1

    def test_trace_disabled_by_default(self):
        sim = Simulator(seed=1)
        assert not sim.trace.enabled


class TestAcuteMonVariants:
    def _build(self, seed=92):
        from repro.core.measurement import ProbeCollector
        from repro.testbed.topology import Testbed

        testbed = Testbed(seed=seed, emulated_rtt=0.03)
        phone = testbed.add_phone("nexus5")
        collector = ProbeCollector(phone)
        testbed.settle(0.5)
        return testbed, phone, collector

    def test_warmup_only_no_background(self):
        from repro.core.acutemon import AcuteMon, AcuteMonConfig

        testbed, phone, collector = self._build()
        config = AcuteMonConfig(probe_count=5, warmup_enabled=True,
                                background_enabled=False)
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            testbed.sim.step()
        assert monitor.warmups_sent == 1
        assert monitor.background_sent == 0
        assert len(monitor.rtts()) == 5

    def test_runtime_not_enforced_when_disabled(self):
        from repro.core.acutemon import AcuteMon, AcuteMonConfig

        testbed, phone, collector = self._build(seed=93)
        phone.runtime = "dalvik"
        config = AcuteMonConfig(probe_count=3,
                                enforce_native_runtime=False)
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            testbed.sim.step()
        assert phone.runtime == "dalvik"

    def test_custom_dpre_db(self):
        from repro.core.acutemon import AcuteMon, AcuteMonConfig

        testbed, phone, collector = self._build(seed=94)
        config = AcuteMonConfig(probe_count=3, dpre=0.035, db=0.010)
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        start_time = testbed.sim.now
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            testbed.sim.step()
        # First probe no earlier than dpre after the warm-up.
        first_send = min(r.user_send for r in collector.records("probe")
                         if r.user_send is not None)
        assert first_send >= start_time + 0.035 - 1e-9


class TestApBeaconUnderLoad:
    def test_beacons_survive_saturation(self, sim):
        channel, ap, server, hosts = make_wifi_cell(sim)
        # Saturate the uplink from the host.
        from repro.net.iperf import UdpLoadGenerator, UdpSink

        UdpSink(server, 5001)
        generator = UdpLoadGenerator(
            sim, hosts[0].stack, server.ip_addr, 5001, flows=10,
            rate_bps=3e6, rng=sim.rng.stream("load"))
        generator.start()
        beacon_times = []
        channel.add_monitor(
            lambda f, ts, te, st: beacon_times.append(ts)
            if type(f).__name__ == "BeaconFrame" else None)
        sim.run(until=2.0)
        generator.stop()
        # Priority access: beacons keep flowing at roughly their period.
        assert len(beacon_times) >= 17
        gaps = [b - a for a, b in zip(beacon_times, beacon_times[1:])]
        assert max(gaps) < 0.125  # never more than ~20% late


class TestCliCampaign:
    def test_campaign_command(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "campaign.json"
        assert main(["--count", "3", "campaign", "--rtts", "20",
                     "--tools", "acutemon", "--out", str(out_path)]) == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "Campaign results" in out
        from repro.testbed.campaign import Campaign

        loaded = Campaign.load(out_path)
        assert len(loaded) == 1
