"""Integration tests: the instrumented state machines and the ISSUE's
acceptance criteria (Prometheus + Chrome-trace exports of one cell)."""

import json

import pytest

from repro.obs import enable_observability, to_chrome_trace, to_prometheus
from repro.sim.scheduler import Simulator
from repro.testbed.experiments import (
    acutemon_experiment,
    ping2_experiment,
    ping_experiment,
)


class TestSchedulerInstrumentation:
    def test_fired_counters_by_label_category(self):
        sim = enable_observability(Simulator(seed=0))
        sim.schedule(0.1, lambda: None, label="timer:psm")
        sim.schedule(0.2, lambda: None, label="timer:psm")
        sim.schedule(0.3, lambda: None)
        sim.run()
        assert sim.metrics.counter("scheduler_events_fired_total",
                                   labels={"category": "timer"}).value == 2
        assert sim.metrics.counter("scheduler_events_fired_total",
                                   labels={"category": "event"}).value == 1

    def test_cancel_counters(self):
        sim = enable_observability(Simulator(seed=0))
        event = sim.schedule(0.5, lambda: None, label="timeout:probe")
        event.cancel()
        sim.run()
        assert sim.events_canceled == 1
        assert sim.metrics.counter("scheduler_events_canceled_total",
                                   labels={"category": "timeout"}).value == 1

    def test_events_canceled_counts_without_metrics(self):
        sim = Simulator(seed=0)
        sim.schedule(0.5, lambda: None).cancel()
        assert sim.events_canceled == 1
        assert len(sim.metrics) == 0  # disabled registry stays empty

    def test_handler_self_time_is_volatile(self):
        sim = enable_observability(Simulator(seed=0))
        sim.schedule(0.1, lambda: None, label="x:y")
        sim.run()
        names = {entry["name"]
                 for entry in sim.metrics.snapshot()["metrics"]}
        assert "scheduler_handler_self_seconds_total" not in names
        names = {entry["name"] for entry in
                 sim.metrics.snapshot(include_volatile=True)["metrics"]}
        assert "scheduler_handler_self_seconds_total" in names

    def test_step_also_records(self):
        sim = enable_observability(Simulator(seed=0))
        sim.schedule(0.1, lambda: None, label="a:b")
        while sim.step():
            pass
        assert sim.metrics.counter("scheduler_events_fired_total",
                                   labels={"category": "a"}).value == 1


class TestSdioInstrumentation:
    @pytest.fixture(scope="class")
    def result(self):
        # 1s probe interval >> the idle window, so the bus sleeps and
        # every probe pays a promotion (the paper's Table 3 regime).
        return ping_experiment(count=5, interval=1.0, seed=1, observe=True)

    def test_promotion_spans_and_histogram(self, result):
        sim = result.testbed.sim
        promotions = [s for s in sim.spans if s.name == "sdio.promotion"]
        assert promotions
        hist = sim.metrics.get("sdio_promotion_seconds")
        assert hist.count == len(promotions)
        # Tprom is tens of ms (paper: ~20-50ms depending on chipset).
        assert 1e-3 < hist.p50 < 0.1

    def test_sleep_wake_counters_match_spans(self, result):
        sim = result.testbed.sim
        bus = result.phone.driver.bus
        wakes = sim.metrics.get("sdio_wakes_total",
                                labels={"bus": bus.name})
        sleeps = sim.metrics.get("sdio_sleeps_total",
                                 labels={"bus": bus.name})
        assert wakes.value > 0 and sleeps.value > 0
        asleep = [s for s in sim.spans if s.name == "sdio.asleep"]
        assert len(asleep) == wakes.value
        assert all(s.duration > 0 for s in asleep)

    def test_driver_delay_histograms(self, result):
        sim = result.testbed.sim
        dvsend = sim.metrics.get("driver_dvsend_seconds")
        dvrecv = sim.metrics.get("driver_dvrecv_seconds")
        assert dvsend.count >= 5 and dvrecv.count >= 5
        # dvsend absorbs the promotion delay, so its max dwarfs dvrecv's.
        assert dvsend.maximum > dvrecv.maximum


class TestPsmInstrumentation:
    @pytest.fixture(scope="class")
    def acute(self):
        return acutemon_experiment(count=10, seed=3, observe=True)

    def test_transitions_counted_per_state(self, acute):
        sim = acute.testbed.sim
        transitions = [m for m in sim.metrics.metrics()
                       if m.name == "psm_transitions_total"]
        assert transitions
        for metric in transitions:
            assert dict(metric.labels)["to"] in ("AWAKE", "DOZE")
        # The settle window dozes the phone; the warm-up wakes it.
        assert sum(m.value for m in transitions) >= 2

    def test_beacon_wait_histogram_bounded_by_interval(self, acute):
        sim = acute.testbed.sim
        hist = sim.metrics.get("psm_beacon_wait_seconds")
        assert hist.count > 0
        # A listen-interval-0 station waits at most ~one beacon interval
        # (102.4ms) plus guard/air time per beacon.
        assert hist.maximum < 0.11

    def test_doze_spans_pair_with_transitions(self, acute):
        sim = acute.testbed.sim
        dozes = [s for s in sim.spans if s.name == "psm.doze"]
        assert dozes
        assert all(s.duration > 0 for s in dozes)

    def test_ap_buffering_counted_and_spanned(self):
        result = ping2_experiment(count=6, seed=2, observe=True)
        sim = result.testbed.sim
        buffered = sim.metrics.get("ap_ps_frames_buffered_total",
                                   labels={"ap": "ap"})
        assert buffered.value > 0
        spans = [s for s in sim.spans if s.name == "psm.buffered"]
        assert spans
        hist = sim.metrics.get("psm_buffered_seconds")
        assert hist.count == len(spans)


class TestAcuteMonInstrumentation:
    @pytest.fixture(scope="class")
    def acute(self):
        return acutemon_experiment(count=10, seed=3, observe=True)

    def test_warmup_and_background_counters(self, acute):
        sim = acute.testbed.sim
        assert sim.metrics.counter("acutemon_warmup_packets_total").value \
            == acute.acutemon.warmups_sent == 1
        assert sim.metrics.counter(
            "acutemon_background_packets_total").value \
            == acute.acutemon.background_sent > 0

    def test_probe_spans_match_results(self, acute):
        spans = [s for s in acute.testbed.sim.spans
                 if s.name == "measurement.probe"]
        assert len(spans) == len(acute.acutemon.results) == 10
        for span, outcome in zip(spans, acute.acutemon.results):
            assert span.fields["outcome"] == "ok"
            assert span.duration == pytest.approx(outcome.rtt)

    def test_inflation_histogram_positive(self, acute):
        hist = acute.testbed.sim.metrics.get("probe_inflation_seconds",
                                             labels={"kind": "probe"})
        assert hist.count == 10
        # du >= dn by construction: the user timestamps wrap the network.
        assert hist.minimum >= 0


class TestAcceptanceExports:
    """ISSUE acceptance: one observed cell exports both formats."""

    @pytest.fixture(scope="class")
    def cell(self):
        return acutemon_experiment(count=10, seed=3, observe=True)

    def test_prometheus_has_required_histograms(self, cell):
        text = to_prometheus(cell.metrics_snapshot())
        assert "# TYPE sdio_promotion_seconds histogram" in text
        assert "sdio_promotion_seconds_bucket" in text
        assert "# TYPE psm_beacon_wait_seconds histogram" in text
        assert "psm_beacon_wait_seconds_bucket" in text

    def test_chrome_trace_reconstructs_delay_decomposition(self, cell):
        trace = to_chrome_trace(cell.spans)
        tracks = {e["args"]["name"] for e in trace["traceEvents"]
                  if e["ph"] == "M"}
        assert {"sdio", "psm", "measurement"} <= tracks
        # The first probe span should overlap the sdio promotion span:
        # that overlap IS the inflation the paper decomposes.
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        json.dumps(trace)  # loadable by chrome://tracing
        assert any(e["name"] == "measurement.probe" for e in complete)
        assert any(e["name"] == "sdio.promotion" for e in complete)

    def test_enabling_observability_never_changes_results(self, cell):
        plain = acutemon_experiment(count=10, seed=3)
        assert plain.user_rtts == cell.user_rtts
        assert plain.layers == cell.layers
