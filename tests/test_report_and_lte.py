"""Tests for the markdown report builder and the LTE RRC preset."""

import statistics

import pytest

from repro.analysis.report import MarkdownReport, campaign_report
from repro.cellular.rrc import RrcConfig
from repro.cellular.testbed import CellularTestbed
from repro.core.measurement import ProbeCollector
from repro.tools.ping import PingTool


class TestMarkdownReport:
    def test_structure(self):
        report = MarkdownReport("Demo")
        report.add_section("Setup", "one phone")
        report.add_table(("a", "b"), [(1, 2), (3, 4)])
        report.add_code("pytest benchmarks/", language="bash")
        text = report.render()
        assert text.startswith("# Demo")
        assert "## Setup" in text
        assert "| a | b |" in text
        assert "```bash" in text

    def test_table_row_width_checked(self):
        report = MarkdownReport("Demo")
        with pytest.raises(ValueError):
            report.add_table(("a", "b"), [(1,)])

    def test_rtt_summary_with_truth(self):
        report = MarkdownReport("Demo")
        report.add_rtt_summary("acutemon", [0.0305, 0.0308, 0.0306],
                               true_rtt=0.030)
        text = report.render()
        assert "median 30.6" in text.replace("0 ms", "0")
        assert "median error" in text

    def test_overhead_and_cdf_tables(self):
        report = MarkdownReport("Demo")
        report.add_overhead_table({"20ms": [0.002, 0.0025, 0.003]})
        report.add_cdf_table({"ping": [0.043, 0.044, 0.045]})
        text = report.render()
        assert "quartiles" in text
        assert "p50 (ms)" in text

    def test_save(self, tmp_path):
        path = tmp_path / "report.md"
        MarkdownReport("Demo").add_paragraph("hello").save(path)
        assert path.read_text().startswith("# Demo")

    def test_campaign_report(self):
        from repro.testbed.campaign import Campaign

        campaign = Campaign(count=5, tools=("acutemon",))
        campaign.run()
        report = campaign_report(campaign)
        text = report.render()
        assert "## Cells" in text
        assert "nexus5" in text
        assert "## Worst cell" in text


class TestLtePreset:
    def test_lte_promotion_much_faster_than_3g(self):
        lte = RrcConfig.lte()
        umts = RrcConfig.umts_3g()
        assert lte.promo_idle_dch.mean < umts.promo_idle_dch.mean / 5

    def test_lte_inflation_smaller_but_present(self):
        def sparse_ping_rtts(config, seed):
            testbed = CellularTestbed(seed=seed, emulated_rtt=0.030,
                                      rrc_config=config)
            collector = ProbeCollector(testbed.phone)
            tool = PingTool(testbed.phone, collector, testbed.server_ip,
                            interval=20.0, timeout=8.0)
            samples = tool.run_sync(4)
            ordered = sorted(samples, key=lambda s: s.sent_at)
            return [s.rtt for s in ordered if s.rtt is not None]

        lte = statistics.median(sparse_ping_rtts(RrcConfig.lte(), 501))
        umts = statistics.median(sparse_ping_rtts(RrcConfig.umts_3g(), 502))
        # Both inflate idle probes; LTE by ~0.1-0.5 s, 3G by seconds.
        assert 0.08 < lte < 0.8
        assert umts > 1.5
        assert lte < umts / 4
