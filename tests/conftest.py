"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.net.addresses import MacAddress, ip
from repro.net.arp import ArpTable
from repro.net.host import Host
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.scheduler import Simulator


@pytest.fixture
def sim():
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def lan(sim):
    """Two wired hosts (a, b) on a switch, ready to exchange IP packets."""
    arp = ArpTable()
    switch = Switch(sim)

    def add_host(name, addr, index):
        host = Host(sim, name, ip(addr), MacAddress.from_index(index), arp,
                    rng=sim.rng.stream(f"test:{name}"))
        link = Link(sim, name=f"{name}-sw")
        host.nic.attach_link(link)
        switch.new_port(link)
        return host

    host_a = add_host("a", "10.0.0.1", 1)
    host_b = add_host("b", "10.0.0.2", 2)
    return sim, host_a, host_b


def make_wifi_cell(sim, psm=None, n_hosts=1):
    """A channel + AP + wired server + N WiFi hosts, for WiFi-layer tests.

    Returns ``(channel, ap, server_host, [wifi_hosts])``.
    """
    from repro.net.servers import MeasurementServer
    from repro.wifi.ap import AccessPoint
    from repro.wifi.channel import WifiChannel
    from repro.wifi.host import WifiHost
    from repro.wifi.sta import PsmConfig

    channel = WifiChannel(sim, name="test-wlan")
    ap = AccessPoint(sim, channel, MacAddress.from_index(0x10),
                     ip("192.168.1.1"), "192.168.1.0/24",
                     rng=sim.rng.stream("test:ap"))
    arp = ArpTable()
    wired_link = Link(sim)
    ap.add_wired_port("eth0", ip("10.0.0.1"), "10.0.0.0/24", arp,
                      link=wired_link)
    switch = Switch(sim)
    switch.new_port(wired_link)
    server = Host(sim, "server", ip("10.0.0.2"), MacAddress.from_index(0x20),
                  arp, gateway=ip("10.0.0.1"),
                  rng=sim.rng.stream("test:server"))
    server_link = Link(sim)
    server.nic.attach_link(server_link)
    switch.new_port(server_link)
    MeasurementServer(server)

    hosts = []
    for index in range(n_hosts):
        host = WifiHost(
            sim, f"wifi{index}", channel, ap, ip(f"192.168.1.{10 + index}"),
            MacAddress.from_index(0x30 + index),
            psm=psm if psm is not None else PsmConfig.disabled(),
            rng=sim.rng.stream(f"test:wifi{index}"),
        )
        hosts.append(host)
    return channel, ap, server, hosts


def run_until(sim, predicate, deadline):
    """Step the simulator until ``predicate()`` or the deadline."""
    while not predicate() and sim.now < deadline:
        if not sim.step():
            break
    return predicate()
