"""Differential property tests: timing wheel vs a reference heap.

The PR 6 scheduler swap (binary heap → hierarchical timing wheel) is
safe only if the total event order is untouched: ``(time, seq)``
ordering with FIFO ties at equal timestamps, lazy cancellation, and the
inclusive ``run(until=...)`` boundary.  These tests replay hypothesis-
generated workloads — one-shot schedules, schedules and cancellations
issued from inside callbacks, and a mid-run ``run(until=...)`` split —
against both the real :class:`~repro.sim.Simulator` and a textbook
heap scheduler, and require identical firing logs.  The whole suite
sweeps several wheel geometries (slot widths) so no bucket-boundary
case can hide behind the default geometry.
"""

import heapq
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

#: Slot widths to sweep: default geometry, slots far narrower than the
#: delays (deep overflow traffic), slots far wider (everything lands in
#: a handful of buckets), and an irrational-ish width that guarantees
#: delays never align with bucket boundaries.
GEOMETRIES = [None, 0.001, 0.5, 7.3]

#: Delay pool biased toward collisions (FIFO ties) and the wheel's
#: default ~4 s window edge, mixed with arbitrary floats.
delays = st.one_of(
    st.sampled_from([0.0, 1.0 / 256.0, 0.25, 1.0, 3.996, 4.0,
                     4.0000001, 10.0, 60.0]),
    st.floats(min_value=0.0, max_value=30.0,
              allow_nan=False, allow_infinity=False),
)


class ReferenceScheduler:
    """Textbook heap event loop: the behavior the wheel must reproduce."""

    def __init__(self):
        self._queue = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, delay, fn):
        handle = [self.now + delay, next(self._seq), fn, False]
        heapq.heappush(self._queue, handle)
        return handle

    @staticmethod
    def cancel(handle):
        handle[3] = True

    def run(self, until=None):
        while self._queue:
            fire_time = self._queue[0][0]
            if until is not None and fire_time > until:
                break
            _, _, fn, canceled = heapq.heappop(self._queue)
            if canceled:
                continue
            self.now = fire_time
            fn()
        if until is not None and until > self.now:
            self.now = until


@st.composite
def workloads(draw):
    """A scripted workload: root events, callback actions, a run split.

    Each root event ``i`` carries a small action list executed inside
    its callback: schedule a fresh event (exercising insert-while-
    running and window re-anchoring) or cancel root event ``j``
    (exercising lazy cancellation, including self- and already-fired
    targets).  ``until`` splits the run so the inclusive boundary and
    clock advance on an idle scheduler are both checked mid-stream.
    """
    count = draw(st.integers(min_value=1, max_value=20))
    roots = [draw(delays) for _ in range(count)]
    actions = []
    for _ in range(count):
        acts = []
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            if draw(st.booleans()):
                acts.append(("sched", draw(delays)))
            else:
                acts.append(("cancel",
                             draw(st.integers(0, count - 1))))
        actions.append(acts)
    until = draw(st.one_of(st.none(), delays))
    return roots, actions, until


def _execute(schedule, cancel, run, clock, workload):
    """Drive one scheduler through a workload; return its firing log."""
    roots, actions, until = workload
    log = []
    handles = {}

    def make_callback(index, key):
        def callback():
            log.append((key, clock()))
            if index is None:
                return
            for position, action in enumerate(actions[index]):
                if action[0] == "sched":
                    nested_key = ("nested", index, position)
                    handles[nested_key] = schedule(
                        action[1], make_callback(None, nested_key))
                else:
                    cancel(handles[action[1]])
        return callback

    for index, delay in enumerate(roots):
        handles[index] = schedule(delay, make_callback(index, index))
    run(until)
    checkpoint = (tuple(log), clock())
    run(None)
    return checkpoint, tuple(log), clock()


def _run_reference(workload):
    ref = ReferenceScheduler()
    return _execute(ref.schedule, ref.cancel, ref.run,
                    lambda: ref.now, workload)


def _run_wheel(workload, slot_seconds):
    kwargs = {}
    if slot_seconds is not None:
        kwargs["wheel_slot_seconds"] = slot_seconds
    sim = Simulator(seed=0, **kwargs)
    return _execute(
        lambda delay, fn: sim.schedule(delay, fn),
        lambda event: event.cancel(),
        lambda until: sim.run(until=until),
        lambda: sim.now, workload)


class TestWheelMatchesReferenceHeap:
    @pytest.mark.parametrize("slot_seconds", GEOMETRIES)
    @given(workload=workloads())
    @settings(max_examples=60, deadline=None)
    def test_identical_firing_order_and_clock(self, slot_seconds,
                                              workload):
        reference = _run_reference(workload)
        wheel = _run_wheel(workload, slot_seconds)
        assert wheel == reference

    @given(workload=workloads())
    @settings(max_examples=40, deadline=None)
    def test_geometry_is_pure_perf_knob(self, workload):
        """Every geometry produces the same run — slot width can only
        change speed, never order."""
        runs = {slot: _run_wheel(workload, slot)
                for slot in GEOMETRIES}
        baseline = runs[None]
        assert all(result == baseline for result in runs.values())


class TestBoundaryPins:
    """Deterministic pins for the cases hypothesis is aimed at."""

    def test_fifo_ties_preserved_across_bucket_fill(self):
        sim = Simulator(seed=0)
        ref = ReferenceScheduler()
        order_sim, order_ref = [], []
        # Interleave registrations so seq order differs from spatial
        # order; include exact ties at 1.0 and at the window edge.
        pattern = [1.0, 4.0, 1.0, 0.0, 4.0, 1.0, 8.5, 0.0]
        for mark, delay in enumerate(pattern):
            sim.schedule(delay, order_sim.append, mark)
            ref.schedule(delay, (lambda m: lambda: order_ref.append(m))(mark))
        sim.run()
        ref.run()
        assert order_sim == order_ref

    def test_until_boundary_inclusive_exact_exclusive_epsilon(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule(1.0, fired.append, "on-boundary")
        sim.schedule(1.0 + 1e-9, fired.append, "past-boundary")
        sim.run(until=1.0)
        assert fired == ["on-boundary"]
        assert sim.pending() == 1
        sim.run()
        assert fired == ["on-boundary", "past-boundary"]

    def test_cancellation_of_far_overflow_entry(self):
        sim = Simulator(seed=0)
        fired = []
        victim = sim.schedule(500.0, fired.append, "victim")
        sim.schedule(0.5, victim.cancel)
        sim.schedule(900.0, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]
        assert sim.pending() == 0
