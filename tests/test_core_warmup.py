"""Tests for the warm-up timing policy (§4.1)."""

import pytest

from repro.core.calibration import CalibrationResult
from repro.core.warmup import DEFAULT_DB, DEFAULT_DPRE, WarmupPlan, WarmupPolicy
from repro.phone.profiles import NEXUS_4, NEXUS_5, PHONES


class TestWarmupPlan:
    def test_paper_defaults_are_20ms(self):
        assert DEFAULT_DPRE == pytest.approx(0.020)
        assert DEFAULT_DB == pytest.approx(0.020)

    def test_valid_plan(self):
        plan = WarmupPlan(dpre=0.020, db=0.020, t_prom=0.014, t_is=0.050,
                          t_ip=0.205)
        assert plan.valid
        assert plan.violations() == []
        assert plan.demotion_floor == pytest.approx(0.050)

    def test_dpre_below_tprom_invalid(self):
        plan = WarmupPlan(dpre=0.010, db=0.020, t_prom=0.014, t_is=0.050,
                          t_ip=0.205)
        assert not plan.valid
        assert any("Tprom" in v for v in plan.violations())

    def test_dpre_above_demotion_floor_invalid(self):
        plan = WarmupPlan(dpre=0.060, db=0.020, t_prom=0.014, t_is=0.050,
                          t_ip=0.205)
        assert not plan.valid
        assert any("demotes again" in v for v in plan.violations())

    def test_db_above_floor_invalid(self):
        plan = WarmupPlan(dpre=0.020, db=0.055, t_prom=0.014, t_is=0.050,
                          t_ip=0.205)
        assert not plan.valid
        assert any("background" in v for v in plan.violations())

    def test_floor_uses_minimum_of_tis_tip(self):
        # Nexus 4: Tip (40 ms) < Tis: PSM is the binding constraint.
        plan = WarmupPlan(dpre=0.020, db=0.020, t_prom=0.003, t_is=0.050,
                          t_ip=0.030)
        assert plan.demotion_floor == pytest.approx(0.030)


class TestWarmupPolicy:
    def test_paper_defaults_valid_for_all_five_phones(self):
        # §4.2: "the empirical values work effectively" on every phone.
        for profile in PHONES.values():
            policy = WarmupPolicy.for_profile(profile)
            plan = policy.plan()
            assert plan.valid, (profile.key, plan.violations())

    def test_recommend_satisfies_constraints(self):
        for profile in PHONES.values():
            plan = WarmupPolicy.for_profile(profile).recommend()
            assert plan.valid, profile.key

    def test_recommend_infeasible_raises(self):
        policy = WarmupPolicy(t_prom=0.050, t_is=0.040, t_ip=0.060)
        with pytest.raises(ValueError):
            policy.recommend()

    def test_for_profile_uses_worst_case_wake(self):
        policy = WarmupPolicy.for_profile(NEXUS_5)
        assert policy.t_prom == pytest.approx(
            NEXUS_5.chipset.wake_delay.high)
        assert policy.t_is == pytest.approx(0.050)

    def test_nexus4_constraint_is_psm(self):
        policy = WarmupPolicy.for_profile(NEXUS_4)
        plan = policy.plan()
        # Tip - jitter = 25 ms; Tis = 25 ms: the floor is tight but > 20 ms.
        assert plan.demotion_floor > 0.020

    def test_from_calibration(self):
        calibration = CalibrationResult(t_is=0.05, t_prom=0.012, t_ip=0.2)
        policy = WarmupPolicy.from_calibration(calibration)
        assert policy.plan().valid

    def test_negative_timers_rejected(self):
        with pytest.raises(ValueError):
            WarmupPolicy(t_prom=-0.01, t_is=0.05, t_ip=0.2)
