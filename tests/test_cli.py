"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--seed", "7", "--count", "5",
                                          "phones"])
        assert args.seed == 7 and args.count == 5

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--phone", "nexus4", "--rtt", "60",
             "--cross-traffic"])
        assert args.phone == "nexus4"
        assert args.rtt == 60.0
        assert args.cross_traffic

    def test_unknown_phone_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--phone", "pixel"])


class TestCommands:
    def test_phones_lists_all_profiles(self, capsys):
        assert main(["phones"]) == 0
        out = capsys.readouterr().out
        for key in ("nexus5", "nexus4", "htc_one", "xperia_j",
                    "galaxy_grand"):
            assert key in out
        assert "BCM4339" in out

    def test_table3_runs_small(self, capsys):
        assert main(["--count", "5", "table3"]) == 0
        out = capsys.readouterr().out
        assert "dvsend" in out and "dvrecv" in out
        assert "Enabled" in out and "Disabled" in out

    def test_overheads_runs_small(self, capsys):
        assert main(["--count", "5", "overheads", "--phone", "nexus4"]) == 0
        out = capsys.readouterr().out
        assert "du_k" in out and "dk_n" in out

    def test_compare_runs_small(self, capsys):
        assert main(["--count", "5", "compare"]) == 0
        out = capsys.readouterr().out
        for tool in ("acutemon", "ping", "httping", "javaping"):
            assert tool in out
