"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main

FIXTURE = (pathlib.Path(__file__).resolve().parent / "data"
           / "lint_fixture.py")


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--seed", "7", "--count", "5",
                                          "phones"])
        assert args.seed == 7 and args.count == 5

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--phone", "nexus4", "--rtt", "60",
             "--cross-traffic"])
        assert args.phone == "nexus4"
        assert args.rtt == 60.0
        assert args.cross_traffic

    def test_unknown_phone_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--phone", "pixel"])

    def test_obs_options(self):
        args = build_parser().parse_args(
            ["obs", "--phone", "nexus4", "--rtt", "60", "--tool", "ping",
             "--out", "prefix"])
        assert args.phone == "nexus4"
        assert args.rtt == 60.0
        assert args.tool == "ping"
        assert args.out == "prefix"

    def test_campaign_metrics_out_option(self):
        args = build_parser().parse_args(
            ["campaign", "--metrics-out", "metrics.prom"])
        assert args.metrics_out == "metrics.prom"
        assert build_parser().parse_args(["campaign"]).metrics_out is None

    def test_campaign_env_option(self):
        args = build_parser().parse_args(
            ["campaign", "--env", "wifi", "cellular-lte"])
        assert args.env == ["wifi", "cellular-lte"]
        assert build_parser().parse_args(["campaign"]).env == ["wifi"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--env", "ethernet"])

    def test_campaign_resilience_options(self):
        args = build_parser().parse_args(
            ["campaign", "--checkpoint", "sweep.jsonl", "--resume",
             "--cell-timeout", "30", "--retries", "2",
             "--retry-backoff", "0.5"])
        assert args.checkpoint == "sweep.jsonl"
        assert args.resume
        assert args.cell_timeout == 30.0
        assert args.retries == 2
        assert args.retry_backoff == 0.5

    def test_campaign_resilience_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.checkpoint is None
        assert not args.resume
        assert args.cell_timeout is None
        assert args.retries == 0
        assert args.retry_backoff == 0.0

    def test_scenario_run_options(self):
        args = build_parser().parse_args(
            ["scenario", "run", "--env", "cellular-lte",
             "--tool", "acutemon", "--phone", "nexus4", "--rtt", "50",
             "--interval", "0.5", "--observe"])
        assert args.scenario_command == "run"
        assert args.env == "cellular-lte"
        assert args.tool == "acutemon"
        assert args.phone == "nexus4"
        assert args.rtt == 50.0
        assert args.interval == 0.5
        assert args.observe and not args.cross_traffic

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_lint_options(self):
        args = build_parser().parse_args(
            ["lint", "src", "--format", "sarif", "--baseline", "b.json"])
        assert args.paths == ["src"]
        assert args.format == "sarif"
        assert args.baseline == "b.json"
        assert build_parser().parse_args(["lint"]).paths == []
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])

    def test_campaign_fabric_options(self):
        args = build_parser().parse_args(
            ["campaign", "--shards", "4", "--store", "cache-dir"])
        assert args.shards == 4
        assert args.store == "cache-dir"
        defaults = build_parser().parse_args(["campaign"])
        assert defaults.shards is None and defaults.store is None

    def test_cache_options(self):
        args = build_parser().parse_args(
            ["cache", "stats", "--store", "cache-dir"])
        assert args.cache_command == "stats"
        assert args.store == "cache-dir"
        assert build_parser().parse_args(
            ["cache", "gc", "--store", "d"]).cache_command == "gc"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])  # --store required

    def test_scenario_rejects_unknown_env_and_tool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "--env",
                                       "ethernet"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "--tool",
                                       "warpspeed"])


class TestCommands:
    def test_phones_lists_all_profiles(self, capsys):
        assert main(["phones"]) == 0
        out = capsys.readouterr().out
        for key in ("nexus5", "nexus4", "htc_one", "xperia_j",
                    "galaxy_grand"):
            assert key in out
        assert "BCM4339" in out

    def test_table3_runs_small(self, capsys):
        assert main(["--count", "5", "table3"]) == 0
        out = capsys.readouterr().out
        assert "dvsend" in out and "dvrecv" in out
        assert "Enabled" in out and "Disabled" in out

    def test_overheads_runs_small(self, capsys):
        assert main(["--count", "5", "overheads", "--phone", "nexus4"]) == 0
        out = capsys.readouterr().out
        assert "du_k" in out and "dk_n" in out

    def test_compare_runs_small(self, capsys):
        assert main(["--count", "5", "compare"]) == 0
        out = capsys.readouterr().out
        for tool in ("acutemon", "ping", "httping", "javaping"):
            assert tool in out

    def test_obs_prints_histograms_and_exports(self, capsys, tmp_path):
        prefix = tmp_path / "cell"
        assert main(["--count", "5", "obs", "--out", str(prefix)]) == 0
        out = capsys.readouterr().out
        assert "sdio_promotion_seconds" in out
        assert "psm_beacon_wait_seconds" in out
        assert "p50=" in out
        prom = (tmp_path / "cell.prom").read_text()
        assert "sdio_promotion_seconds_bucket" in prom
        assert (tmp_path / "cell.jsonl").read_text().strip()
        assert (tmp_path / "cell.trace.json").read_text().startswith("{")

    def test_campaign_metrics_out_writes_merged_snapshot(self, capsys,
                                                         tmp_path):
        path = tmp_path / "merged.prom"
        assert main(["--count", "4", "campaign", "--rtts", "20",
                     "--tools", "acutemon", "--metrics-out",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "wrote merged metrics" in out
        text = path.read_text()
        assert "sdio_promotion_seconds_bucket" in text
        assert "psm_beacon_wait_seconds_bucket" in text

    def test_campaign_sweeps_environments(self, capsys):
        assert main(["--count", "3", "campaign", "--env", "wifi",
                     "cellular-lte", "--rtts", "20", "--tools",
                     "ping"]) == 0
        out = capsys.readouterr().out
        assert "over wifi" in out and "over cellular-lte" in out
        assert "Env" in out

    def test_campaign_checkpoint_and_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt.jsonl"
        base = ["--count", "3", "campaign", "--rtts", "20", "--tools",
                "ping", "--checkpoint", str(checkpoint)]
        assert main(base) == 0
        capsys.readouterr()
        assert checkpoint.read_text().strip()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed 1 cell(s) from checkpoint" in out

    def test_campaign_resume_without_checkpoint_errors(self, capsys):
        assert main(["campaign", "--resume"]) == 2
        assert "--resume requires --checkpoint" \
            in capsys.readouterr().out

    def test_campaign_shards_and_workers_conflict(self, capsys):
        assert main(["campaign", "--shards", "2", "--workers", "4"]) == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def test_campaign_store_cold_then_warm(self, capsys, tmp_path):
        store = tmp_path / "cache"
        base = ["--count", "3", "campaign", "--rtts", "20", "--tools",
                "ping", "--store", str(store)]
        assert main(base) == 0
        assert "store cache: 0 hit(s), 1 miss(es)" \
            in capsys.readouterr().out
        assert main(base) == 0
        assert "store cache: 1 hit(s), 0 miss(es)" \
            in capsys.readouterr().out

    def test_campaign_sharded_run_reports_shards(self, capsys):
        assert main(["--count", "3", "campaign", "--rtts", "20",
                     "--tools", "ping", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "shards: 1 dispatched, 0 stolen" in out
        assert "finished" in out

    def test_campaign_quarantined_cells_exit_nonzero(self, capsys,
                                                     monkeypatch):
        from tests.chaos import ChaosInjector
        # The single grid cell has seed 0 (base seed 0, index 0).
        ChaosInjector(always_fail={0}).install(monkeypatch)
        assert main(["--count", "3", "campaign", "--rtts", "20",
                     "--tools", "ping", "--retries", "1"]) == 1
        assert "Quarantined cells" in capsys.readouterr().out

    def test_cache_stats_and_gc(self, capsys, tmp_path):
        store = tmp_path / "cache"
        assert main(["--count", "3", "campaign", "--rtts", "20",
                     "--tools", "ping", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "1 live cell(s)" in out
        assert "1 record(s) in 1 segment(s)" in out
        assert main(["cache", "gc", "--store", str(store)]) == 0
        assert "gc: kept 1 live cell(s), removed 1 segment(s), " \
            "dropped 0 stale or superseded record(s)" \
            in capsys.readouterr().out

    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for key in ("wifi", "cellular-3g", "cellular-lte"):
            assert key in out
        for tool in ("acutemon", "ping2", "mobiperf"):
            assert tool in out
        assert "nexus5" in out

    def test_scenario_run_cellular_acutemon(self, capsys):
        assert main(["--count", "4", "scenario", "run", "--env",
                     "cellular-lte", "--tool", "acutemon"]) == 0
        out = capsys.readouterr().out
        assert "cellular-lte" in out
        assert "probes: 4" in out
        assert "user RTT" in out

    def test_lint_clean_on_package_source(self, capsys):
        assert main(["lint"]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_fixture_fails_with_expected_rules(self, capsys):
        assert main(["lint", str(FIXTURE), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert {row["rule"] for row in doc["findings"]} == {
            "RL001", "RL002", "RL101", "RL102", "RL103", "RL104",
            "RL105", "RL106", "RL107", "RL201", "RL202", "RL203",
        }

    def test_lint_update_baseline_round_trip(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(FIXTURE), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        assert main(["lint", str(FIXTURE), "--baseline",
                     str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "lint clean" in out and "19 baselined" in out

    def test_lint_update_baseline_requires_path(self, capsys):
        assert main(["lint", str(FIXTURE), "--update-baseline"]) == 2

    def test_scenario_spec_save_and_load(self, capsys, tmp_path):
        spec_path = tmp_path / "cell.json"
        assert main(["--count", "3", "scenario", "run", "--tool", "ping",
                     "--interval", "0.05", "--save-spec",
                     str(spec_path)]) == 0
        first = capsys.readouterr().out
        assert "saved spec to" in first
        assert main(["scenario", "run", "--spec", str(spec_path)]) == 0
        second = capsys.readouterr().out
        # Same spec, same seed: the reported medians agree exactly.
        assert first.splitlines()[-2:] == second.splitlines()[-2:]
