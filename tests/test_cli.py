"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--seed", "7", "--count", "5",
                                          "phones"])
        assert args.seed == 7 and args.count == 5

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--phone", "nexus4", "--rtt", "60",
             "--cross-traffic"])
        assert args.phone == "nexus4"
        assert args.rtt == 60.0
        assert args.cross_traffic

    def test_unknown_phone_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--phone", "pixel"])

    def test_obs_options(self):
        args = build_parser().parse_args(
            ["obs", "--phone", "nexus4", "--rtt", "60", "--tool", "ping",
             "--out", "prefix"])
        assert args.phone == "nexus4"
        assert args.rtt == 60.0
        assert args.tool == "ping"
        assert args.out == "prefix"

    def test_campaign_metrics_out_option(self):
        args = build_parser().parse_args(
            ["campaign", "--metrics-out", "metrics.prom"])
        assert args.metrics_out == "metrics.prom"
        assert build_parser().parse_args(["campaign"]).metrics_out is None


class TestCommands:
    def test_phones_lists_all_profiles(self, capsys):
        assert main(["phones"]) == 0
        out = capsys.readouterr().out
        for key in ("nexus5", "nexus4", "htc_one", "xperia_j",
                    "galaxy_grand"):
            assert key in out
        assert "BCM4339" in out

    def test_table3_runs_small(self, capsys):
        assert main(["--count", "5", "table3"]) == 0
        out = capsys.readouterr().out
        assert "dvsend" in out and "dvrecv" in out
        assert "Enabled" in out and "Disabled" in out

    def test_overheads_runs_small(self, capsys):
        assert main(["--count", "5", "overheads", "--phone", "nexus4"]) == 0
        out = capsys.readouterr().out
        assert "du_k" in out and "dk_n" in out

    def test_compare_runs_small(self, capsys):
        assert main(["--count", "5", "compare"]) == 0
        out = capsys.readouterr().out
        for tool in ("acutemon", "ping", "httping", "javaping"):
            assert tool in out

    def test_obs_prints_histograms_and_exports(self, capsys, tmp_path):
        prefix = tmp_path / "cell"
        assert main(["--count", "5", "obs", "--out", str(prefix)]) == 0
        out = capsys.readouterr().out
        assert "sdio_promotion_seconds" in out
        assert "psm_beacon_wait_seconds" in out
        assert "p50=" in out
        prom = (tmp_path / "cell.prom").read_text()
        assert "sdio_promotion_seconds_bucket" in prom
        assert (tmp_path / "cell.jsonl").read_text().strip()
        assert (tmp_path / "cell.trace.json").read_text().startswith("{")

    def test_campaign_metrics_out_writes_merged_snapshot(self, capsys,
                                                         tmp_path):
        path = tmp_path / "merged.prom"
        assert main(["--count", "4", "campaign", "--rtts", "20",
                     "--tools", "acutemon", "--metrics-out",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "wrote merged metrics" in out
        text = path.read_text()
        assert "sdio_promotion_seconds_bucket" in text
        assert "psm_beacon_wait_seconds_bucket" in text
