"""Unit tests for the DCF channel: contention, collisions, monitors."""

import pytest

from repro.net.addresses import MacAddress, ip
from repro.net.packet import Packet, UdpDatagram
from repro.wifi.channel import Radio, WifiChannel
from repro.wifi.frames import BeaconFrame, DataFrame
from repro.wifi.phy import PhyParams


class RecordingRadio(Radio):
    def __init__(self, sim, channel, mac, name=""):
        super().__init__(sim, channel, mac, name=name)
        self.delivered = []
        self.transmitted = []
        self.dropped = []

    def frame_delivered(self, frame):
        super().frame_delivered(frame)
        self.delivered.append((self.sim.now, frame))

    def frame_transmitted(self, frame):
        super().frame_transmitted(frame)
        self.transmitted.append((self.sim.now, frame))

    def frame_dropped(self, frame):
        self.dropped.append(frame)


def make_cell(sim, n=2):
    channel = WifiChannel(sim, name="t")
    radios = [
        RecordingRadio(sim, channel, MacAddress.from_index(i + 1), name=f"r{i}")
        for i in range(n)
    ]
    return channel, radios


def data_frame(src, dst, size=100):
    packet = Packet(ip("192.168.1.2"), ip("10.0.0.2"),
                    UdpDatagram(1000, 2000, size))
    return DataFrame(dst.mac, src.mac, packet)


class TestBasicTransmission:
    def test_unicast_delivery(self, sim):
        channel, (a, b) = make_cell(sim)
        frame = data_frame(a, b)
        a.enqueue_frame(frame)
        sim.run(until=0.1)
        assert [f for _, f in b.delivered] == [frame]
        assert [f for _, f in a.transmitted] == [frame]
        assert channel.stats.transmissions == 1

    def test_delivery_after_difs_backoff_and_airtime(self, sim):
        channel, (a, b) = make_cell(sim)
        frame = data_frame(a, b)
        a.enqueue_frame(frame)
        sim.run(until=0.1)
        phy = channel.phy
        arrival = b.delivered[0][0]
        min_time = phy.difs + phy.airtime(frame.wire_size, phy.data_rate_bps)
        max_time = min_time + phy.cw_min * phy.slot_time
        assert min_time <= arrival <= max_time

    def test_phy_stamp_applied_to_packet(self, sim):
        channel, (a, b) = make_cell(sim)
        frame = data_frame(a, b)
        a.enqueue_frame(frame)
        sim.run(until=0.1)
        assert "phy" in frame.packet.stamps
        assert frame.packet.stamps["phy"] < b.delivered[0][0]

    def test_queued_frames_all_delivered_in_order(self, sim):
        channel, (a, b) = make_cell(sim)
        frames = [data_frame(a, b, size=i) for i in range(10)]
        for frame in frames:
            a.enqueue_frame(frame)
        sim.run(until=0.5)
        assert [f for _, f in b.delivered] == frames

    def test_broadcast_reaches_all_listeners(self, sim):
        channel, radios = make_cell(sim, n=4)
        beacon = BeaconFrame(radios[0].mac, 100)
        radios[0].enqueue_frame(beacon, priority=True)
        sim.run(until=0.1)
        for radio in radios[1:]:
            assert [f for _, f in radio.delivered] == [beacon]

    def test_sender_does_not_hear_own_broadcast(self, sim):
        channel, radios = make_cell(sim, n=2)
        beacon = BeaconFrame(radios[0].mac, 100)
        radios[0].enqueue_frame(beacon, priority=True)
        sim.run(until=0.1)
        assert radios[0].delivered == []


class TestContention:
    def test_two_senders_serialize(self, sim):
        channel, (a, b) = make_cell(sim)
        for _ in range(20):
            a.enqueue_frame(data_frame(a, b, 1000))
            b.enqueue_frame(data_frame(b, a, 1000))
        sim.run(until=1.0)
        assert len(a.delivered) == 20 and len(b.delivered) == 20
        # No two deliveries at the same instant (one transmission at a time).
        times = sorted(t for t, _ in a.delivered + b.delivered)
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_collisions_occur_and_resolve(self, sim):
        channel, radios = make_cell(sim, n=6)
        # Six saturated senders all aimed at radio 0: ties are inevitable.
        for _ in range(50):
            for radio in radios[1:]:
                radio.enqueue_frame(data_frame(radio, radios[0], 500))
        sim.run(until=5.0)
        assert channel.stats.collisions > 0
        assert channel.stats.retries >= channel.stats.collisions
        # Everything still gets through eventually.
        assert len(radios[0].delivered) == 50 * 5

    def test_retry_limit_drops_frame(self, sim):
        # A receiver that never listens: every attempt fails, frame drops.
        channel, (a, b) = make_cell(sim)

        class DeafRadio(RecordingRadio):
            @property
            def receiver_active(self):
                return False

        deaf = DeafRadio(sim, channel, MacAddress.from_index(99), name="deaf")
        frame = data_frame(a, deaf)
        a.enqueue_frame(frame)
        sim.run(until=2.0)
        assert a.dropped == [frame]
        assert channel.stats.drops == 1
        assert deaf.delivered == []

    def test_beacon_priority_wins_contention(self, sim):
        channel, (ap, sta) = make_cell(sim)
        # Saturate the station, then queue a beacon: it must not starve.
        for _ in range(30):
            sta.enqueue_frame(data_frame(sta, ap, 1470))
        beacon = BeaconFrame(ap.mac, 100)
        ap.enqueue_frame(beacon, priority=True)
        sim.run(until=0.02)
        assert any(isinstance(f, BeaconFrame) for _, f in sta.delivered)

    def test_frame_enqueued_mid_transmission_not_lost(self, sim):
        # Regression: a frame enqueued while the radio's previous frame is
        # on the air must not be clobbered when that transmission completes.
        channel, (a, b) = make_cell(sim)
        first = data_frame(a, b, 1470)
        a.enqueue_frame(first)
        # Step until the first transmission has started (channel busy).
        while not channel.is_busy and sim.step():
            pass
        mid = data_frame(a, b, 50)
        late = data_frame(a, b, 60)
        a.enqueue_frame(mid)   # becomes a contender during the busy window
        a.enqueue_frame(late)  # sits in the radio queue
        sim.run(until=1.0)
        delivered = [f for _, f in b.delivered]
        assert delivered == [first, mid, late]

    def test_channel_busy_flag(self, sim):
        channel, (a, b) = make_cell(sim)
        a.enqueue_frame(data_frame(a, b, 1470))
        # Step until the transmission begins.
        while not channel.is_busy and sim.step():
            pass
        assert channel.is_busy


class TestMonitors:
    def test_monitor_sees_all_transmissions(self, sim):
        channel, (a, b) = make_cell(sim)
        seen = []
        channel.add_monitor(lambda f, ts, te, st: seen.append((f, ts, te, st)))
        frame = data_frame(a, b)
        a.enqueue_frame(frame)
        sim.run(until=0.1)
        assert len(seen) == 1
        frame_seen, ts, te, status = seen[0]
        assert frame_seen is frame and status == "ok"
        assert te > ts

    def test_monitor_timestamp_precedes_delivery(self, sim):
        channel, (a, b) = make_cell(sim)
        seen = []
        channel.add_monitor(lambda f, ts, te, st: seen.append(ts))
        a.enqueue_frame(data_frame(a, b))
        sim.run(until=0.1)
        assert seen[0] <= b.delivered[0][0]

    def test_protection_time_delays_data_start(self, sim):
        phy = PhyParams(protection_time=120e-6)
        channel = WifiChannel(sim, phy=phy, name="prot")
        a = RecordingRadio(sim, channel, MacAddress.from_index(1))
        b = RecordingRadio(sim, channel, MacAddress.from_index(2))
        starts = []
        channel.add_monitor(lambda f, ts, te, st: starts.append(ts))
        a.enqueue_frame(data_frame(a, b))
        sim.run(until=0.1)
        assert starts[0] >= phy.difs + phy.protection_time


class TestRadioQueue:
    def test_queue_overflow_drops(self, sim):
        channel, (a, b) = make_cell(sim)
        a.queue.packet_limit = 5
        accepted = sum(
            1 for _ in range(10) if a.enqueue_frame(data_frame(a, b))
        )
        # One frame may already be pulled into contention; 5 or 6 accepted.
        assert accepted <= 6

    def test_priority_frames_jump_queue(self, sim):
        channel, (a, b) = make_cell(sim)
        normal = data_frame(a, b)
        beacon = BeaconFrame(a.mac, 100)
        a.enqueue_frame(normal)
        a.enqueue_frame(beacon, priority=True)
        # ``normal`` was pulled into contention on enqueue; the beacon must
        # go out right after it, before any later frame.
        later = data_frame(a, b)
        a.enqueue_frame(later)
        sim.run(until=0.1)
        kinds = [type(f).__name__ for _, f in b.delivered]
        broadcast_kinds = [type(f).__name__ for _, f in b.delivered]
        assert kinds.index("BeaconFrame") < kinds.index("DataFrame") + 2
