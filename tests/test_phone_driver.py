"""Tests for the SDIO bus sleep state machine and WNIC driver (§3.2.1)."""

import pytest

from repro.net.addresses import ip
from repro.net.packet import IcmpEcho, Packet
from repro.phone.chipset import BCM4339, ChipsetProfile, WCN3660
from repro.phone.driver import BUS_ASLEEP, BUS_AWAKE, SdioBus, WnicDriver
from repro.phone.latency import DelayDistribution


def make_packet():
    return Packet(ip("192.168.1.2"), ip("10.0.0.2"), IcmpEcho(8, 1, 1))


def make_driver(sim, chipset=None, sleep_enabled=True):
    sent, received = [], []
    driver = WnicDriver(
        sim, chipset or BCM4339, sim.rng.stream("drv"),
        tx_complete=lambda p: sent.append((sim.now, p)),
        rx_complete=lambda p: received.append((sim.now, p)),
        sleep_enabled=sleep_enabled,
    )
    return driver, sent, received


class TestSdioBus:
    def test_starts_awake(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"))
        assert bus.state == BUS_AWAKE

    def test_sleeps_after_idle_window(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"))
        # Tis = watchdog (10 ms) x idletime (5) = 50 ms.
        sim.run(until=0.049)
        assert bus.state == BUS_AWAKE
        sim.run(until=0.075)
        assert bus.state == BUS_ASLEEP
        assert bus.sleep_count == 1

    def test_activity_resets_idlecount(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"))
        for tick in range(20):
            sim.schedule(tick * 0.03, bus.mark_activity)
        sim.run(until=0.6)
        assert bus.state == BUS_AWAKE
        assert bus.sleep_count == 0

    def test_wake_delay_zero_when_awake(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"))
        assert bus.wake_delay() == 0.0

    def test_wake_delay_positive_when_asleep(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"))
        sim.run(until=0.2)
        assert bus.asleep
        delay = bus.wake_delay()
        assert BCM4339.wake_delay.low <= delay <= BCM4339.wake_delay.high
        assert bus.state == BUS_AWAKE
        assert bus.wake_count == 1

    def test_sleep_disabled_never_sleeps(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"), sleep_enabled=False)
        sim.run(until=1.0)
        assert bus.state == BUS_AWAKE
        assert bus.sleep_count == 0

    def test_disable_while_asleep_wakes(self, sim):
        bus = SdioBus(sim, BCM4339, sim.rng.stream("b"))
        sim.run(until=0.2)
        assert bus.asleep
        bus.set_sleep_enabled(False)
        assert bus.state == BUS_AWAKE

    def test_wcn_idle_window_shorter(self, sim):
        # wcnss: 5 ms watchdog x 5 = 25 ms.
        assert WCN3660.idle_window == pytest.approx(0.025)
        bus = SdioBus(sim, WCN3660, sim.rng.stream("b"))
        sim.run(until=0.04)
        assert bus.asleep


class TestDriverPaths:
    def test_tx_passes_through_and_stamps(self, sim):
        driver, sent, _ = make_driver(sim)
        packet = make_packet()
        driver.start_xmit(packet)
        sim.run(until=0.1)
        assert len(sent) == 1
        assert "driver" in packet.stamps and "driver_done" in packet.stamps
        assert packet.stamps["driver_done"] > packet.stamps["driver"]

    def test_rx_passes_through_with_rxframe_delay(self, sim):
        driver, _, received = make_driver(sim)
        packet = make_packet()
        driver.isr(packet)
        sim.run(until=0.1)
        assert len(received) == 1
        # rxframe thread delivers after driver_done.
        assert received[0][0] > packet.stamps["driver_done"]

    def test_dvsend_small_when_awake(self, sim):
        driver, _, _ = make_driver(sim)
        for index in range(50):
            sim.schedule(index * 0.01, driver.start_xmit, make_packet())
        sim.run(until=1.0)
        samples = driver.samples_of("send")
        assert len(samples) == 50
        assert max(samples) < 2e-3  # never pays the wake cost

    def test_dvsend_pays_wake_after_idle(self, sim):
        driver, _, _ = make_driver(sim)
        for index in range(10):
            sim.schedule(index * 1.0, driver.start_xmit, make_packet())
        sim.run(until=11.0)
        samples = driver.samples_of("send")
        # First send may find the bus awake (t=0); later ones pay Tprom.
        woken = [s for s in samples if s > 5e-3]
        assert len(woken) >= 9

    def test_sleep_disabled_keeps_dvsend_low(self, sim):
        driver, _, _ = make_driver(sim, sleep_enabled=False)
        for index in range(10):
            sim.schedule(index * 1.0, driver.start_xmit, make_packet())
        sim.run(until=11.0)
        assert max(driver.samples_of("send")) < 2e-3

    def test_dvrecv_includes_wake_when_asleep(self, sim):
        driver, _, _ = make_driver(sim)
        sim.run(until=0.5)  # bus sleeps
        driver.isr(make_packet())
        sim.run(until=1.0)
        samples = driver.samples_of("recv")
        assert samples[0] > 5e-3

    def test_samples_tagged_with_wake_flag(self, sim):
        driver, _, _ = make_driver(sim)
        driver.start_xmit(make_packet())  # bus awake at t=0
        sim.schedule(1.0, driver.start_xmit, make_packet())  # asleep by then
        sim.run(until=2.0)
        assert driver.samples[0].wake_paid is False
        assert driver.samples[1].wake_paid is True

    def test_dpc_serialises_concurrent_tasks(self, sim):
        driver, sent, received = make_driver(sim)
        tx_packet, rx_packet = make_packet(), make_packet()
        driver.start_xmit(tx_packet)
        driver.isr(rx_packet)  # same instant: queued behind the tx task
        sim.run(until=0.1)
        assert tx_packet.stamps["driver_done"] <= rx_packet.stamps["driver_done"]

    def test_clear_samples(self, sim):
        driver, _, _ = make_driver(sim)
        driver.start_xmit(make_packet())
        sim.run(until=0.1)
        driver.clear_samples()
        assert driver.samples == []

    def test_packet_counters(self, sim):
        driver, _, _ = make_driver(sim)
        driver.start_xmit(make_packet())
        driver.isr(make_packet())
        sim.run(until=0.1)
        assert driver.packets_tx == 1 and driver.packets_rx == 1


class TestChipsetProfiles:
    def test_scaled_costs_proportional(self):
        scaled = BCM4339.scaled(2.0)
        assert scaled.tx_cost.mean == pytest.approx(BCM4339.tx_cost.mean * 2)
        assert scaled.rx_cost.high == pytest.approx(BCM4339.rx_cost.high * 2)
        # Wake delay is hardware handshake: unscaled.
        assert scaled.wake_delay.mean == BCM4339.wake_delay.mean

    def test_idle_window_product(self):
        chipset = ChipsetProfile("X", "V", "SDIO", "drv",
                                 watchdog_period=0.01, idletime=5)
        assert chipset.idle_window == pytest.approx(0.05)

    def test_vendor_metadata(self):
        assert BCM4339.vendor == "Broadcom" and BCM4339.bus == "SDIO"
        assert WCN3660.vendor == "Qualcomm" and WCN3660.bus == "SMD"
        assert WCN3660.wake_delay.mean < BCM4339.wake_delay.mean


class TestDelayDistribution:
    def test_bounds_respected(self, sim):
        dist = DelayDistribution.from_ms(1, 2, 5)
        rng = sim.rng.stream("d")
        draws = [dist.draw(rng) for _ in range(1000)]
        assert all(1e-3 <= d <= 5e-3 for d in draws)

    def test_mean_formula(self):
        dist = DelayDistribution.from_ms(1, 2, 6)
        assert dist.mean == pytest.approx(3e-3)

    def test_constant(self, sim):
        dist = DelayDistribution.constant(0.004)
        assert dist.draw(sim.rng.stream("d")) == 0.004

    def test_empirical_mean_close_to_analytic(self, sim):
        dist = DelayDistribution.from_ms(0.31, 1.2, 2.85)
        rng = sim.rng.stream("d")
        draws = [dist.draw(rng) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(dist.mean, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayDistribution(2, 1, 3)
        with pytest.raises(ValueError):
            DelayDistribution(-1, 0, 1)

    def test_scaled(self):
        dist = DelayDistribution.from_ms(1, 2, 3).scaled(1.5)
        assert dist.low == pytest.approx(1.5e-3)
        assert dist.high == pytest.approx(4.5e-3)
