"""API-contract tests for the smaller public surfaces.

These pin behaviours that downstream users rely on but that the
scenario-driven suites only touch incidentally.
"""

import pytest

from repro.net.addresses import ip
from tests.conftest import make_wifi_cell


class TestServerSurfaces:
    def test_http_server_close_releases_port(self, lan):
        from repro.net.servers import HttpServer

        sim, _a, b = lan
        server = HttpServer(b, port=8088)
        server.close()
        HttpServer(b, port=8088)  # port free again

    def test_udp_echo_close_releases_port(self, lan):
        from repro.net.servers import UdpEchoServer

        _sim, _a, b = lan
        server = UdpEchoServer(b, port=9090)
        server.close()
        UdpEchoServer(b, port=9090)

    def test_measurement_server_exposes_address(self, lan):
        from repro.net.servers import MeasurementServer

        _sim, _a, b = lan
        server = MeasurementServer(b, http_port=8081, udp_echo_port=9091)
        assert server.ip_addr == b.ip_addr

    def test_two_http_clients_served_concurrently(self, lan):
        sim, a, b = lan
        from repro.net.servers import MeasurementServer

        MeasurementServer(b)
        responses = []
        for _ in range(2):
            conn = a.stack.tcp.connect(b.ip_addr, 80)
            conn.on_connected = lambda c: c.send(100)
            conn.on_data = lambda c, n, m: responses.append(n)
        sim.run(until=1.0)
        assert responses == [230, 230]


class TestCellularSurfaces:
    def test_tower_drops_unknown_subscriber(self):
        from repro.cellular.testbed import CellularTestbed

        testbed = CellularTestbed(seed=221)
        before = testbed.tower.router.packets_forwarded
        # Route to an address inside the cell network but not registered.
        testbed.server_host.stack.send_udp(ip("10.64.0.99"), 5000,
                                           payload_size=8)
        testbed.run(1.0)
        # Routed (forwarded) but silently dropped at the air interface.
        assert testbed.tower.router.packets_forwarded == before + 1

    def test_cellular_phone_user_wrap_stamps(self):
        from repro.cellular.testbed import CellularTestbed

        testbed = CellularTestbed(seed=222)
        phone = testbed.phone
        got = []
        phone.stack.register_ping(3, phone.user_wrap(got.append))
        phone.stack.send_echo_request(testbed.server_ip, 3, 1,
                                      meta={"probe_id": 1})
        testbed.run(6.0)
        assert got and "user" in got[0].stamps
        assert "kernel" in got[0].stamps

    def test_paging_counter(self):
        from repro.cellular.testbed import CellularTestbed

        testbed = CellularTestbed(seed=223)
        testbed.phone.stack.udp_bind(4000, lambda p: None)
        testbed.run(0.5)
        for _ in range(2):
            testbed.server_host.stack.send_udp(testbed.phone.ip_addr, 4000,
                                               payload_size=8)
        testbed.run(8.0)
        # One paging cycle wakes the phone; the second packet rides it.
        assert testbed.tower.packets_paged >= 1
        assert testbed.rrc.pagings >= 1


class TestEnergySurfaces:
    def test_report_keys_stable(self):
        from repro.phone.energy import EnergyMeter
        from repro.testbed.topology import Testbed

        testbed = Testbed(seed=224)
        phone = testbed.add_phone("nexus5")
        meter = EnergyMeter(phone)
        testbed.run(1.0)
        report = meter.report()
        assert set(report) == {
            "elapsed_s", "cam_s", "doze_s", "tx_airtime_s", "rx_airtime_s",
            "bus_awake_s", "energy_J", "avg_power_W",
        }

    def test_meter_repr(self):
        from repro.phone.energy import EnergyMeter
        from repro.testbed.topology import Testbed

        testbed = Testbed(seed=225)
        phone = testbed.add_phone("nexus5")
        meter = EnergyMeter(phone)
        testbed.run(1.0)
        assert "J over" in repr(meter)


class TestWifiSurfaces:
    def test_station_record_lookup(self, sim):
        _channel, ap, _server, hosts = make_wifi_cell(sim)
        record = ap.station_record(hosts[0].sta.mac)
        assert record.aid == hosts[0].sta.aid
        with pytest.raises(KeyError):
            from repro.net.addresses import MacAddress

            ap.station_record(MacAddress.from_index(0xAB))

    def test_next_listen_tbtt_respects_stride(self, sim):
        from repro.wifi.sta import PsmConfig

        psm = PsmConfig(enabled=True, timeout=0.05, listen_interval=2)
        _channel, ap, _server, hosts = make_wifi_cell(sim, psm=psm)
        sta = hosts[0].sta
        sim.run(until=0.95)
        tbtt = sta._next_listen_tbtt()
        from repro.sim.units import tu

        interval = tu(ap.beacon_interval_tu)
        index = round(tbtt / interval)
        assert index % 3 == 0
        assert tbtt > sim.now

    def test_radio_counters(self, sim):
        _channel, _ap, server, hosts = make_wifi_cell(sim)
        hosts[0].stack.send_echo_request(server.ip_addr, 1, 1)
        sim.run(until=0.5)
        assert hosts[0].sta.frames_sent >= 1
        assert hosts[0].sta.frames_received >= 1  # reply + beacons


class TestTimerSurfaces:
    def test_periodic_next_deadline(self, sim):
        from repro.sim.timers import PeriodicTimer

        timer = PeriodicTimer(sim, 0.5, lambda: None)
        assert timer.next_deadline() is None
        timer.start()
        assert timer.next_deadline() == pytest.approx(0.5)
        timer.stop()
        assert timer.next_deadline() is None

    def test_timer_restart_is_start(self, sim):
        from repro.sim.timers import Timer

        timer = Timer(sim, lambda: None)
        assert timer.restart.__func__ is timer.start.__func__
