"""Tests for batch experiment campaigns."""

import pytest

from repro.testbed.campaign import Campaign, CellResult


class TestGrid:
    def test_cells_enumerate_full_grid(self):
        campaign = Campaign(phones=("nexus5", "nexus4"),
                            rtts=(0.02, 0.05), tools=("acutemon", "ping"))
        cells = list(campaign.cells())
        assert len(cells) == 8
        seeds = [spec.seed for spec in cells]
        assert len(set(seeds)) == 8  # unique per-cell seeds
        assert all(spec.env == "wifi" for spec in cells)

    def test_run_small_grid(self):
        campaign = Campaign(phones=("nexus5",), rtts=(0.02,),
                            tools=("acutemon", "ping"), count=5)
        visited = []
        results = campaign.run(
            progress=lambda *cell: visited.append(cell))
        assert len(results) == 2
        assert len(visited) == 2
        for result in results:
            assert len(result.rtts) == 5

    def test_acutemon_cells_carry_layers(self):
        campaign = Campaign(count=5)
        campaign.run()
        result = campaign.result_for("nexus5", 0.030, "acutemon")
        assert result is not None
        assert "dn" in result.layers and len(result.layers["dn"]) == 5

    def test_error_metric(self):
        result = CellResult("nexus5", 0.030, "acutemon", False, 0,
                            [0.0315, 0.0320, 0.0318])
        assert result.error() == pytest.approx(0.0018, abs=2e-4)

    def test_worst_error(self):
        campaign = Campaign(phones=("nexus5",), rtts=(0.03,),
                            tools=("acutemon", "ping"), count=5)
        campaign.run()
        worst, error = campaign.worst_error()
        # 1 s-interval ping is the less accurate tool by far.
        assert worst.tool == "ping"
        assert error > campaign.result_for("nexus5", 0.03,
                                           "acutemon").error()

    def test_determinism(self):
        first = Campaign(count=5)
        first.run()
        second = Campaign(count=5)
        second.run()
        assert first.results[0].rtts == second.results[0].rtts


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        campaign = Campaign(count=5)
        campaign.run()
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert len(loaded) == len(campaign)
        original = campaign.results[0]
        restored = loaded.results[0]
        assert restored.key() == original.key()
        assert restored.rtts == original.rtts
        assert restored.layers == original.layers

    def test_merge_prefers_latest(self):
        first = Campaign(count=5)
        first.results = [CellResult("nexus5", 0.03, "acutemon", False, 0,
                                    [0.031])]
        second = Campaign(count=5)
        second.results = [CellResult("nexus5", 0.03, "acutemon", False, 9,
                                     [0.032])]
        merged = first.merged_with(second)
        assert len(merged) == 1
        assert merged.results[0].seed == 9

    def test_merge_unions_distinct_cells(self):
        first = Campaign(count=5)
        first.results = [CellResult("nexus5", 0.03, "acutemon", False, 0,
                                    [0.031])]
        second = Campaign(count=5)
        second.results = [CellResult("nexus4", 0.03, "acutemon", False, 1,
                                     [0.032])]
        assert len(first.merged_with(second)) == 2
