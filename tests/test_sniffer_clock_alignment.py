"""Tests for multi-sniffer clock-skew estimation and alignment."""

import pytest

from repro.core.measurement import ProbeCollector
from repro.sniffer.merge import align_clocks, estimate_offsets, merge_records
from repro.sniffer.rtt import completed_rtts, network_rtts
from repro.sniffer.sniffer import WirelessSniffer
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool


def build_skewed(seed=211, offsets=(0.0, 0.004, -0.0025), loss=0.1):
    testbed = Testbed(seed=seed, emulated_rtt=0.03, sniffer_count=0)
    skewed = [
        WirelessSniffer(testbed.sim, testbed.channel, name=f"skew-{i}",
                        capture_loss=loss, clock_offset=offset)
        for i, offset in enumerate(offsets)
    ]
    phone = testbed.add_phone("nexus5")
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
    tool.run_sync(10)
    return testbed, phone, collector, skewed


class TestOffsetEstimation:
    def test_offsets_recovered_from_beacons(self):
        _testbed, _phone, _collector, sniffers = build_skewed()
        offsets = estimate_offsets(sniffers)
        assert offsets["skew-0"] == 0.0
        assert offsets["skew-1"] == pytest.approx(0.004, abs=1e-6)
        assert offsets["skew-2"] == pytest.approx(-0.0025, abs=1e-6)

    def test_custom_reference(self):
        _testbed, _phone, _collector, sniffers = build_skewed()
        offsets = estimate_offsets(sniffers, reference=sniffers[1])
        # Relative to sniffer 1's clock, sniffer 0 is 4 ms behind.
        assert offsets["skew-0"] == pytest.approx(-0.004, abs=1e-6)

    def test_unsynchronised_merge_duplicates_frames(self):
        _testbed, phone, _collector, sniffers = build_skewed()
        naive = merge_records(*sniffers)
        aligned = merge_records(*align_clocks(sniffers))
        # Skew defeats dedup: the naive merge double-counts transmissions.
        assert len(naive) > len(aligned)

    def test_aligned_rtts_match_ground_truth(self):
        _testbed, phone, collector, sniffers = build_skewed()
        aligned = merge_records(*align_clocks(sniffers))
        rtts = completed_rtts(network_rtts(aligned, phone.sta.mac))
        truth = {r.probe_id: r.dn for r in collector.completed()}
        assert len(rtts) == 10
        for probe_id, rtt in rtts.items():
            assert rtt == pytest.approx(truth[probe_id], abs=1e-6)

    def test_single_skewed_sniffer_rtts_unbiased(self):
        # A constant offset cancels out of (tin - ton): even one skewed
        # capture gives correct RTTs — it is *merging* that needs sync.
        _testbed, phone, collector, sniffers = build_skewed(
            offsets=(0.010,), loss=0.0)
        rtts = completed_rtts(
            network_rtts(sniffers[0].records, phone.sta.mac))
        truth = {r.probe_id: r.dn for r in collector.completed()}
        for probe_id, rtt in rtts.items():
            assert rtt == pytest.approx(truth[probe_id], abs=1e-9)
