"""Tests for the Figure 2 testbed assembly and experiment runners."""

import pytest

from repro.testbed.experiments import (
    acutemon_experiment,
    ping2_experiment,
    ping_experiment,
    tool_comparison,
)
from repro.testbed.topology import Testbed


class TestTopology:
    def test_components_present(self):
        testbed = Testbed(seed=1)
        assert len(testbed.sniffers) == 3
        assert testbed.server is not None
        assert testbed.load_sink is not None

    def test_phone_attaches_and_pings_server(self):
        testbed = Testbed(seed=1, emulated_rtt=0.02)
        phone = testbed.add_phone("nexus5")
        testbed.settle(0.3)
        replies = []
        phone.stack.register_ping(1, lambda p: replies.append(sim_now()))

        def sim_now():
            return testbed.sim.now

        phone.stack.send_echo_request(testbed.server_ip, 1, 1)
        testbed.run(0.5)
        assert len(replies) == 1

    def test_multiple_phones(self):
        from repro.net.addresses import ip

        testbed = Testbed(seed=1)
        testbed.add_phone("nexus5")
        testbed.add_phone("nexus4", phone_ip=ip("192.168.1.20"))
        assert len(testbed.phones) == 2
        macs = {p.sta.mac for p in testbed.phones}
        assert len(macs) == 2

    def test_set_emulated_rtt(self):
        testbed = Testbed(seed=1, emulated_rtt=0.02)
        testbed.set_emulated_rtt(0.05)
        assert testbed.netem.delay == 0.05

    def test_cross_traffic_congests_channel(self):
        testbed = Testbed(seed=2)
        generator = testbed.start_cross_traffic()
        testbed.run(2.0)
        # Offered 25 Mbps exceeds protected-mode capacity: the sink gets
        # less than offered but a realistic saturated figure.
        achieved = testbed.load_sink.throughput_bps()
        assert 10e6 < achieved < 25e6
        assert generator.packets_sent > testbed.load_sink.packets_received

    def test_stop_cross_traffic(self):
        testbed = Testbed(seed=2)
        testbed.start_cross_traffic()
        testbed.run(0.5)
        testbed.stop_cross_traffic()
        received = testbed.load_sink.packets_received
        testbed.run(1.0)
        # A handful of queued frames may drain; no sustained traffic.
        assert testbed.load_sink.packets_received - received < 300

    def test_sniffers_capture_beacons(self):
        testbed = Testbed(seed=1)
        testbed.run(0.5)
        assert all(s.beacon_records() for s in testbed.sniffers)

    def test_merged_capture_deduplicated(self):
        testbed = Testbed(seed=1, sniffer_loss=0.1)
        testbed.run(1.0)
        merged = testbed.merged_capture()
        assert len(merged) >= max(len(s.records) for s in testbed.sniffers)


class TestExperimentRunners:
    def test_ping_experiment_layers(self):
        result = ping_experiment("nexus5", emulated_rtt=0.03, interval=0.01,
                                 count=10, seed=3)
        assert len(result.layers["du"]) == 10
        assert len(result.layers["dn"]) == 10
        assert len(result.overheads) == 10

    def test_acutemon_experiment(self):
        result = acutemon_experiment("nexus5", emulated_rtt=0.03, count=10,
                                     seed=3)
        assert len(result.user_rtts) == 10
        assert result.acutemon.background_sent > 0

    def test_tool_comparison_keys(self):
        results = tool_comparison("nexus5", emulated_rtt=0.03, count=5,
                                  seed=3, tools=("acutemon", "ping"))
        assert set(results) == {"acutemon", "ping"}
        assert all(len(v) == 5 for v in results.values())

    def test_tool_comparison_unknown_tool(self):
        with pytest.raises(ValueError):
            tool_comparison(tools=("warpspeed",), count=1)

    def test_ping2_experiment(self):
        result = ping2_experiment("nexus5", emulated_rtt=0.02,
                                  count=5, seed=3)
        assert len(result.tool.rtts()) == 5
        assert len(result.samples) == 5
        assert result.spec.tool == "ping2"

    def test_bus_sleep_flag_respected(self):
        result = ping_experiment("nexus5", emulated_rtt=0.03, interval=1.0,
                                 count=5, seed=3, bus_sleep=False)
        assert result.phone.driver.bus.sleep_count == 0

    def test_experiments_deterministic(self):
        first = ping_experiment("nexus5", emulated_rtt=0.03, interval=0.01,
                                count=10, seed=9)
        second = ping_experiment("nexus5", emulated_rtt=0.03, interval=0.01,
                                 count=10, seed=9)
        assert first.layers["du"] == second.layers["du"]
        assert first.layers["dn"] == second.layers["dn"]

    def test_different_seeds_differ(self):
        first = ping_experiment("nexus5", emulated_rtt=0.03, interval=0.01,
                                count=10, seed=9)
        second = ping_experiment("nexus5", emulated_rtt=0.03, interval=0.01,
                                 count=10, seed=10)
        assert first.layers["du"] != second.layers["du"]
