"""Tests for distribution comparison helpers."""

import random

import pytest

from repro.analysis.compare import dominates, ks_statistic, ks_test, median_shift


class TestKs:
    def test_identical_samples_zero(self):
        sample = [1.0, 2.0, 3.0]
        assert ks_statistic(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic([1, 2, 3], [10, 11, 12]) == 1.0

    def test_matches_scipy(self):
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(200)]
        b = [rng.gauss(0.5, 1) for _ in range(150)]
        ours = ks_statistic(a, b)
        statistic, p_value = ks_test(a, b)
        assert ours == pytest.approx(statistic, abs=1e-9)
        if p_value is not None:
            assert 0 <= p_value <= 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1])

    def test_shifted_distributions_large_distance(self):
        rng = random.Random(2)
        a = [rng.uniform(0.030, 0.035) for _ in range(100)]
        b = [rng.uniform(0.042, 0.047) for _ in range(100)]
        assert ks_statistic(a, b) == 1.0


class TestShiftAndDominance:
    def test_median_shift_sign(self):
        assert median_shift([5, 6, 7], [1, 2, 3]) == pytest.approx(4)
        assert median_shift([1, 2, 3], [5, 6, 7]) == pytest.approx(-4)

    def test_dominance(self):
        fast = [0.030 + i * 1e-4 for i in range(50)]
        slow = [0.043 + i * 1e-4 for i in range(50)]
        assert dominates(fast, slow)
        assert not dominates(slow, fast)

    def test_dominance_with_margin(self):
        fast = [1.0, 2.0, 3.0]
        slow = [1.5, 2.5, 3.5]
        assert dominates(fast, slow)
        assert not dominates(fast, slow, margin=1.0)

    def test_overlapping_distributions_do_not_dominate(self):
        rng = random.Random(3)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(0.1, 1) for _ in range(100)]
        assert not dominates(a, b)


class TestOnMeasurementData:
    def test_acutemon_dominates_ping(self):
        from repro.testbed.experiments import tool_comparison

        results = tool_comparison("nexus5", emulated_rtt=0.030, count=25,
                                  seed=401, tools=("acutemon", "ping"))
        assert dominates(results["acutemon"], results["ping"],
                         margin=0.005)
        statistic, _p = ks_test(results["acutemon"], results["ping"])
        assert statistic == 1.0  # fully separated distributions

    def test_background_traffic_ks_small(self):
        from repro.testbed.experiments import acutemon_experiment

        with_bg = acutemon_experiment(
            "nexus5", emulated_rtt=0.030, count=30, seed=402,
            bus_sleep=False)
        without_bg = acutemon_experiment(
            "nexus5", emulated_rtt=0.030, count=30, seed=402,
            bus_sleep=False, background_enabled=False,
            warmup_enabled=False)
        statistic = ks_statistic(with_bg.user_rtts, without_bg.user_rtts)
        # Figure 9's claim, quantified: the distributions nearly coincide.
        assert statistic < 0.45
        assert abs(median_shift(with_bg.user_rtts,
                                without_bg.user_rtts)) < 1.5e-3