"""Reporter schema tests: text/JSON/SARIF golden-file round-trips.

The goldens in ``tests/data/`` pin the exact reports the seeded fixture
produces.  If a rule message or report field changes deliberately,
regenerate them:

    PYTHONPATH=src python - <<'EOF'
    import pathlib
    from repro.lint import run_lint, render
    res = run_lint('tests/data/lint_fixture.py',
                   include_project_rules=False)
    for fmt, name in (("text", "lint_fixture.expected.txt"),
                      ("json", "lint_fixture.expected.json"),
                      ("sarif", "lint_fixture.expected.sarif")):
        pathlib.Path("tests/data", name).write_text(
            render(res, fmt) + "\n", encoding="utf-8")
    EOF
"""

import json
import pathlib

import pytest

from repro.lint import (
    RULES, render, render_json, render_sarif, render_text,
    rule_descriptors, run_lint,
)
from repro.lint.report import SARIF_VERSION

DATA = pathlib.Path(__file__).resolve().parent / "data"
FIXTURE = DATA / "lint_fixture.py"


@pytest.fixture(scope="module")
def fixture_result():
    return run_lint(FIXTURE, include_project_rules=False)


def _golden(name):
    return (DATA / name).read_text(encoding="utf-8")


class TestGoldenFiles:
    def test_text_golden(self, fixture_result):
        assert render_text(fixture_result) + "\n" \
            == _golden("lint_fixture.expected.txt")

    def test_json_golden_round_trip(self, fixture_result):
        rendered = render_json(fixture_result)
        assert rendered + "\n" == _golden("lint_fixture.expected.json")
        # Round-trip: the document is valid JSON and re-serializes to
        # itself (stable key order, no float drift).
        assert json.dumps(json.loads(rendered), indent=2) == rendered

    def test_sarif_golden_round_trip(self, fixture_result):
        rendered = render_sarif(fixture_result)
        assert rendered + "\n" == _golden("lint_fixture.expected.sarif")
        assert json.dumps(json.loads(rendered), indent=2) == rendered


class TestJsonSchema:
    def test_document_shape(self, fixture_result):
        doc = json.loads(render_json(fixture_result))
        assert set(doc) == {"tool", "rules", "summary", "findings",
                            "suppressed", "baselined", "stale_baseline"}
        assert doc["tool"]["name"] == "repro.lint"
        assert doc["summary"]["files_scanned"] == 1
        assert doc["summary"]["findings"] == len(doc["findings"])
        assert doc["summary"]["suppressed"] == len(doc["suppressed"])

    def test_finding_rows_complete(self, fixture_result):
        doc = json.loads(render_json(fixture_result))
        for row in doc["findings"] + doc["suppressed"]:
            assert set(row) == {"rule", "path", "line", "severity",
                                "category", "message", "snippet",
                                "fingerprint"}
            assert row["path"] == "lint_fixture.py"
            assert row["line"] >= 1
            assert len(row["fingerprint"]) == 16

    def test_rule_catalog_covers_all_registered_rules(self, fixture_result):
        doc = json.loads(render_json(fixture_result))
        ids = [row["id"] for row in doc["rules"]]
        assert ids == sorted(ids)
        assert set(ids) == {"RL000", *RULES}
        assert all(row["description"] for row in doc["rules"])


class TestSarifSchema:
    def test_log_shape(self, fixture_result):
        log = json.loads(render_sarif(fixture_result))
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        assert [rule["id"] for rule in driver["rules"]] \
            == [row["id"] for row in rule_descriptors()]

    def test_results_reference_driver_rules(self, fixture_result):
        log = json.loads(render_sarif(fixture_result))
        driver_rules = log["runs"][0]["tool"]["driver"]["rules"]
        for result in log["runs"][0]["results"]:
            assert driver_rules[result["ruleIndex"]]["id"] \
                == result["ruleId"]
            assert result["level"] in ("error", "warning")
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == "lint_fixture.py"
            assert location["region"]["startLine"] >= 1
            assert result["partialFingerprints"]["reproLint/v1"]

    def test_result_count_matches_findings(self, fixture_result):
        log = json.loads(render_sarif(fixture_result))
        assert len(log["runs"][0]["results"]) \
            == len(fixture_result.findings)


class TestRenderDispatch:
    def test_named_formats(self, fixture_result):
        assert render(fixture_result, "text") \
            == render_text(fixture_result)
        assert render(fixture_result, "json") \
            == render_json(fixture_result)
        assert render(fixture_result, "sarif") \
            == render_sarif(fixture_result)

    def test_unknown_format_rejected(self, fixture_result):
        with pytest.raises(ValueError, match="unknown report format"):
            render(fixture_result, "xml")

    def test_clean_result_text_mentions_rules_run(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n", encoding="utf-8")
        result = run_lint(clean, include_project_rules=False)
        text = render_text(result)
        assert "lint clean" in text
        assert "RL101" in text
