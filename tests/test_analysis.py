"""Tests for the statistics and rendering helpers."""

import math

import pytest

from repro.analysis.boxstats import BoxStats
from repro.analysis.cdf import Cdf
from repro.analysis.render import (
    Table, fmt_mean_ci, fmt_ms, render_boxplot_row, render_cdf,
)
from repro.analysis.stats import SummaryStats, mean_ci, percentile


class TestMeanCi:
    def test_known_values(self):
        mean, ci = mean_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert mean == pytest.approx(3.0)
        # s = sqrt(2.5), sem = s/sqrt(5), t(4, 0.975) = 2.776.
        expected = 2.7764 * math.sqrt(2.5 / 5)
        assert ci == pytest.approx(expected, rel=1e-3)

    def test_single_sample_zero_ci(self):
        mean, ci = mean_ci([7.0])
        assert (mean, ci) == (7.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_ci_shrinks_with_n(self):
        import random

        rng = random.Random(1)
        small = mean_ci([rng.gauss(0, 1) for _ in range(10)])[1]
        large = mean_ci([rng.gauss(0, 1) for _ in range(1000)])[1]
        assert large < small

    def test_constant_series_zero_ci(self):
        assert mean_ci([2.0] * 50) == (2.0, 0.0)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 25) == pytest.approx(25)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummaryStats:
    def test_fields(self):
        stats = SummaryStats([5, 1, 3])
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.mean == pytest.approx(3)
        assert stats.median == 3
        assert stats.n == 3

    def test_scaled(self):
        stats = SummaryStats([1.0, 2.0]).scaled(1000)
        assert stats.mean == pytest.approx(1500)


class TestBoxStats:
    def test_quartiles(self):
        box = BoxStats(list(range(1, 101)))
        assert box.median == pytest.approx(50.5)
        assert box.q1 == pytest.approx(25.75)
        assert box.q3 == pytest.approx(75.25)

    def test_outliers_excluded_from_whiskers(self):
        data = [1.0] * 10 + [2.0] * 10 + [100.0]  # obvious outlier
        box = BoxStats(data)
        assert 100.0 in box.outliers
        assert box.whisker_high <= 2.0

    def test_no_outliers_whiskers_are_extremes(self):
        data = [1, 2, 3, 4, 5, 6, 7, 8]
        box = BoxStats(data)
        assert box.whisker_low == 1 and box.whisker_high == 8
        assert box.outliers == []

    def test_degenerate_constant_data(self):
        box = BoxStats([5.0] * 10)
        assert box.median == box.q1 == box.q3 == 5.0
        assert box.iqr == 0.0
        assert box.outliers == []

    def test_outlier_fraction(self):
        data = [0.0] * 99 + [1000.0]
        assert BoxStats(data).outlier_fraction == pytest.approx(0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats([])


class TestCdf:
    def test_probability_monotone(self):
        cdf = Cdf([1, 2, 3, 4, 5])
        assert cdf.probability(0) == 0.0
        assert cdf.probability(3) == pytest.approx(0.6)
        assert cdf.probability(10) == 1.0

    def test_quantile_inverse_of_probability(self):
        cdf = Cdf(list(range(100)))
        assert cdf.quantile(0.5) == 49
        assert cdf.quantile(1.0) == 99
        assert cdf.quantile(0.01) == 0

    def test_median(self):
        assert Cdf([1, 2, 3]).median == 2

    def test_shift_versus(self):
        slow = Cdf([11, 12, 13, 14, 15])
        fast = Cdf([1, 2, 3, 4, 5])
        shifts = slow.shift_versus(fast)
        assert all(s == pytest.approx(10) for s in shifts.values())

    def test_quantile_bounds_checked(self):
        cdf = Cdf([1])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)

    def test_points_form_step_function(self):
        points = Cdf([1, 2]).points()
        assert points == [(1, 0.5), (2, 1.0)]


class TestRendering:
    def test_table_alignment(self):
        table = Table(["Phone", "RTT"], title="Demo")
        table.add_row("Nexus 5", "33.16")
        table.add_row("HTC One", "21.8")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Phone" in lines[1] and "RTT" in lines[1]
        assert len(lines) == 5

    def test_table_cell_count_enforced(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_fmt_helpers(self):
        assert fmt_ms(0.03316) == "33.16"
        stats = SummaryStats([0.030, 0.032])
        text = fmt_mean_ci(stats)
        assert text.startswith("31.00±")

    def test_boxplot_row_renders(self):
        box = BoxStats([0.001, 0.002, 0.003])
        text = render_boxplot_row("test", box)
        assert "median=" in text and "whiskers=" in text

    def test_cdf_row_renders(self):
        text = render_cdf(Cdf([0.03, 0.04]), label="ping")
        assert text.startswith("ping")
        assert "p50=" in text
