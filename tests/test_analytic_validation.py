"""Theory vs simulation: the analytic cross-validation harness.

Holds the simulator to the closed-form predictions of
:mod:`repro.analysis.analytic` within declared error envelopes:

* **PSM mean delay**: across a listen-interval × probe-spacing grid,
  the cold-probe RTT inflation (PSM cell minus CAM baseline) must land
  within ``PSM_MEAN_ENVELOPE`` relative error of the Agrawal-model
  prediction ``(L + 1) * BI / 2``, and the per-probe inflation must
  respect the model's hard ``(L + 1) * BI`` ceiling.
* **TWT wake error**: across several drift rates, every simulated wake
  error stays under :func:`~repro.analysis.analytic.twt_wake_error_bound`
  (the bound *is* the envelope), and the TWT environment's downlink
  inflation matches the half-service-period model.
* **Model monotonicity** (hypothesis properties): delay non-decreasing
  in the listen interval, throughput non-increasing in sleep
  aggressiveness, drift error bound non-decreasing in the drift rate.

Probes fire on an **absolute** time grid (unlike ``ping2``, whose next
round starts relative to the previous reply and therefore phase-locks
to the beacon schedule).  Spacings are ``(n + φ) * BI`` with φ the
golden-ratio fraction, so probe phases form a low-discrepancy sequence
over every listen period in the grid.  Envelope rationale lives in
``docs/ANALYTIC.md``.
"""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analytic import (
    duty_cycled_throughput,
    psm_mean_beacon_wait,
    psm_mean_delay,
    twt_mean_delay,
    twt_wake_error_bound,
)
from repro.testbed.environment import build_environment

BI = 0.1024

#: Declared relative-error envelope on the PSM mean beacon wait
#: (docs/ANALYTIC.md: low-discrepancy phase sampling at n=30 probes).
PSM_MEAN_ENVELOPE = 0.25

#: Declared relative envelope on the TWT mean downlink inflation.
TWT_MEAN_ENVELOPE = 0.30

#: Slack added to per-probe ceilings: wired RTT, airtime, and SDIO
#: promotion variability on top of the power-save wait term.
CEILING_SLACK = 0.060

#: Probes per grid cell.
COUNT = 30

#: Golden-ratio fraction: successive probe phases step by φ of the
#: beacon interval — the classic low-discrepancy stride.
PHI = 0.381966

#: Probe spacings (seconds) — all beyond Tip (205 ms) so every probe
#: finds the phone dozing, all offset from the beacon grid by φ * BI.
SPACINGS = tuple((n + PHI) * BI for n in (6, 7, 9))

LISTEN_INTERVALS = (0, 1, 2)


def run_cold_probes(env_key, spacing, listen_interval=0,
                    psm_enabled=True, count=COUNT, **env_params):
    """Fire ``count`` server-side pings at an absolute ``spacing`` grid.

    Every probe finds the phone fully idle (spacing >> Tip), so each
    RTT carries the full power-save inflation.  Returns
    ``(sorted_rtts, phone)``.
    """
    env = build_environment(env_key, seed=9, emulated_rtt=0.020,
                            sniffer_count=0, **env_params)
    phone = env.attach_phone("nexus5", psm_enabled=psm_enabled)
    phone.sta.psm.listen_interval = listen_interval
    phone.sta.psm.timeout_jitter = 0.0
    env.settle(1.0)

    stack = env.server_host.stack
    rtts, sent = [], {}

    def on_reply(packet):
        t0 = sent.pop(packet.probe_id, None)
        if t0 is not None:
            rtts.append(env.sim.now - t0)

    handle = stack.register_ping(0x7A11, on_reply)

    def fire(probe_id):
        sent[probe_id] = env.sim.now
        stack.send_echo_request(phone.ip_addr, 0x7A11,
                                probe_id & 0xFFFF,
                                meta={"probe_id": probe_id})

    start = env.sim.now
    for k in range(count):
        env.sim.schedule(k * spacing, fire, k + 1)
    env.sim.run(until=start + count * spacing + 2.0)
    handle.close()
    assert len(rtts) == count, f"lost {count - len(rtts)} probes"
    return sorted(rtts), phone


@pytest.fixture(scope="module")
def cam_baseline():
    """Mean cold RTT with PSM forced off: the empirical base RTT.

    Bus sleep stays enabled, so SDIO promotion appears in both the
    baseline and the power-save cells and cancels in the difference.
    """
    rtts, _phone = run_cold_probes("wifi", SPACINGS[1],
                                   psm_enabled=False)
    return statistics.fmean(rtts)


class TestPsmMeanDelayGrid:
    @pytest.mark.parametrize("listen_interval", LISTEN_INTERVALS)
    @pytest.mark.parametrize("spacing", SPACINGS)
    def test_mean_inflation_matches_model(self, listen_interval, spacing,
                                          cam_baseline):
        rtts, _phone = run_cold_probes("wifi", spacing, listen_interval)
        mean_wait = statistics.fmean(rtts) - cam_baseline
        predicted = psm_mean_beacon_wait(BI, listen_interval)
        assert mean_wait == pytest.approx(predicted,
                                          rel=PSM_MEAN_ENVELOPE)

    @pytest.mark.parametrize("listen_interval", LISTEN_INTERVALS)
    def test_per_probe_wait_respects_listen_period_ceiling(
            self, listen_interval, cam_baseline):
        # No single beacon wait can exceed one listen period: the p100
        # of the inflation is bounded by (L + 1) * BI plus slack.
        rtts, _phone = run_cold_probes("wifi", SPACINGS[0],
                                       listen_interval)
        ceiling = (listen_interval + 1) * BI + CEILING_SLACK
        assert rtts[-1] - cam_baseline <= ceiling

    def test_busy_phone_never_waits_for_beacons(self, cam_baseline):
        # Probe spacing below Tip keeps the station in CAM: the doze
        # probability term is 0 and the beacon wait disappears.
        rtts, _phone = run_cold_probes("wifi", 0.15)
        mean_wait = statistics.fmean(rtts) - cam_baseline
        assert mean_wait < BI / 4

    def test_profile_level_prediction_tracks_simulation(self,
                                                        cam_baseline):
        # The full psm_mean_delay chain (periodic arrivals, load below
        # the Tip threshold -> P(doze)=1) against the simulated mean.
        spacing = SPACINGS[2]
        rtts, _phone = run_cold_probes("wifi", spacing,
                                       listen_interval=1)
        predicted_wait = psm_mean_delay(
            1.0 / spacing, BI, 0.205, listen_interval=1,
            arrivals="periodic")
        mean_wait = statistics.fmean(rtts) - cam_baseline
        assert mean_wait == pytest.approx(predicted_wait,
                                          rel=PSM_MEAN_ENVELOPE)


class TestTwtValidation:
    DRIFTS = (50e-6, 500e-6, 2000e-6)

    @pytest.mark.parametrize("drift", DRIFTS)
    def test_wake_error_within_drift_model_bound(self, drift):
        rtts, phone = run_cold_probes(
            "wifi-twt", SPACINGS[0], count=12, sp_interval=0.4,
            sp_duration=0.02, twt_guard=2e-3, drift_rate=drift)
        bound = twt_wake_error_bound(drift, 2e-3, 0.4, BI)
        wakes = [w for w in phone.sta.wake_log if not w.missed]
        assert len(wakes) >= 10
        for wake in wakes:
            assert abs(wake.error) <= bound + 1e-12

    def test_mean_inflation_matches_half_sp_model(self, cam_baseline):
        # Downlink probes buffered until the next service period wait
        # sp_interval / 2 on average (spacing incommensurate with the
        # SP grid).
        sp_interval = 0.35
        rtts, _phone = run_cold_probes("wifi-twt", SPACINGS[0],
                                       sp_interval=sp_interval,
                                       sp_duration=0.02)
        mean_extra = statistics.fmean(rtts) - cam_baseline
        predicted = twt_mean_delay(sp_interval)
        assert mean_extra == pytest.approx(predicted,
                                           rel=TWT_MEAN_ENVELOPE)

    def test_per_probe_wait_respects_sp_interval_ceiling(self,
                                                         cam_baseline):
        sp_interval = 0.35
        rtts, _phone = run_cold_probes("wifi-twt", SPACINGS[0],
                                       sp_interval=sp_interval,
                                       sp_duration=0.02)
        # One SP gap, plus a beacon interval for resync detours.
        ceiling = sp_interval + BI + CEILING_SLACK
        assert rtts[-1] - cam_baseline <= ceiling


class TestPredictiveValidation:
    def test_fallback_bounds_worst_case_inflation(self, cam_baseline):
        fallback = 0.3
        rtts, _phone = run_cold_probes("wifi-predictive-sleep",
                                       SPACINGS[0],
                                       fallback_timeout=fallback)
        # Every inflation is capped by the fallback timeout plus
        # slack; so is the mean, a fortiori.
        assert rtts[-1] - cam_baseline <= fallback + CEILING_SLACK
        assert statistics.fmean(rtts) - cam_baseline <= fallback


class TestModelMonotonicity:
    @given(
        listen_a=st.integers(0, 10),
        step=st.integers(1, 10),
        load=st.floats(0.0, 20.0),
        beacon=st.floats(0.01, 0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_delay_non_decreasing_in_listen_interval(
            self, listen_a, step, load, beacon):
        lo = psm_mean_delay(load, beacon, 0.205,
                            listen_interval=listen_a)
        hi = psm_mean_delay(load, beacon, 0.205,
                            listen_interval=listen_a + step)
        assert hi >= lo

    @given(
        saturation=st.floats(1e3, 1e9),
        awake_a=st.floats(0.0, 1.0),
        awake_b=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_throughput_non_increasing_in_sleep_aggressiveness(
            self, saturation, awake_a, awake_b):
        # More sleep = smaller awake fraction = no more throughput.
        more_awake, less_awake = max(awake_a, awake_b), \
            min(awake_a, awake_b)
        assert duty_cycled_throughput(saturation, less_awake) <= \
            duty_cycled_throughput(saturation, more_awake)

    @given(
        drift_a=st.floats(0.0, 1e-2),
        extra=st.floats(0.0, 1e-2),
        sp=st.floats(0.05, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_twt_bound_non_decreasing_in_drift(self, drift_a, extra, sp):
        lo = twt_wake_error_bound(drift_a, 2e-3, sp, BI)
        hi = twt_wake_error_bound(drift_a + extra, 2e-3, sp, BI)
        assert hi >= lo

    @given(
        load_a=st.floats(0.0, 50.0),
        extra=st.floats(0.0, 50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_delay_non_increasing_in_offered_load(self, load_a, extra):
        busy = psm_mean_delay(load_a + extra, BI, 0.205)
        idle = psm_mean_delay(load_a, BI, 0.205)
        assert busy <= idle
