"""Tests for the declarative scenario layer."""

import json

import pytest

from repro.testbed.scenario import (
    TOOLS,
    ScenarioError,
    ScenarioSpec,
    register_tool,
    run_scenario,
    tool_entry,
    tool_keys,
)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.env == "wifi"
        assert spec.tool == "acutemon"
        assert spec.phone == "nexus5"

    def test_unknown_environment(self):
        with pytest.raises(ScenarioError, match="unknown environment"):
            ScenarioSpec(env="ethernet")

    def test_unknown_phone(self):
        with pytest.raises(ScenarioError, match="unknown phone"):
            ScenarioSpec(phone="iphone")

    def test_unknown_tool(self):
        with pytest.raises(ScenarioError, match="unknown tool"):
            ScenarioSpec(tool="warpspeed")

    def test_scenario_error_is_value_error(self):
        with pytest.raises(ValueError):
            ScenarioSpec(tool="warpspeed")

    @pytest.mark.parametrize("field,value", [
        ("emulated_rtt", -0.01),
        ("emulated_rtt", "30ms"),
        ("count", 0),
        ("count", 2.5),
        ("interval", 0.0),
        ("seed", 1.5),
        ("settle", -1.0),
        ("cross_traffic", "yes"),
        ("bus_sleep", 1),
        ("observe", None),
    ])
    def test_bad_field_values(self, field, value):
        with pytest.raises(ScenarioError):
            ScenarioSpec(**{field: value})

    def test_cross_traffic_needs_capability(self):
        ScenarioSpec(env="wifi", cross_traffic=True)  # fine
        with pytest.raises(ScenarioError, match="cross traffic"):
            ScenarioSpec(env="cellular-lte", cross_traffic=True)

    def test_bus_sleep_off_needs_capability(self):
        ScenarioSpec(env="wifi", bus_sleep=False)  # fine
        with pytest.raises(ScenarioError, match="bus"):
            ScenarioSpec(env="cellular-3g", bus_sleep=False)

    def test_params_must_be_json_serializable(self):
        with pytest.raises(ScenarioError, match="JSON-serializable"):
            ScenarioSpec(tool_params={"fn": object()})
        with pytest.raises(ScenarioError, match="keys must be strings"):
            ScenarioSpec(env_params={1: "x"})


class TestSerialization:
    FULL = dict(env="cellular-lte", phone="nexus4", tool="acutemon",
                emulated_rtt=0.05, count=7, interval=0.5, seed=42,
                cross_traffic=False, bus_sleep=True, settle=0.25,
                observe=True, env_params={"t1": 3.0},
                tool_params={"probe_method": "udp"})

    def test_json_round_trip_exact(self):
        spec = ScenarioSpec(**self.FULL)
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.to_dict() == spec.to_dict()
        assert json.loads(spec.to_json()) == spec.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        data = ScenarioSpec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_validates(self):
        data = ScenarioSpec().to_dict()
        data["tool"] = "warpspeed"
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(data)

    def test_replace_returns_validated_copy(self):
        spec = ScenarioSpec()
        other = spec.replace(env="cellular-lte", seed=9)
        assert other.env == "cellular-lte" and other.seed == 9
        assert spec.env == "wifi"  # original untouched
        with pytest.raises(ScenarioError):
            spec.replace(count=0)

    def test_key_and_hash(self):
        spec = ScenarioSpec(env="cellular-3g", emulated_rtt=0.02)
        assert spec.key() == ("cellular-3g", "nexus5", 0.02, "acutemon",
                              False)
        assert hash(spec) == hash(spec.replace())
        assert spec != spec.replace(seed=1)

    def test_params_are_copied_in(self):
        params = {"t1": 3.0}
        spec = ScenarioSpec(env_params=params)
        params["t1"] = 99.0
        assert spec.env_params == {"t1": 3.0}


class TestFingerprint:
    """The content address behind checkpoint/resume (docs/RESILIENCE.md)."""

    FULL = dict(env="wifi", phone="nexus4", tool="acutemon",
                emulated_rtt=0.05, count=7, interval=0.5, seed=42,
                cross_traffic=False, bus_sleep=True, settle=0.25,
                observe=True, env_params={"queue_depth": 8},
                tool_params={"probe_method": "udp"})

    #: One valid mutation per spec field; each must move the fingerprint.
    MUTATIONS = [
        ("env", "cellular-lte"),
        ("phone", "nexus5"),
        ("tool", "ping"),
        ("emulated_rtt", 0.08),
        ("count", 9),
        ("interval", 1.0),
        ("seed", 43),
        ("cross_traffic", True),
        ("bus_sleep", False),
        ("settle", 0.5),
        ("observe", False),
        ("env_params", {"queue_depth": 9}),
        ("tool_params", {"probe_method": "tcp"}),
    ]

    def test_equal_specs_equal_fingerprints(self):
        assert ScenarioSpec(**self.FULL).fingerprint() \
            == ScenarioSpec(**self.FULL).fingerprint()

    def test_fingerprint_is_sha256_hex(self):
        fingerprint = ScenarioSpec(**self.FULL).fingerprint()
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_mutations_cover_every_field(self):
        assert {name for name, _ in self.MUTATIONS} \
            == set(ScenarioSpec().to_dict())

    @pytest.mark.parametrize("field,value", MUTATIONS)
    def test_single_field_mutation_changes_fingerprint(self, field,
                                                       value):
        base = ScenarioSpec(**self.FULL)
        mutated = base.replace(**{field: value})
        assert mutated.fingerprint() != base.fingerprint(), (
            f"mutating {field} left the fingerprint unchanged")

    def test_stable_across_json_round_trip(self):
        spec = ScenarioSpec(**self.FULL)
        restored = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert restored.fingerprint() == spec.fingerprint()
        assert ScenarioSpec.from_json(spec.to_json()).fingerprint() \
            == spec.fingerprint()

    def test_params_key_order_does_not_matter(self):
        first = ScenarioSpec(env_params={"a": 1, "b": 2})
        second = ScenarioSpec(env_params={"b": 2, "a": 1})
        assert first.fingerprint() == second.fingerprint()

    def test_canonical_json_is_sorted_and_compact(self):
        spec = ScenarioSpec(**self.FULL)
        canonical = spec.canonical_json()
        assert json.loads(canonical) == spec.to_dict()
        assert ": " not in canonical and ", " not in canonical
        keys = list(json.loads(canonical))
        assert keys == sorted(keys)


class TestToolRegistry:
    def test_known_tools(self):
        assert set(tool_keys()) == {"acutemon", "ping", "httping",
                                    "javaping", "mobiperf", "ping2"}

    def test_no_none_builders(self):
        # The old TOOL_BUILDERS dict kept "acutemon": None as a special
        # case; the unified registry bans placeholders outright.
        assert all(entry.builder is not None for entry in TOOLS.values())

    def test_unknown_tool_entry(self):
        with pytest.raises(KeyError, match="warpspeed"):
            tool_entry("warpspeed")

    def test_register_tool_round_trips(self, monkeypatch):
        monkeypatch.delitem(TOOLS, "mytool", raising=False)
        build = register_tool("mytool", lambda *a: None, side="server",
                              description="test")
        entry = tool_entry("mytool")
        assert entry.builder is build and entry.side == "server"
        spec = ScenarioSpec(tool="mytool")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        del TOOLS["mytool"]


class TestExecution:
    def test_run_scenario_returns_experiment_result(self):
        spec = ScenarioSpec(tool="ping", count=3, interval=0.01, seed=5)
        result = run_scenario(spec)
        assert result.spec == spec
        assert result.tool is not None
        assert len(result.samples) == 3
        assert all(rtt > 0 for rtt in result.user_rtts)

    def test_acutemon_is_first_class(self):
        spec = ScenarioSpec(tool="acutemon", count=4, seed=5)
        result = run_scenario(spec)
        assert result.acutemon is result.tool
        assert result.acutemon.config.probe_count == 4
        assert len(result.samples) == 4

    def test_tool_params_reach_acutemon_config(self):
        spec = ScenarioSpec(tool="acutemon", count=3, seed=5,
                            tool_params={"probe_method": "udp",
                                         "db": 0.01})
        result = run_scenario(spec)
        assert result.acutemon.config.probe_method == "udp"
        assert result.acutemon.config.db == 0.01

    def test_cellular_scenario_runs(self):
        spec = ScenarioSpec(env="cellular-lte", tool="acutemon", count=3,
                            seed=5)
        result = run_scenario(spec)
        assert len(result.samples) == 3
        assert result.testbed.key == "cellular-lte"

    def test_env_params_reach_builder(self):
        spec = ScenarioSpec(env="cellular-3g", tool="ping", count=2,
                            interval=0.1, seed=5,
                            env_params={"t1": 2.0})
        env, _phone, _collector = spec.build()
        assert env.rrc.config.t1 == 2.0

    def test_deterministic_across_runs(self):
        spec = ScenarioSpec(tool="acutemon", count=5, seed=11)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.user_rtts == second.user_rtts

    def test_matches_tool_experiment(self):
        from repro.testbed.experiments import tool_experiment

        spec = ScenarioSpec(tool="ping", count=4, interval=0.02, seed=3)
        direct = run_scenario(spec)
        wrapped = tool_experiment("ping", count=4, interval=0.02, seed=3)
        assert direct.user_rtts == wrapped.user_rtts
